"""Measured self-relative speedup of the real process backend.

Unlike every other file in ``benchmarks/`` -- which regenerates the
paper's *modelled* tables -- this harness measures actual wall-clock time:
the Fig. 4 pipeline on a generated ~5k-atom molecule for P in {1, 2, 4}
real worker processes, written to ``benchmarks/results/
BENCH_procpool.json``.  It is the repo's first real performance
trajectory; future scaling PRs should keep the artifact format stable so
runs remain comparable.

Hard speedup assertions only fire when the machine actually has the cores
(a 4-way pool on a 1-core CI runner measures scheduling, not scaling);
correctness assertions always fire.

Environment knobs: ``REPRO_BENCH_NATOMS`` overrides the molecule size,
``REPRO_BENCH_REPEATS`` the per-P repetitions (best-of is recorded).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.driver import PolarizationEnergyCalculator
from repro.molecule.generators import protein_blob

WORKER_COUNTS = (1, 2, 4)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_procpool_speedup(results_dir):
    natoms = int(os.environ.get("REPRO_BENCH_NATOMS", "5000"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
    cores = _available_cores()

    calc = PolarizationEnergyCalculator(protein_blob(natoms, seed=1))
    calc.prepare_surface()
    serial = calc.run()

    record = {
        "molecule": calc.molecule.name,
        "natoms": len(calc.molecule),
        "nqpoints": calc.prepare_surface().npoints,
        "cores_available": cores,
        "repeats": repeats,
        "serial_energy": serial.energy,
        "timings": {},
    }
    walls: dict[int, float] = {}
    for P in WORKER_COUNTS:
        best = None
        for _ in range(repeats):
            res = calc.compute(backend="real", workers=P)
            if best is None or res.wall_seconds < best.wall_seconds:
                best = res
        walls[P] = best.wall_seconds
        record["timings"][str(P)] = {
            "wall_seconds": best.wall_seconds,
            "pipeline_seconds": best.pipeline_seconds,
            "setup_seconds": best.setup_seconds,
            "phase_seconds": best.phase_seconds,
            "rank_seconds": best.rank_seconds,
            "energy": best.energy,
            "speedup_vs_p1": None,  # filled below
        }
        # Correctness is substrate-independent regardless of core count.
        assert abs(best.energy - serial.energy) <= 1e-10 * abs(serial.energy)
        np.testing.assert_allclose(best.born_radii, serial.born_radii,
                                   rtol=1e-10)

    for P in WORKER_COUNTS:
        record["timings"][str(P)]["speedup_vs_p1"] = walls[1] / walls[P]
    record["written_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    out = results_dir / "BENCH_procpool.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print()
    print(f"procpool speedup ({natoms} atoms, {cores} cores): " + ", ".join(
        f"P={P}: {walls[P]:.3f}s ({walls[1] / walls[P]:.2f}x)"
        for P in WORKER_COUNTS))
    print(f"wrote {out}")

    # Scaling assertions need real cores under the pool.
    if cores >= 4:
        assert walls[1] / walls[4] > 1.5, (
            f"expected >1.5x speedup at P=4 on {cores} cores, got "
            f"{walls[1] / walls[4]:.2f}x")
    if cores >= 2:
        assert walls[1] / walls[2] > 1.1, (
            f"expected >1.1x speedup at P=2 on {cores} cores, got "
            f"{walls[1] / walls[2]:.2f}x")
