"""Bench: regenerate the Fig. 11 table (CMV-shell scalability).

The heaviest bench: real energies on the analogue shell plus
exactly-counted work on the paper's full 509,640-atom geometry.
"""

from conftest import run_and_record


def test_fig11_cmv_table(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig11")
    programs = [row[0] for row in result.rows]
    assert "Amber 12" in programs
    assert any("full 509640" in p for p in programs)
