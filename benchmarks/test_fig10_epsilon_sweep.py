"""Bench: regenerate Fig. 10 (error and running time vs eps_Epol)."""

from conftest import run_and_record


def test_fig10_epsilon_sweep(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig10")
    assert [row[0] for row in result.rows] == [
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
