"""Bench: ablation A -- work-division schemes (Section IV.A)."""

from conftest import run_and_record


def test_ablation_work_division(benchmark, results_dir):
    run_and_record(benchmark, results_dir, "ablA")
