"""Intra-request slicing: the latency claim for one giant molecule.

Two measured claims, written to ``benchmarks/results/
BENCH_serve_sliced.json``:

* **latency win** -- one large request row-sliced over a P-worker warm
  fleet completes ``>= 2x`` faster than the same request on a 1-worker
  fleet (best-of-``REPRO_BENCH_REPEATS`` warm latencies), while staying
  bit-identical to the cold serial ``driver.run()``;
* **no small-request regression** -- replaying the mixed workload with
  slicing enabled keeps small-request throughput within 10% of the
  batched-only baseline (the PR-4 behaviour, ``slice_threshold=None``).

Following ``test_procpool_speedup``: hard performance assertions only
fire when the machine actually has the cores (slicing on a 1-core runner
measures scheduling, not scaling); correctness assertions always fire.

Environment knobs: ``REPRO_BENCH_SLICE_NATOMS`` (large molecule size,
default 2500), ``REPRO_BENCH_SLICE_WORKERS`` (fleet width P, default 4),
``REPRO_BENCH_REPEATS`` (per-config repetitions, default 3),
``REPRO_BENCH_SLICE_SMALL_NATOMS``/``REPRO_BENCH_SLICE_REQUESTS`` for
the mixed replay (defaults 150/36).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.driver import PolarizationEnergyCalculator
from repro.molecule.generators import protein_blob
from repro.serve import (EpolServer, EpsConfig, MoleculeRegistry,
                         ProcessFleet, ServeClient, ServeConfig)

MIN_SLICE_SPEEDUP = 2.0
SMALL_RPS_TOLERANCE = 0.10


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_sliced_latency_and_mixed_throughput(results_dir):
    large_natoms = int(os.environ.get("REPRO_BENCH_SLICE_NATOMS", "2500"))
    workers = int(os.environ.get("REPRO_BENCH_SLICE_WORKERS", "4"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    small_natoms = int(os.environ.get("REPRO_BENCH_SLICE_SMALL_NATOMS",
                                      "150"))
    requests = int(os.environ.get("REPRO_BENCH_SLICE_REQUESTS", "36"))
    cores = _available_cores()

    registry = MoleculeRegistry()
    large = protein_blob(large_natoms, seed=400,
                         name=f"blob-{large_natoms}-large")
    smalls = [protein_blob(small_natoms, seed=410 + i,
                           name=f"blob-{small_natoms}-{i}")
              for i in range(3)]
    large_key = registry.register(large)
    small_keys = [registry.register(m) for m in smalls]
    entry = registry.get(large_key)
    cfg = EpsConfig.resolve(entry.params)
    reference = PolarizationEnergyCalculator(
        large, entry.params).run().energy

    # -- latency: one sliced request, P workers vs 1 worker -------------
    latencies: dict[int, float] = {}
    for P in (1, workers):
        fleet = ProcessFleet(P)
        try:
            warm = fleet.run_sliced(0, entry, cfg)  # publication + attach
            assert warm.error is None
            assert warm.energy == reference, (
                f"sliced energy diverged from cold driver.run() at P={P}")
            best = None
            for rep in range(repeats):
                t0 = time.perf_counter()
                res = fleet.run_sliced(1 + rep, entry, cfg)
                wall = time.perf_counter() - t0
                assert res.error is None and res.energy == reference
                assert res.mode == "sliced"
                best = wall if best is None else min(best, wall)
            latencies[P] = best
        finally:
            fleet.shutdown()
    speedup = latencies[1] / latencies[workers]

    # -- mixed replay: small throughput, sliced vs batched-only ---------
    weights = {k: registry.get(k).row_weight(cfg.eps_born, cfg.eps_epol)
               for k in [large_key, *small_keys]}
    threshold = (max(weights[k] for k in small_keys)
                 + weights[large_key]) / 2.0
    stream = [large_key if i % 6 == 5 else small_keys[i % 3]
              for i in range(requests)]
    small_rps: dict[str, float] = {}
    per_mode: dict[str, dict] = {}
    for label, thresh in (("batched_only", None), ("sliced", threshold)):
        server = EpolServer(
            fleet=ProcessFleet(workers), registry=registry,
            config=ServeConfig(max_batch=16, max_wait_seconds=0.002,
                               queue_capacity=max(64, requests),
                               slice_threshold=thresh))
        with server:
            client = ServeClient(server)
            t0 = time.perf_counter()
            futs = [client.submit(key=k, retries=100_000) for k in stream]
            energies = client.await_all(futs, timeout=600.0)
            replay = time.perf_counter() - t0
        for k, e in zip(stream, energies):
            if k == large_key:
                assert e == reference, f"{label}: large energy diverged"
        nsmall = sum(1 for k in stream if k != large_key)
        small_rps[label] = nsmall / replay
        per_mode[label] = server.stats()["modes"]
    rps_ratio = small_rps["sliced"] / small_rps["batched_only"]

    record = {
        "large_natoms": large_natoms,
        "small_natoms": small_natoms,
        "workers": workers,
        "cores_available": cores,
        "repeats": repeats,
        "reference_energy": reference,
        "sliced_latency_seconds": {str(p): w
                                   for p, w in latencies.items()},
        "sliced_speedup": speedup,
        "min_speedup_required": MIN_SLICE_SPEEDUP,
        "mixed_requests": requests,
        "slice_threshold": threshold,
        "row_weights": weights,
        "mixed_small_rps": small_rps,
        "mixed_small_rps_ratio": rps_ratio,
        "mixed_modes": per_mode,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    out = results_dir / "BENCH_serve_sliced.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print()
    print(f"sliced latency ({large_natoms} atoms): 1 worker "
          f"{latencies[1]:.3f}s -> {workers} workers "
          f"{latencies[workers]:.3f}s ({speedup:.2f}x)")
    print(f"mixed small-request throughput: batched-only "
          f"{small_rps['batched_only']:.1f} req/s, sliced "
          f"{small_rps['sliced']:.1f} req/s (ratio {rps_ratio:.2f})")
    print(f"wrote {out}")

    # Routing sanity always fires: the mixed replay must actually have
    # sliced its large requests.
    assert per_mode["sliced"].get("sliced", {}).get("completed", 0) > 0
    assert "sliced" not in per_mode["batched_only"]

    if cores >= workers:
        assert speedup >= MIN_SLICE_SPEEDUP, (
            f"row-slicing one {large_natoms}-atom request over {workers} "
            f"workers won {speedup:.2f}x < {MIN_SLICE_SPEEDUP}x over a "
            "1-worker fleet")
        assert rps_ratio >= 1.0 - SMALL_RPS_TOLERANCE, (
            f"slicing regressed small-request throughput to "
            f"{rps_ratio:.2f}x of the batched-only baseline "
            f"(tolerance {SMALL_RPS_TOLERANCE:.0%})")
    else:
        print(f"NOTE: {cores} core(s) < {workers} workers -- performance "
              "assertions skipped, correctness asserted")
