"""Bench: regenerate Fig. 5 (speedup vs one node on the BTV analogue)."""

from conftest import run_and_record


def test_fig5_speedup(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig5")
    # Both variants retain most of the 12x hardware growth at 144 cores.
    rows = {row[0]: row for row in result.rows}
    assert rows[144][2] > 6.0 and rows[144][4] > 6.0
