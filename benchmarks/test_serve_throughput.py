"""Serve-vs-cold throughput: the serving layer's performance claim.

A decoy-scoring workload keeps re-asking for the same handful of
molecules.  Cold per-request scoring rebuilds surface, octrees and plans
every time; the serving layer builds them once per registered molecule
and amortises them over every later request.  This harness replays
``>= 200`` synthetic decoy requests through a warm server, replays the
identical stream through cold per-request ``driver.run()`` calls, checks
the energies stay bit-identical, asserts ``>= 2x`` throughput for the
served path, and writes ``benchmarks/results/BENCH_serve.json``.

Environment knobs: ``REPRO_BENCH_SERVE_REQUESTS`` (total requests,
default 200), ``REPRO_BENCH_SERVE_NATOMS`` (atoms per decoy, default
120), ``REPRO_BENCH_SERVE_DISTINCT`` (distinct molecules, default 4).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.driver import PolarizationEnergyCalculator
from repro.molecule.generators import protein_blob
from repro.serve import ServeClient, ServeConfig, make_server

MIN_SPEEDUP = 2.0


def test_serve_throughput_vs_cold(results_dir):
    requests = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "200"))
    natoms = int(os.environ.get("REPRO_BENCH_SERVE_NATOMS", "120"))
    distinct = int(os.environ.get("REPRO_BENCH_SERVE_DISTINCT", "4"))
    assert requests >= 200, "the acceptance claim is stated at >= 200"

    molecules = [protein_blob(natoms, seed=300 + i,
                              name=f"decoy-{natoms}-{i}")
                 for i in range(distinct)]
    stream = [i % distinct for i in range(requests)]

    # -- cold baseline: a fresh calculator per request ------------------
    t0 = time.perf_counter()
    cold = [PolarizationEnergyCalculator(molecules[i]).run().energy
            for i in stream]
    cold_seconds = time.perf_counter() - t0

    # -- served: one warm inline server, same request stream ------------
    # The sim backend isolates the caching claim (warm surface/trees/
    # plans) from process-fleet parallelism; it shares the scheduler
    # thread, so the measured speedup is pure reuse, not extra cores.
    config = ServeConfig(max_batch=32, max_wait_seconds=0.001,
                         queue_capacity=max(64, requests))
    server = make_server(backend="sim", workers=1, config=config)
    t0 = time.perf_counter()
    with server:
        client = ServeClient(server)
        keys = [client.register(m) for m in molecules]
        warm_seconds = time.perf_counter() - t0
        futures = [client.submit(key=keys[i], retries=10_000)
                   for i in stream]
        served = client.await_all(futures, timeout=600.0)
    serve_seconds = time.perf_counter() - t0

    assert served == cold, "served energies diverged from cold driver.run()"
    stats = server.stats()
    assert stats["completed"] == requests and stats["failed"] == 0

    speedup = cold_seconds / serve_seconds
    record = {
        "requests": requests,
        "distinct_molecules": distinct,
        "natoms": natoms,
        "backend": "sim",
        "cold_seconds": cold_seconds,
        "serve_seconds": serve_seconds,
        "serve_warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_rps": requests / cold_seconds,
        "throughput_rps": stats["throughput_rps"],
        "latency": stats["latency"],
        "batch_histogram": stats["batch_histogram"],
        "mean_batch_size": stats["mean_batch_size"],
        "registry": stats["registry"],
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    out = results_dir / "BENCH_serve.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print()
    print(f"serve throughput ({requests} requests, {distinct}x{natoms}-atom "
          f"decoys): cold {cold_seconds:.2f}s -> served {serve_seconds:.2f}s "
          f"({speedup:.2f}x, {stats['throughput_rps']:.1f} req/s)")
    print(f"wrote {out}")

    assert speedup >= MIN_SPEEDUP, (
        f"warm serving {speedup:.2f}x < {MIN_SPEEDUP}x over cold "
        "per-request driver.run()")
