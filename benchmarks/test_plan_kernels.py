"""Measured speedup of the batched plan executors over the per-leaf loops.

The plan/execute split's performance claim: building an interaction plan
once and executing it with bucketed, batched NumPy kernels beats the
legacy one-Python-iteration-per-leaf reference -- even *including* the
plan build -- on a paper-scale (>= 5000-atom) molecule.  This harness
measures both phases (Born integrals and the energy pair sum), asserts
>= 2x on the batched executor, verifies the results stay bit-identical,
and writes ``benchmarks/results/BENCH_plan.json``.

Environment knobs: ``REPRO_BENCH_NATOMS`` overrides the molecule size,
``REPRO_BENCH_REPEATS`` the repetitions (best-of is recorded).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.born import approx_integrals_perleaf
from repro.core.driver import PolarizationEnergyCalculator
from repro.core.energy import EnergyContext, approx_epol_perleaf
from repro.molecule.generators import protein_blob
from repro.plan import (build_born_plan, build_epol_plan,
                        execute_born_plan, execute_epol_plan, plan_stats)

MIN_SPEEDUP = 2.0


def _best_of(repeats, fn):
    best, value = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, value


def test_plan_executor_speedup(results_dir):
    natoms = int(os.environ.get("REPRO_BENCH_NATOMS", "5000"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
    assert natoms >= 5000, "the acceptance claim is stated at paper scale"

    calc = PolarizationEnergyCalculator(protein_blob(natoms, seed=2))
    atoms, quad = calc.atom_tree(), calc.quad_tree()
    eps_b, eps_e = calc.params.eps_born, calc.params.eps_epol
    variant = calc.params.born_mac_variant

    # -- Born phase ----------------------------------------------------
    t_perleaf_b, ref_b = _best_of(repeats, lambda: approx_integrals_perleaf(
        atoms, quad, quad.tree.leaves, eps_b, mac_variant=variant))
    t_build_b, born_plan = _best_of(repeats, lambda: build_born_plan(
        atoms, quad, eps_b, mac_variant=variant, timer=time.perf_counter))
    t_exec_b, got_b = _best_of(repeats, lambda: execute_born_plan(
        born_plan, atoms, quad))
    assert np.array_equal(got_b.s_atom, ref_b.s_atom)
    assert np.array_equal(got_b.s_node, ref_b.s_node)

    # -- Energy phase --------------------------------------------------
    prof = calc.profile()
    ectx = EnergyContext.build(atoms, prof.born_sorted, eps_e)
    t_perleaf_e, ref_e = _best_of(repeats, lambda: approx_epol_perleaf(
        ectx, atoms.tree.leaves, eps_e))
    t_build_e, epol_plan = _best_of(repeats, lambda: build_epol_plan(
        atoms, eps_e, timer=time.perf_counter))
    t_exec_e, got_e = _best_of(repeats, lambda: execute_epol_plan(
        epol_plan, ectx))
    assert got_e.pair_sum == ref_e.pair_sum

    perleaf_total = t_perleaf_b + t_perleaf_e
    exec_total = t_exec_b + t_exec_e
    build_total = t_build_b + t_build_e
    speedup_exec = perleaf_total / exec_total
    speedup_with_build = perleaf_total / (exec_total + build_total)

    record = {
        "molecule": calc.molecule.name,
        "natoms": len(calc.molecule),
        "nqpoints": calc.prepare_surface().npoints,
        "repeats": repeats,
        "seconds": {
            "born_perleaf": t_perleaf_b,
            "born_plan_build": t_build_b,
            "born_plan_exec": t_exec_b,
            "epol_perleaf": t_perleaf_e,
            "epol_plan_build": t_build_e,
            "epol_plan_exec": t_exec_e,
        },
        "speedup_exec_only": speedup_exec,
        "speedup_including_build": speedup_with_build,
        "born_plan": plan_stats(born_plan, nparts=4),
        "epol_plan": plan_stats(epol_plan, nparts=4,
                                nbins=ectx.binning.nbins),
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    out = results_dir / "BENCH_plan.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print()
    print(f"plan executors ({natoms} atoms): born "
          f"{t_perleaf_b:.3f}s -> {t_exec_b:.3f}s, epol "
          f"{t_perleaf_e:.3f}s -> {t_exec_e:.3f}s; "
          f"{speedup_exec:.2f}x exec-only, "
          f"{speedup_with_build:.2f}x incl. build")
    print(f"wrote {out}")

    assert speedup_exec >= MIN_SPEEDUP, (
        f"batched executor {speedup_exec:.2f}x < {MIN_SPEEDUP}x over the "
        f"per-leaf loops")
    # The cached-plan story only pays if the build amortises immediately.
    assert speedup_with_build > 1.0, (
        f"plan build+execute slower than the per-leaf path "
        f"({speedup_with_build:.2f}x)")
