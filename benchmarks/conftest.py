"""Shared benchmark plumbing.

Each benchmark runs one experiment (one paper table/figure), asserts its
paper-derived shape checks, writes the rendered artifact to
``benchmarks/results/<id>.txt`` and reports the wall time through
pytest-benchmark.  Experiments share the process-wide molecule/profile
caches in :mod:`repro.experiments.common`, so a full ``pytest benchmarks/
--benchmark-only`` session computes each expensive intermediate once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_record(benchmark, results_dir: Path, experiment_id: str,
                   **kwargs):
    """Run ``experiment_id`` once under the benchmark timer, persist its
    rendered artifact, and return the result."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs),
        rounds=1, iterations=1)
    artifact = result.render()
    (results_dir / f"{experiment_id}.txt").write_text(artifact + "\n")
    print()
    print(artifact)
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, (f"{experiment_id}: paper-shape checks failed: "
                        f"{failed}")
    return result
