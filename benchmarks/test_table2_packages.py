"""Bench: regenerate Table II (packages, GB models, parallelism)."""

from conftest import run_and_record


def test_table2_packages(benchmark, results_dir):
    run_and_record(benchmark, results_dir, "table2")
