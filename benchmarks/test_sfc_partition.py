"""SFC partition quality: key-range ownership vs the exact balancer.

The key-range scheme buys publishable ownership (every rank owns a
contiguous curve-key interval, aligned to coarse octree blocks) by
snapping the exact row-weight cuts forward to block boundaries.  This
harness measures what that costs per curve on skewed virus-shell inputs
(hollow capsids -- the geometry where Morton's octant jumps are worst):

* **imbalance**: max/mean per-rank plan-row weight, for the exact
  greedy balancer (baseline) and for block-aligned key-range cuts, over
  a rank sweep;
* **adjacency locality**: mean centroid distance between key-order
  adjacent leaves -- the proxy for halo surface area and cache reuse
  that SFC partitioning exists to minimise.

Asserts Hilbert beats Morton strictly on adjacency locality for every
molecule, and is equal-or-better on key-range imbalance in aggregate
over the (molecule, ranks) sweep; writes
``benchmarks/results/BENCH_sfc.json``.

Environment knobs: ``REPRO_BENCH_SFC_NATOMS`` (capsid atom count,
default 3000), ``REPRO_BENCH_SFC_CMV_SCALE`` (CMV-analogue scale,
default 0.01).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.driver import PolarizationEnergyCalculator
from repro.core.params import ApproximationParams
from repro.molecule.generators import cmv_analogue, icosahedral_shell
from repro.octree.partition import (coarsen_keys, imbalance,
                                    segment_by_key_range, segment_by_weight)

RANK_SWEEP = (4, 8, 16)
VARIANTS = (("morton", False), ("hilbert", False), ("hilbert", True))
#: Aggregate-imbalance slack: "equal-or-better" allowing measurement
#: granularity (block boundaries shift discretely with the leaf order).
IMBALANCE_SLACK = 1.02


def _variant_metrics(molecule, sfc: str, compress: bool) -> dict:
    calc = PolarizationEnergyCalculator(
        molecule, ApproximationParams(tree_sfc=sfc, tree_compress=compress))
    plan = calc.epol_plan()
    tree = calc.atom_tree().tree
    weights = plan.row_pair_weights().astype(np.float64)
    keys = tree.node_key[plan.target_leaves]
    centers = tree.ball_center[plan.target_leaves]
    adjacent = float(np.linalg.norm(np.diff(centers, axis=0),
                                    axis=1).mean())
    per_ranks = {}
    for nranks in RANK_SWEEP:
        base = imbalance([weights[s:e].sum() for s, e in
                          segment_by_weight(weights, nranks)])
        blocks = coarsen_keys(keys, nranks)
        keyrange = imbalance([weights[s:e].sum() for s, e in
                              segment_by_key_range(blocks, nranks,
                                                   weights=weights)])
        per_ranks[nranks] = {
            "row_weight_imbalance": base,
            "key_range_imbalance": keyrange,
            "distinct_blocks": int(len(np.unique(blocks))),
        }
    return {
        "variant": calc.params.tree_variant,
        "nleaves": int(len(keys)),
        "adjacent_leaf_distance": adjacent,
        "per_ranks": per_ranks,
    }


def _mean_key_range_imbalance(rows: list[dict]) -> float:
    vals = [r["per_ranks"][p]["key_range_imbalance"]
            for r in rows for p in RANK_SWEEP]
    return float(np.mean(vals))


def test_sfc_partition_quality(results_dir):
    natoms = int(os.environ.get("REPRO_BENCH_SFC_NATOMS", "3000"))
    cmv_scale = float(os.environ.get("REPRO_BENCH_SFC_CMV_SCALE", "0.01"))
    molecules = [icosahedral_shell(natoms, seed=11),
                 cmv_analogue(scale=cmv_scale, seed=3)]

    record = {"rank_sweep": list(RANK_SWEEP), "molecules": []}
    by_variant: dict[str, list[dict]] = {}
    for molecule in molecules:
        rows = [_variant_metrics(molecule, sfc, compress)
                for sfc, compress in VARIANTS]
        record["molecules"].append({
            "name": molecule.name, "natoms": len(molecule),
            "variants": rows,
        })
        for row in rows:
            by_variant.setdefault(row["variant"], []).append(row)

        # Strict per-molecule claim: Hilbert ordering places key-adjacent
        # leaves spatially closer than Morton's octant-jumping order.
        adj = {r["variant"]: r["adjacent_leaf_distance"] for r in rows}
        assert adj["hilbert"] < adj["morton"], molecule.name
        # Compression rewrites node ids, never the leaf set/order.
        assert adj["hilbert+compressed"] == adj["hilbert"], molecule.name

    # Aggregate claim over the (molecule, ranks) sweep: key-interval
    # ownership costs no more on the Hilbert order than on Morton's.
    hilbert_imb = _mean_key_range_imbalance(by_variant["hilbert"])
    morton_imb = _mean_key_range_imbalance(by_variant["morton"])
    assert hilbert_imb <= morton_imb * IMBALANCE_SLACK
    record["aggregate"] = {
        "hilbert_key_range_imbalance": hilbert_imb,
        "morton_key_range_imbalance": morton_imb,
        "slack": IMBALANCE_SLACK,
    }

    out = results_dir / "BENCH_sfc.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record["aggregate"], indent=2))
