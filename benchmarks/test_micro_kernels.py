"""Micro-benchmarks of the hot kernels (real wall time, multiple rounds).

Unlike the figure benches (which report *simulated* cluster time), these
measure the actual NumPy kernels this reproduction runs -- the numbers a
downstream user optimising the library cares about.
"""

import numpy as np
import pytest

from repro.core.energy import EnergyContext, approx_epol
from repro.core.gbmodels import f_gb
from repro.core.integrals import pair_distance_sq, surface_integral
from repro.molecule.generators import protein_blob
from repro.octree.build import build_octree
from repro.octree.traversal import classify_against_ball
from repro.parallel.cilk import simulate_work_stealing
from repro.surface.sas import build_surface


@pytest.fixture(scope="module")
def molecule():
    return protein_blob(4000, seed=77)


@pytest.fixture(scope="module")
def surface(molecule):
    return build_surface(molecule, points_per_atom=12)


def test_surface_build(benchmark, molecule):
    """SAS sampling throughput (atoms/second)."""
    result = benchmark(build_surface, molecule, points_per_atom=12)
    assert result.npoints > 0


def test_octree_build(benchmark, molecule):
    """Octree construction throughput."""
    tree = benchmark(build_octree, molecule.positions, leaf_cap=32)
    assert tree.npoints == len(molecule)


def test_pair_distance_gemm(benchmark, rng_pts=None):
    """The GEMM-based pairwise distance kernel (pairs/second)."""
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 50, (2000, 3))
    b = rng.uniform(0, 50, (2000, 3))
    r2, _, _ = benchmark(pair_distance_sq, a, b)
    assert r2.shape == (2000, 2000)


def test_surface_integral_kernel(benchmark, molecule, surface):
    """The exact r^6 Born integral (the near-field workhorse)."""
    targets = molecule.positions[:512]
    out = benchmark(surface_integral, surface.points[:4096],
                    surface.normals[:4096], surface.weights[:4096], targets)
    assert out.shape == (512,)


def test_f_gb_kernel(benchmark):
    """The STILL f_GB evaluation (exp + sqrt bound)."""
    rng = np.random.default_rng(1)
    r2 = rng.uniform(1, 400, (1000, 1000))
    bp = rng.uniform(1, 25, (1000, 1000))
    out = benchmark(f_gb, r2, bp)
    assert out.shape == r2.shape


def test_mac_classification(benchmark, molecule):
    """One vectorised frontier walk against a 4000-atom tree."""
    tree = build_octree(molecule.positions, leaf_cap=32)
    center = molecule.centroid + 5.0
    cls = benchmark(classify_against_ball, tree, center, 2.0, 3.2)
    assert cls.nodes_visited > 0


def test_work_stealing_sim(benchmark):
    """Discrete-event schedule of 5,000 tasks on 12 workers."""
    rng = np.random.default_rng(2)
    costs = rng.uniform(1e-6, 5e-5, 5000)
    result = benchmark(simulate_work_stealing, costs, 12, seed=3)
    assert result.makespan > 0


def test_energy_traversal(benchmark, molecule, surface):
    """Full APPROX-EPOL over a 4000-atom molecule (real kernels)."""
    from repro.core.born import AtomTreeData
    from repro.core.naive import naive_born_radii
    atoms = AtomTreeData.build(molecule, leaf_cap=32)
    born_sorted = naive_born_radii(molecule, surface)[atoms.tree.perm]
    ctx = EnergyContext.build(atoms, born_sorted, 0.9)
    partial = benchmark(approx_epol, ctx, atoms.tree.leaves, 0.9)
    assert partial.pair_sum != 0.0
