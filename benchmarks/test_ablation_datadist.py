"""Bench: ablation E -- data distribution (the paper's future work)."""

from conftest import run_and_record


def test_ablation_data_distribution(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "ablE")
    # At 48 ranks the worst rank holds well under half a replica.
    last = result.rows[-1]
    assert last[3] > 2.0
