"""Bench: regenerate Table I (simulation environment)."""

from conftest import run_and_record


def test_table1_environment(benchmark, results_dir):
    run_and_record(benchmark, results_dir, "table1")
