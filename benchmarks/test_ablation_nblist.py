"""Bench: ablation C -- octree vs nblist space (Section II)."""

from conftest import run_and_record


def test_ablation_nblist(benchmark, results_dir):
    run_and_record(benchmark, results_dir, "ablC")
