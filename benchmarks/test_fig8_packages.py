"""Bench: regenerate Fig. 8 (package running times + speedup vs Amber)."""

from conftest import run_and_record


def test_fig8_packages(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig8")
    assert any("11" in note or "x" in note for note in result.notes)
