"""Bench: regenerate Fig. 7 (OCT_CILK vs OCT_MPI vs OCT_MPI+CILK)."""

from conftest import run_and_record


def test_fig7_octree_variants(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig7")
    # Suite spans the paper's full size range incl. both anchors.
    sizes = [row[1] for row in result.rows]
    assert min(sizes) == 400 and max(sizes) == 16301


def test_fig7t_tree_addressing_variants(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig7t")
    # Every molecule appears under all four addressing variants.
    variants = {row[2] for row in result.rows}
    assert variants == {"morton", "morton+compressed",
                        "hilbert", "hilbert+compressed"}
