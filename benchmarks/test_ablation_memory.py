"""Bench: ablation B -- hybrid vs distributed memory (Section V.B)."""

from conftest import run_and_record


def test_ablation_memory(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "ablB")
    ratio = result.rows[0][1] / result.rows[1][1]
    assert 4.5 <= ratio <= 6.5  # paper: 8.2 GB / 1.4 GB ~= 5.86
