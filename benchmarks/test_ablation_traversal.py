"""Bench: ablation D -- per-leaf vs dual-tree traversal (Section IV)."""

from conftest import run_and_record


def test_ablation_traversal_schemes(benchmark, results_dir):
    run_and_record(benchmark, results_dir, "ablD")
