"""Bench: regenerate Fig. 6 (min/max envelopes over 20 repetitions)."""

from conftest import run_and_record


def test_fig6_scalability(benchmark, results_dir):
    result = run_and_record(benchmark, results_dir, "fig6")
    assert len(result.rows) == 8  # 12..240 cores
