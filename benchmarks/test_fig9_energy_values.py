"""Bench: regenerate Fig. 9 (energy values per package).

Shares the expensive package sweep with Fig. 8 through the experiment
cache, so running both costs one sweep.
"""

from conftest import run_and_record


def test_fig9_energy_values(benchmark, results_dir):
    run_and_record(benchmark, results_dir, "fig9")
