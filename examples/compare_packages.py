#!/usr/bin/env python
"""Compare the octree algorithm against the five MD-package baselines.

A miniature of the paper's Figs. 8 and 9 on one molecule: every package's
GB model runs for real (HCT for Amber/Gromacs, OBC for NAMD, Still-volume
for Tinker, volume-r^6 for GBr6), times come from the calibrated package
models, and everything is referenced against the exact naive energy.

Run:  python examples/compare_packages.py [natoms]
"""

from __future__ import annotations

import sys

from repro import PolarizationEnergyCalculator, naive_reference, protein_blob
from repro.analysis import render_table
from repro.baselines import ALL_PACKAGES, BaselineOOMError
from repro.parallel import run_variant


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    molecule = protein_blob(natoms, seed=9)
    calc = PolarizationEnergyCalculator(molecule)
    naive = naive_reference(molecule, calc.prepare_surface())
    print(f"input: {len(molecule)}-atom protein analogue; "
          f"naive E_pol = {naive.energy:.1f} kcal/mol\n")

    rows = []
    amber_seconds = None
    for cls in ALL_PACKAGES:
        pkg = cls()
        try:
            r = pkg.run(molecule)
        except BaselineOOMError as exc:
            rows.append([pkg.name, pkg.gb_model.value, "OOM", "--", "--",
                         str(exc)])
            continue
        if pkg.name == "Amber 12":
            amber_seconds = r.sim_seconds
        rows.append([pkg.name, pkg.gb_model.value, r.sim_seconds,
                     r.energy, 100.0 * r.energy / naive.energy])

    for variant in ("OCT_MPI", "OCT_MPI+CILK", "OCT_CILK"):
        r = run_variant(calc, variant, cores=12)
        rows.append([variant, "r6-surface", r.sim_seconds, r.energy,
                     100.0 * r.energy / naive.energy])

    print(render_table(
        ["package", "GB model", "time (s)", "E_pol (kcal/mol)",
         "% of naive"],
        [row[:5] for row in rows],
        title="GB energy, one 12-core node (modelled Lonestar4 time)"))

    if amber_seconds is not None:
        oct_seconds = min(row[2] for row in rows
                          if str(row[0]).startswith("OCT"))
        print(f"\nfastest octree variant vs Amber: "
              f"{amber_seconds / oct_seconds:.1f}x "
              f"(paper: ~11x at 16,301 atoms, hundreds-fold at virus scale)")
    print("Signatures to look for: Tinker near 70% of naive (Still-volume "
          "radii), everything\nelse close to naive; octree variants "
          "fastest.")


if __name__ == "__main__":
    main()
