#!/usr/bin/env python
"""Rigid-body docking scan: the paper's octree-reuse argument in action.

Section IV.C: "for drug-design and docking where we need to place the
ligand at thousands of different positions w.r.t. the receptor, we can
move the same octree to different positions or rotate it as needed by
multiplying with proper transformation matrices" -- construction is paid
once per rigid body, not once per pose.

This script builds a receptor and a ligand once (molecule, surface,
octree), then scans the ligand along an approach axis, computing the
complex's GB polarization energy at every pose and reporting the
polarization component of the binding score,
``dE = E_pol(complex) - E_pol(receptor) - E_pol(ligand)`` -- the
interface desolvation + charge-screening term docking pipelines evaluate
at thousands of poses, which is exactly why per-pose cost matters.

Run:  python examples/docking_scan.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import PolarizationEnergyCalculator, protein_blob
from repro.geometry import rotation_matrix
from repro.molecule.molecule import Molecule
from repro.octree.transform import transformed_octree
from repro.surface.sas import SurfaceQuadrature, build_surface


def _unburied(surface: SurfaceQuadrature, other: Molecule) -> np.ndarray:
    """Mask of surface points not swallowed by the partner body."""
    from repro.geometry import CellGrid
    rmax = float(other.radii.max())
    grid = CellGrid(other.positions, cell_size=2.0 * rmax)
    keep = np.ones(surface.npoints, dtype=bool)
    for i, p in enumerate(surface.points):
        cand = grid.candidates(p, rmax)
        if len(cand):
            d2 = np.sum((other.positions[cand] - p) ** 2, axis=1)
            keep[i] = not np.any(d2 < other.radii[cand] ** 2)
    return keep


def merged_surface(a: SurfaceQuadrature, a_mol: Molecule,
                   b: SurfaceQuadrature, b_mol: Molecule,
                   owner_offset: int) -> SurfaceQuadrature:
    """Union of two rigid bodies' surfaces.

    Each body's quadrature transforms rigidly with it (like its octree);
    at the interface, points of one body that fall inside the other are
    dropped -- they are no longer on the complex's molecular surface.
    """
    a = a.subset(np.flatnonzero(_unburied(a, b_mol)))
    b = b.subset(np.flatnonzero(_unburied(b, a_mol)))
    return SurfaceQuadrature(
        np.vstack([a.points, b.points]),
        np.vstack([a.normals, b.normals]),
        np.concatenate([a.weights, b.weights]),
        np.concatenate([a.owner, b.owner + owner_offset]),
    )


def main() -> None:
    receptor = protein_blob(2500, seed=100, name="receptor")
    ligand = protein_blob(300, seed=101, name="ligand")
    print(f"receptor: {len(receptor)} atoms   ligand: {len(ligand)} atoms")

    # Pre-processing, paid once per rigid body (Section IV.C).
    t0 = time.perf_counter()
    receptor_surface = build_surface(receptor)
    ligand_surface = build_surface(ligand)
    from repro.octree.build import build_octree
    ligand_tree = build_octree(ligand.positions, leaf_cap=32)
    print(f"surfaces + ligand octree built once in "
          f"{time.perf_counter() - t0:.2f} s")

    # Demonstrate the reuse claim directly: a transformed octree is
    # geometrically identical to one rebuilt from transformed points.
    rot = rotation_matrix([0, 1, 0], 0.7)
    moved = transformed_octree(ligand_tree, rotation=rot,
                               translation=np.array([30.0, 0.0, 0.0]))
    print("transformed octree: topology shared, enclosing-ball radii "
          "bit-identical:",
          bool(np.array_equal(moved.ball_radius, ligand_tree.ball_radius)),
          "| ball centres follow the points:",
          bool(np.allclose(moved.ball_center[0],
                           moved.points[moved.node_points(0)].mean(axis=0))))

    # Isolated-body references, computed once.
    e_rec = PolarizationEnergyCalculator(
        receptor, surface=receptor_surface).run().energy
    e_lig = PolarizationEnergyCalculator(
        ligand, surface=ligand_surface).run().energy
    print(f"isolated E_pol: receptor {e_rec:.1f}, ligand {e_lig:.1f} "
          f"kcal/mol")

    # Approach scan: slide the ligand in along +x.  (Bounding radii
    # include outlier atoms, so the scan starts slightly inside their sum
    # to reach genuine surface contact.)
    contact = receptor.bounding_radius + ligand.bounding_radius
    separations = np.linspace(contact + 6.0, contact - 8.0, 8)
    print(f"\n{'separation (A)':>15s} {'E_pol (kcal/mol)':>18s} "
          f"{'binding dE_pol':>15s}")
    t0 = time.perf_counter()
    for sep in separations:
        offset = np.array([float(sep), 0.0, 0.0])
        pose = Molecule(ligand.positions + offset, ligand.radii,
                        ligand.charges, ligand.elements, "ligand-pose")
        complex_mol = receptor.merged(pose)
        surface = merged_surface(receptor_surface, receptor,
                                 ligand_surface.transformed(
                                     translation=offset), pose,
                                 owner_offset=len(receptor))
        calc = PolarizationEnergyCalculator(complex_mol, surface=surface)
        energy = calc.run().energy
        print(f"{sep:15.1f} {energy:18.2f} {energy - e_rec - e_lig:15.2f}")
    per_pose = (time.perf_counter() - t0) / len(separations)

    print(f"\n{per_pose:.2f} s per pose with all per-body pre-processing "
          "reused across poses --\nthe amortisation Section IV.C argues "
          "makes octrees the right docking substrate.")


if __name__ == "__main__":
    main()
