#!/usr/bin/env python
"""Hybrid vs distributed parallelism on the simulated Lonestar4 cluster.

Reproduces the paper's central systems experiment interactively: the same
octree GB computation run as OCT_CILK (one process, 12 work-stealing
threads), OCT_MPI (12 single-thread ranks per node) and OCT_MPI+CILK (one
6-thread rank per socket), from one node up to the paper's twelve.

All numerics execute for real once; the layouts are then scheduled
through the simulated MPI engine and the work-stealing scheduler (see
DESIGN.md for the substitution argument).

Run:  python examples/cluster_simulation.py [natoms]
"""

from __future__ import annotations

import sys
import time

from repro import PolarizationEnergyCalculator, cmv_analogue
from repro.analysis import render_table
from repro.parallel import ParallelRunConfig, run_variant


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 24_000
    molecule = cmv_analogue(scale=natoms / 509_640, seed=5)
    print(f"input: {molecule.name} ({len(molecule)} atoms, virus-shell "
          f"analogue)")

    calc = PolarizationEnergyCalculator(molecule)
    t0 = time.perf_counter()
    calc.profile()
    print(f"pipeline executed once in {time.perf_counter() - t0:.1f} s "
          f"(E_pol = {calc.profile().energy:.0f} kcal/mol); layouts below "
          f"are scheduled from the cached work profile\n")

    config = ParallelRunConfig(seed=1)

    # --- one node: the three variants of Table II ---------------------
    rows = []
    for variant in ("OCT_CILK", "OCT_MPI", "OCT_MPI+CILK"):
        r = run_variant(calc, variant, cores=12, config=config)
        rows.append([variant, r.sim_seconds,
                     r.node_bytes / 1e9, r.steals])
    print(render_table(
        ["variant", "sim time (s)", "node mem (GB)", "steals"], rows,
        title="one 12-core node"))

    # --- scaling out: 1..12 nodes --------------------------------------
    rows = []
    base = {}
    for cores in (12, 24, 48, 96, 144):
        row = [cores]
        for variant in ("OCT_MPI", "OCT_MPI+CILK"):
            r = run_variant(calc, variant, cores=cores, config=config)
            base.setdefault(variant, r.sim_seconds)
            row.extend([r.sim_seconds, base[variant] / r.sim_seconds])
        rows.append(row)
    print()
    print(render_table(
        ["cores", "OCT_MPI (s)", "speedup", "OCT_MPI+CILK (s)", "speedup"],
        rows, title="scaling out (speedup vs each variant's one-node time)"))

    print("\nNote the paper's signatures: pure MPI holds a small edge at "
          "low node counts,\nthe hybrid closes in as communication and "
          "memory replication grow, and its\nnode memory stays ~6x lower "
          "throughout.")


if __name__ == "__main__":
    main()
