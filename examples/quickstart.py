#!/usr/bin/env python
"""Quickstart: GB polarization energy of a protein-sized molecule.

Generates a synthetic 3,000-atom protein, runs the paper's octree
algorithm (surface-based r^6 Born radii + approximated GB energy), and
cross-checks against the exact naive reference -- the "<1% error" claim
in one minute on a laptop.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (ApproximationParams, PolarizationEnergyCalculator,
                   protein_blob)


def main() -> None:
    molecule = protein_blob(3000, seed=7)
    print(f"molecule: {molecule.name}, {len(molecule)} atoms, "
          f"net charge {molecule.total_charge:+.2f} e")

    params = ApproximationParams(eps_born=0.9, eps_epol=0.9)
    calc = PolarizationEnergyCalculator(molecule, params)

    t0 = time.perf_counter()
    result = calc.run()
    octree_wall = time.perf_counter() - t0
    print(f"\noctree E_pol = {result.energy:12.2f} kcal/mol "
          f"({octree_wall:.2f} s wall)")
    print(f"surface quadrature points: {result.nqpoints}")
    print(f"exact pair interactions:   {result.born_counters.exact_pairs:,} "
          f"(Born) + {result.energy_counters.exact_pairs:,} (energy)")
    print(f"far-field evaluations:     {result.born_counters.far_evals:,} "
          f"(Born) + {result.energy_counters.far_evals:,} (energy)")

    radii = result.born_radii
    print(f"\nBorn radii: min {radii.min():.2f} A, "
          f"median {np.median(radii):.2f} A, max {radii.max():.2f} A")

    t0 = time.perf_counter()
    cmp = calc.compare_with_naive()
    naive_wall = time.perf_counter() - t0
    print(f"\nnaive  E_pol = {cmp['naive_energy']:12.2f} kcal/mol "
          f"({naive_wall:.2f} s wall, O(N^2))")
    print(f"error vs naive: {cmp['percent_error']:+.3f} %  "
          f"(paper claims < 1% at eps = 0.9)")


if __name__ == "__main__":
    main()
