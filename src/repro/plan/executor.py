"""Batched plan executors: pure kernels over plan row ranges.

These replace the per-leaf Python loops of the legacy kernels with a few
large concatenated GEMM/einsum batches per distinct tile shape, while
reproducing the legacy results *bit for bit*:

* rows with the same tile shape are bucketed and evaluated in one batched
  ``np.matmul``/``np.einsum`` call -- batched BLAS/einsum results are
  bitwise equal to the per-tile 2-D calls, and each output row depends
  only on its own inputs, so zero/arbitrary padding of the ragged atoms
  dimension never leaks into real rows;
* scatters into the additive accumulators use ``np.add.at`` over the
  flat CSR arrays in row-major order -- element order identical to the
  legacy sequential per-leaf ``+=`` passes, so the accumulation order
  (and hence the float result) is unchanged;
* the energy pair sum is folded row by row in ascending row order,
  interleaving each row's far and near terms exactly as the per-leaf
  loop did (IEEE addition is not associative; the fold order *is* the
  contract).

Division guards mirror the legacy per-tile ``r2.min()`` branch: a plain
division when every squared distance in the chunk is clearly nonzero,
``errstate`` + ``nan_to_num`` otherwise.  Both arms produce bitwise
identical values on finite inputs (``nan_to_num`` is the identity
there), so the guard is purely a performance choice and never changes a
result, whichever arm the chunking happens to select.
"""

from __future__ import annotations

import numpy as np

from ..analysis_static.flow.contracts import array_contract
from ..analysis_static.verify.annotations import declares_effects
from ..core.born import AtomTreeData, BornPartial, QuadTreeData
from ..core.energy import EnergyContext, EpolPartial
from ..core.gbmodels import f_gb
from ..runtime.instrument import WorkCounters
from .schema import InteractionPlan

#: Upper bound on the element count of one tile; far-field buckets are
#: chunked below it and Born near rows are cut into atom-axis segments of
#: ``MAX_TILE_ELEMS // Q`` so every intermediate stays cache-resident
#: (~0.25 MB) -- measured ~2x faster than DRAM-sized tiles for the same
#: arithmetic.  Blocking is bit-neutral: every output element keeps its
#: full per-row reduction and only the final CSR-order scatter / left
#: fold carries the accumulation order.
MAX_TILE_ELEMS = 1 << 15

#: Largest flat pair-space operand (elements) the energy executor will
#: memoise on the plan.  Below it, the r2/born-product/charge-product
#: tiles (which depend only on the plan and its input arrays) persist
#: across executions -- an epsilon sweep or repeated energy evaluation
#: then pays only the flat f_GB chain.  Above it (~128 MB per array)
#: they are rebuilt each call rather than pinned in memory.
OPERAND_CACHE_MAX = 1 << 24


def _check_plan(plan: InteractionPlan, kind: str,
                row_range: tuple[int, int] | None) -> tuple[int, int]:
    if plan.kind != kind:
        raise ValueError(f"expected a {kind!r} plan, got {plan.kind!r}")
    lo, hi = (0, plan.nrows) if row_range is None else row_range
    if not (0 <= lo <= hi <= plan.nrows):
        raise ValueError(f"row range [{lo}, {hi}) outside plan "
                         f"[0, {plan.nrows})")
    return int(lo), int(hi)


def _bucket_chunks(rows: np.ndarray, elems_per_row: np.ndarray
                   ) -> list[np.ndarray]:
    """Split a bucket's rows into contiguous chunks whose summed tensor
    elements stay under :data:`MAX_TILE_ELEMS` (each chunk >= 1 row)."""
    if rows.size == 0:
        return []
    start = np.cumsum(elems_per_row) - elems_per_row
    chunk_of = start // MAX_TILE_ELEMS
    splits = np.flatnonzero(np.diff(chunk_of)) + 1
    return np.split(rows, splits)


class _Scratch:
    """Reusable flat float64 buffer handing out reshaped views.

    Fresh tile-sized temporaries are mmap-backed and page-fault on every
    first touch, which costs as much as the arithmetic itself; reusing
    one buffer across chunks keeps the hot loop allocation-free.  Values
    written through a view are bitwise identical to a fresh array --
    only the storage is recycled.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = np.empty(0)

    def view(self, shape: tuple[int, ...]) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= int(dim)
        if self._buf.size < n:
            self._buf = np.empty(n)
        return self._buf[:n].reshape(shape)


@declares_effects()
@array_contract(far="(?,) float64 view-ok", near="(?,) float64 view-ok")
def execute_born_plan(plan: InteractionPlan, atoms: AtomTreeData,
                      quad: QuadTreeData, *,
                      row_range: tuple[int, int] | None = None,
                      per_leaf: list[WorkCounters] | None = None,
                      flat_out: dict[str, np.ndarray] | None = None
                      ) -> BornPartial:
    """APPROX-INTEGRALS over plan rows ``[lo, hi)``, batched.

    Bit-identical to running the legacy per-leaf loop over the same target
    leaves; partials from disjoint row ranges combine by addition exactly
    as the per-leaf partials did.

    ``flat_out`` hands ownership of the accumulation to the caller: a
    mapping with ``"far"`` and ``"near"`` float64 arrays sized to the row
    range's flat CSR spans (``far_start[hi] - far_start[lo]`` and
    ``near_point_start[hi] - near_point_start[lo]``).  The kernel then
    writes each contribution value into those arrays -- every slot
    exactly once, by position -- and *skips* the two ``np.add.at``
    scatters, returning a zero partial (counters still set).  Because
    flat values are position-written, a caller that concatenates the
    slices of disjoint row ranges and replays the full-range scatters
    reproduces the serial result bit for bit (the scatter order, not the
    row partitioning, carries the accumulation order).
    """
    lo, hi = _check_plan(plan, "born", row_range)
    partial = BornPartial.zeros(atoms)
    partial.counters = plan.counters(lo, hi)
    if per_leaf is not None:
        per_leaf.extend(plan.row_counters(lo, hi))
    if flat_out is not None:
        for fname, total in (
                ("far", int(plan.far_start[hi]) - int(plan.far_start[lo])),
                ("near", (int(plan.near_point_start[hi])
                          - int(plan.near_point_start[lo])))):
            if flat_out[fname].shape != (total,):
                raise ValueError(
                    f"flat_out[{fname!r}] must have shape ({total},) for "
                    f"rows [{lo}, {hi}), got {flat_out[fname].shape}")
    if hi == lo:
        return partial
    rows = np.arange(lo, hi, dtype=np.int64)
    a_tree = atoms.tree
    q_tree = quad.tree
    power = plan.power

    # -- far field: s_A += n~_Q . (c_Q - c_A) / d^power, GEMV-batched ---
    far_counts = plan.far_counts[rows]
    far_base = int(plan.far_start[lo])
    far_total = int(plan.far_start[hi]) - far_base
    if far_total:
        contrib_flat = (flat_out["far"] if flat_out is not None
                        else np.empty(far_total))
        centers = q_tree.ball_center[plan.target_leaves]
        ntilde = quad.node_pseudo_normals[plan.target_leaves]
        for count in np.unique(far_counts):
            if count == 0:
                continue
            bucket = rows[far_counts == count]
            for r in _bucket_chunks(bucket, np.full(len(bucket),
                                                    3 * count)):
                span = plan.far_start[r][:, None] \
                    + np.arange(count, dtype=np.int64)[None, :]
                nodes = plan.far_nodes[span]
                diff = centers[r][:, None, :] - a_tree.ball_center[nodes]
                d2 = plan.far_dist[span] ** 2
                denom = d2 * d2 * d2 if power == 6 else d2 * d2
                dots = np.matmul(diff, ntilde[r][:, :, None])[:, :, 0]
                contrib_flat[span.ravel() - far_base] = \
                    (dots / denom).ravel()
        # Row-major element order == the legacy per-leaf fancy-index "+="
        # sequence, so every s_node slot sees the same addition order.
        if flat_out is None:
            np.add.at(partial.s_node,
                      plan.far_nodes[far_base:far_base + far_total],
                      contrib_flat)

    # -- near field: exact r^power tiles, GEMM-batched by tile shape ----
    q_sizes = plan.target_sizes[rows]
    a_counts = plan.near_point_counts[rows]
    near_base = int(plan.near_point_start[lo])
    near_total = int(plan.near_point_start[hi]) - near_base
    if near_total:
        near_flat = (flat_out["near"] if flat_out is not None
                     else np.empty(near_total))
        qs_all = plan.target_point_start
        # One CSR-ordered (and plan-memoised) gather of every near atom
        # position; each segment below is then a *contiguous view* into
        # it -- no index arrays, no masks, no padding in the hot loop.
        apos_csr = plan.gathered("atom_pos", a_tree.sorted_points)
        # Cut every row's atom range into segments of ~MAX_TILE_ELEMS
        # tile elements so each GEMM block is L2-resident.  Bit-neutral:
        # every (row, atom) output element keeps its full-Q reduction
        # below, and near_flat slots are written once, by position --
        # only the single np.add.at after the loop carries the
        # accumulation order.
        blk = np.maximum(MAX_TILE_ELEMS // np.maximum(q_sizes, 1), 1)
        nseg = -(-a_counts // blk)
        seg_row = np.repeat(rows, nseg)
        first = np.cumsum(nseg) - nseg
        seg_off = (np.arange(seg_row.size, dtype=np.int64)
                   - np.repeat(first, nseg)) * np.repeat(blk, nseg)
        seg_len = np.minimum(np.repeat(a_counts, nseg) - seg_off,
                             np.repeat(blk, nseg))
        seg_q = np.repeat(q_sizes, nseg)
        buf_r2, buf_num, buf_den = _Scratch(), _Scratch(), _Scratch()
        buf_tc, buf_tm2 = _Scratch(), _Scratch()
        buf_s2row, buf_swnrow = _Scratch(), _Scratch()
        for q in np.unique(seg_q):
            sel = np.flatnonzero(seg_q == q)
            # Hoist every Q-side quantity out of the segment loop: one
            # batched computation per distinct row of the bucket, each
            # bitwise equal to its per-tile counterpart (row-wise ops on
            # stacked rows touch only that row's values).
            urows = np.unique(seg_row[sel])
            qidx = qs_all[urows][:, None] \
                + np.arange(q, dtype=np.int64)[None, :]
            qpos = quad.sorted_points[qidx]              # (U, Q, 3)
            u_center = qpos.mean(axis=1)                 # (U, 3)
            u_sc = qpos - u_center[:, None, :]           # (U, Q, 3)
            u_wn = quad.sorted_weights[qidx][:, :, None] \
                * quad.sorted_normals[qidx]              # (U, Q, 3)
            u_s2 = (u_sc * u_sc).sum(axis=2)             # (U, Q)
            u_swn = (u_sc * u_wn).sum(axis=2)            # (U, Q)
            u_scT = u_sc.transpose(0, 2, 1).copy()       # (U, 3, Q)
            u_wnT = u_wn.transpose(0, 2, 1).copy()
            ri_all = np.searchsorted(urows, seg_row[sel])
            s0_all = plan.near_point_start[seg_row[sel]] + seg_off[sel]
            ln_all = seg_len[sel]
            blkq = max(MAX_TILE_ELEMS // max(int(q), 1), 1)
            s2_row = buf_s2row.view((blkq, q))
            swn_row = buf_swnrow.view((blkq, q))
            last_ri = -1
            # One 2-D tile per segment, every input a contiguous slice.
            # 2-D ops on a segment equal the corresponding slices of a
            # batched 3-D call bitwise, which in turn equal the legacy
            # per-tile kernel; the in-place ufunc chain evaluates the
            # identical expression tree ((t2 + s2) - 2*tq == (t2 + s2)
            # + (-2)*tq; (r2*r2)*r2), just into recycled storage.
            for j in range(sel.size):
                ri = ri_all[j]
                s0 = int(s0_all[j])
                ln = int(ln_all[j])
                if ri != last_ri:
                    # Materialise the row-constant broadcast operands
                    # once per row (a row's first segment is its longest)
                    # so the adds/subtracts below run all-contiguous
                    # inner loops; a physical copy of a broadcast operand
                    # never changes the operation's values.
                    s2_row[:ln] = u_s2[ri][None, :]
                    swn_row[:ln] = u_swn[ri][None, :]
                    last_ri = ri
                t_c = np.subtract(apos_csr[s0:s0 + ln], u_center[ri],
                                  out=buf_tc.view((ln, 3)))
                shape = (ln, q)
                # Scaling t_c by -2 before the GEMM is exact (power-of-2
                # multiply shifts exponents only), so this equals
                # -2*(t_c @ s_c^T) bitwise while saving one full pass.
                tm2 = np.multiply(t_c, -2.0, out=buf_tm2.view((ln, 3)))
                r2 = np.matmul(tm2, u_scT[ri], out=buf_r2.view(shape))
                # A length-3 np.sum is a sequential left fold, so the
                # spelt-out column arithmetic below is bitwise equal to
                # (t_c*t_c).sum(axis=1) while replacing per-row
                # 3-element reduction loops with whole-column ufuncs.
                x, y, z = t_c[:, 0], t_c[:, 1], t_c[:, 2]
                tmp = buf_num.view(shape)
                np.copyto(tmp, (x * x + y * y + z * z)[:, None])
                np.add(tmp, s2_row[:ln], out=tmp)
                np.add(r2, tmp, out=r2)
                # The zero clamp is the identity unless cancellation
                # produced a negative, so one min() read replaces a full
                # read-write pass in the common case; the clamped min is
                # exactly max(r2min, 0) either way, so the division
                # guard below sees the same value as the legacy kernel.
                r2min = float(r2.min())
                if r2min < 0.0:
                    np.maximum(r2, 0.0, out=r2)
                    r2min = 0.0
                num = np.matmul(t_c, u_wnT[ri],
                                out=buf_num.view(shape))
                np.subtract(swn_row[:ln], num, out=num)
                denom = np.multiply(r2, r2, out=buf_den.view(shape))
                if power == 6:
                    np.multiply(denom, r2, out=denom)
                if r2min > 1e-24:
                    term = np.divide(num, denom, out=num)
                else:
                    with np.errstate(divide="ignore", invalid="ignore"):
                        term = np.divide(num, denom, out=num)
                    np.nan_to_num(term, copy=False, nan=0.0, posinf=0.0,
                                  neginf=0.0)
                np.sum(term, axis=1,
                       out=near_flat[s0 - near_base:s0 - near_base + ln])
        if flat_out is None:
            np.add.at(partial.s_atom,
                      plan.near_points[near_base:near_base + near_total],
                      near_flat)
    return partial


@declares_effects()
@array_contract(far_terms="(?,) float64 C", near_terms="(?,) float64 C")
def epol_row_terms(plan: InteractionPlan, ctx: EnergyContext, *,
                   row_range: tuple[int, int] | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Per-row APPROX-EPOL far/near pair-sum terms for rows ``[lo, hi)``.

    Each returned element is that row's full reduction -- the far binned
    einsum and the near contiguous-pair ``np.sum`` -- so a row's value is
    bitwise independent of which range it was computed in (batching by
    shape only regroups *whole* rows; no per-row summation tree changes).
    A caller that concatenates disjoint ranges in ascending row order and
    replays the serial interleaved left fold (far before near within a
    row) therefore reproduces :func:`execute_epol_plan` over the union
    bit for bit.  This is the intra-request slice kernel of
    :mod:`repro.serve.sliced`.
    """
    lo, hi = _check_plan(plan, "epol", row_range)
    if hi == lo:
        return np.zeros(0), np.zeros(0)
    return _epol_terms(plan, ctx, lo, hi)


def _epol_terms(plan: InteractionPlan, ctx: EnergyContext,
                lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
    """Far/near term arrays for rows ``[lo, hi)`` (``hi > lo``)."""
    rows = np.arange(lo, hi, dtype=np.int64)
    tree = ctx.atoms.tree
    pos = tree.sorted_points
    charges = ctx.atoms.sorted_charges
    born = ctx.born_sorted
    pair_r2 = ctx.pair_radius_sq

    # -- far field: binned-charge einsum, batched by far count ----------
    far_terms = np.zeros(hi - lo)
    far_counts = plan.far_counts[rows]
    if int(far_counts.sum()):
        q_v_all = ctx.node_hist[plan.target_leaves]
        k = ctx.node_hist.shape[1]
        # Hoisted f_GB constants: *(-4) is exact (power-of-2 scale plus
        # sign flip), so d2 / m4bp == -(d2 / (4*bp)) bitwise.
        bp = pair_r2[None, None, :, :]
        m4bp = pair_r2 * -4.0
        buf_f = _Scratch()
        for count in np.unique(far_counts):
            if count == 0:
                continue
            bucket = rows[far_counts == count]
            for r in _bucket_chunks(bucket,
                                    np.full(len(bucket), count * k * k)):
                span = plan.far_start[r][:, None] \
                    + np.arange(count, dtype=np.int64)[None, :]
                q_u = ctx.node_hist[plan.far_nodes[span]]   # (B, F, K)
                d2 = (plan.far_dist[span] ** 2)[:, :, None, None]
                # gbmodels.f_gb's expression tree op for op, in place:
                # 1 / sqrt(d2 + bp * exp(-d2 / (4 bp))), (B, F, K, K).
                g = np.divide(d2, m4bp[None, None, :, :],
                              out=buf_f.view((len(r), count, k, k)))
                np.exp(g, out=g)
                np.multiply(g, bp, out=g)
                np.add(g, d2, out=g)
                np.sqrt(g, out=g)
                np.divide(1.0, g, out=g)
                far_terms[r - lo] = np.einsum("bfi,bj,bfij->b",
                                              q_u, q_v_all[r], g)

    # -- near field: exact f_GB tiles as one flat CSR-pair chain --------
    near_terms = np.zeros(hi - lo)
    v_sizes_all = plan.target_sizes
    n_counts_all = plan.near_point_counts
    v_sizes = v_sizes_all[rows]
    n_counts = n_counts_all[rows]
    if int(n_counts.sum()):
        vs_all = plan.target_point_start
        # Flat pair-space CSR: row t's (n, V) tile occupies the
        # contiguous slice [pair_start[t], pair_start[t+1]) in C order.
        pair_counts = n_counts_all * v_sizes_all
        pair_start = np.concatenate(([0], np.cumsum(pair_counts)))
        p_base = int(pair_start[lo])
        p_total = int(pair_start[hi]) - p_base
        # CSR-ordered (and plan-memoised) gathers of every near atom's
        # inputs; each build row below is then three contiguous views.
        pos_csr = plan.gathered("pos", pos)
        born_csr = plan.gathered("born", born)
        q_csr = plan.gathered("charges", charges)

        def build_operands():
            # f_GB's three tile operands -- squared distances (already
            # clamped), Born products, charge products -- written row by
            # row into flat pair-space arrays.  They depend only on
            # (plan, pos, born, charges), so the memo below makes this
            # loop a once-per-plan cost; every later execution is just
            # the flat elementwise chain after it.
            R2 = np.empty(p_total)
            BB = np.empty(p_total)
            QQ = np.empty(p_total)
            buf_tc, buf_tm2 = _Scratch(), _Scratch()
            for v in np.unique(v_sizes):
                bucket = rows[(v_sizes == v) & (n_counts > 0)]
                if bucket.size == 0:
                    continue
                # Hoisted V-side row quantities (one batched computation
                # per bucket; row-wise ops on stacked rows touch only
                # that row's values, so each row matches its per-tile
                # counterpart).
                vidx = vs_all[bucket][:, None] \
                    + np.arange(v, dtype=np.int64)[None, :]
                vpos = pos[vidx]                          # (U, V, 3)
                u_center = vpos.mean(axis=1)
                u_sc = vpos - u_center[:, None, :]
                u_s2 = (u_sc * u_sc).sum(axis=2)          # (U, V)
                u_scT = u_sc.transpose(0, 2, 1).copy()    # (U, 3, V)
                u_born = born[vidx]                       # (U, V)
                u_q = charges[vidx]
                s0_all = plan.near_point_start[bucket]
                n_all = n_counts_all[bucket]
                p0_all = pair_start[bucket] - p_base
                # One 2-D tile per row, each written into its flat pair
                # slice.  Same in-place tricks as the Born kernel: the
                # -2 folds into the GEMM operand exactly, the spelt-out
                # column arithmetic equals the length-3 left-fold
                # np.sum, the clamp runs only when a negative exists,
                # and rank-1 GEMM outer products (k=1: one rounding per
                # element) equal the broadcast multiplies bitwise.
                for j in range(bucket.size):
                    s0 = int(s0_all[j])
                    n = int(n_all[j])
                    p0 = int(p0_all[j])
                    shape = (n, v)
                    t_c = np.subtract(pos_csr[s0:s0 + n], u_center[j],
                                      out=buf_tc.view((n, 3)))
                    tm2 = np.multiply(t_c, -2.0,
                                      out=buf_tm2.view((n, 3)))
                    r2 = np.matmul(tm2, u_scT[j],
                                   out=R2[p0:p0 + n * v].reshape(shape))
                    x, y, z = t_c[:, 0], t_c[:, 1], t_c[:, 2]
                    bb = BB[p0:p0 + n * v].reshape(shape)
                    tmp = np.add((x * x + y * y + z * z)[:, None],
                                 u_s2[j][None, :], out=bb)
                    np.add(r2, tmp, out=r2)
                    if float(r2.min()) < 0.0:
                        np.maximum(r2, 0.0, out=r2)
                    np.matmul(born_csr[s0:s0 + n, None],
                              u_born[j][None, :], out=bb)
                    np.matmul(q_csr[s0:s0 + n, None],
                              u_q[j][None, :],
                              out=QQ[p0:p0 + n * v].reshape(shape))
            return R2, BB, QQ, np.empty(p_total)

        R2, BB, QQ, f = plan.memo(
            "epol_near_operands", (pos, born, charges, lo, hi),
            build_operands, cache=p_total <= OPERAND_CACHE_MAX)
        # gbmodels.f_gb's expression tree op for op as flat full-range
        # passes -- elementwise and positional, so indistinguishable
        # from the per-tile evaluation (r2 / (-4 bb) == -(r2 / (4 bb))
        # exactly; *(-4) is a power-of-2 scale plus sign flip).  Only f
        # is written; the cached operands survive for the next call.
        np.multiply(BB, -4.0, out=f)
        np.divide(R2, f, out=f)
        np.exp(f, out=f)
        np.multiply(BB, f, out=f)
        np.add(R2, f, out=f)
        np.sqrt(f, out=f)
        term = np.divide(QQ, f, out=f)
        # Per-row np.sum over the row's contiguous flat pair slice:
        # same length, same memory order, same pairwise blocking as the
        # legacy per-leaf 2-D np.sum.  A scalar per ragged row cannot
        # be batched without changing the summation tree, so this stays
        # an O(rows) loop of O(1) reductions.
        nz = np.flatnonzero(n_counts) + lo
        p0_all = pair_start[nz] - p_base
        pc_all = pair_counts[nz]
        for j in range(nz.size):
            p0 = int(p0_all[j])
            near_terms[nz[j] - lo] = np.sum(term[p0:p0 + int(pc_all[j])])

    return far_terms, near_terms


@declares_effects()
def execute_epol_plan(plan: InteractionPlan, ctx: EnergyContext, *,
                      row_range: tuple[int, int] | None = None,
                      per_leaf: list[WorkCounters] | None = None
                      ) -> EpolPartial:
    """APPROX-EPOL over plan rows ``[lo, hi)``, batched.

    Bit-identical to the legacy per-leaf loop over the same leaves:
    the far einsum and near tiles are batched by shape
    (:func:`epol_row_terms`), and the final pair sum interleaves each
    row's far/near terms in ascending row order -- the legacy
    accumulation order.
    """
    lo, hi = _check_plan(plan, "epol", row_range)
    nbins = ctx.binning.nbins
    counters = plan.counters(lo, hi, nbins=nbins)
    if per_leaf is not None:
        per_leaf.extend(plan.row_counters(lo, hi, nbins=nbins))
    if hi == lo:
        return EpolPartial(pair_sum=0.0, counters=counters)
    far_terms, near_terms = _epol_terms(plan, ctx, lo, hi)

    # Ascending row order, far before near within a row -- the exact
    # left-fold the legacy loop performed (order is the contract).
    total = 0.0
    for i in range(hi - lo):  # repro-lint: disable=REP006
        total += far_terms[i]
        total += near_terms[i]
    return EpolPartial(pair_sum=float(total), counters=counters)
