"""Vectorised planners: one multi-target traversal -> one plan.

The planners subsume the traversal half of the legacy per-leaf loops in
:func:`repro.core.born.approx_integrals_perleaf` and
:func:`repro.core.energy.approx_epol_perleaf`: every target leaf is
classified against the walked tree in a single shared-frontier sweep
(:func:`repro.octree.traversal.classify_many`), and the per-row results
land in the CSR arrays of :class:`~repro.plan.schema.InteractionPlan`
in exactly the order the per-leaf walks would have produced them.

Rows follow the target tree's **canonical leaf order** (ascending SFC
key; :attr:`repro.octree.octree.Octree.leaves`), and every plan records
the octree variant its node/point ids refer to -- the row-order contract
the executors' fold order is defined against.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.born import AtomTreeData, QuadTreeData, _slice_concat
from ..octree.mac import born_mac_multiplier, epol_mac_multiplier
from ..octree.octree import Octree
from ..octree.traversal import MultiClassification, classify_many
from .schema import InteractionPlan


def _near_point_csr(tree: Octree, mc: MultiClassification
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Flatten each row's near-leaf point slices into one array.

    Row-wise this equals ``_slice_concat(tree, row_near_leaves)`` -- the
    concatenation over the row's leaves in CSR order -- because
    ``_slice_concat`` itself concatenates per-leaf slices in input order.
    """
    counts = tree.point_end[mc.near_leaves] - tree.point_start[mc.near_leaves]
    prefix = np.zeros(len(mc.near_leaves) + 1, dtype=np.int64)
    np.cumsum(counts, out=prefix[1:])
    near_point_start = prefix[mc.near_start]
    return near_point_start, _slice_concat(tree, mc.near_leaves)


def _plan_from_classification(kind: str, walked: Octree, target: Octree,
                              leaves: np.ndarray, mc: MultiClassification, *,
                              eps: float, mac_variant: str, power: int,
                              multiplier: float, t0: float,
                              timer: Callable[[], float] | None
                              ) -> InteractionPlan:
    near_point_start, near_points = _near_point_csr(walked, mc)
    if walked.variant != target.variant:
        raise ValueError(f"walked/target tree variants differ: "
                         f"{walked.variant!r} vs {target.variant!r}")
    plan = InteractionPlan(
        kind=kind, eps=eps, mac_variant=mac_variant, power=power,
        multiplier=float(multiplier), tree_variant=target.variant,
        target_leaves=np.asarray(leaves, dtype=np.int64),
        target_point_start=target.point_start[leaves].astype(np.int64),
        target_point_end=target.point_end[leaves].astype(np.int64),
        far_start=mc.far_start, far_nodes=mc.far_nodes, far_dist=mc.far_dist,
        near_leaf_start=mc.near_start, near_leaves=mc.near_leaves,
        near_point_start=near_point_start, near_points=near_points,
        nodes_visited=mc.nodes_visited,
        build_seconds=(timer() - t0) if timer is not None else 0.0)
    return plan


def build_born_plan(atoms: AtomTreeData, quad: QuadTreeData, eps: float, *,
                    disable_far: bool = False,
                    mac_variant: str = "practical", power: int = 6,
                    q_leaves: np.ndarray | None = None,
                    timer: Callable[[], float] | None = None
                    ) -> InteractionPlan:
    """Plan the Born-integral phase: classify quadrature-tree leaves
    (targets) against the atoms tree.

    ``q_leaves`` restricts the plan to a subset of targets (default: every
    leaf of the quadrature tree, in leaf order -- the full-pipeline plan
    the driver caches and the ranks slice).  ``timer`` is an injectable
    clock for ``build_seconds``; without one the planner touches no clock
    and reports 0.0 (keeps the builder callable from pure modules).
    """
    t0 = timer() if timer is not None else 0.0
    q_tree = quad.tree
    leaves = q_tree.leaves if q_leaves is None \
        else np.asarray(q_leaves, dtype=np.int64)
    mult = np.inf if disable_far \
        else born_mac_multiplier(eps, variant=mac_variant)
    mc = classify_many(atoms.tree, q_tree.ball_center[leaves],
                       q_tree.ball_radius[leaves], mult)
    return _plan_from_classification(
        "born", atoms.tree, q_tree, leaves, mc, eps=eps,
        mac_variant=mac_variant, power=power, multiplier=mult, t0=t0,
        timer=timer)


def build_epol_plan(atoms: AtomTreeData, eps: float, *,
                    disable_far: bool = False,
                    v_leaves: np.ndarray | None = None,
                    timer: Callable[[], float] | None = None
                    ) -> InteractionPlan:
    """Plan the energy phase: classify atoms-tree leaves against the same
    atoms tree.

    Needs only the tree and ``eps`` -- *not* the Born radii -- so both
    plans of a pipeline can be built (and published to workers) before the
    Born phase runs.  ``timer`` as in :func:`build_born_plan`.
    """
    t0 = timer() if timer is not None else 0.0
    tree = atoms.tree
    leaves = tree.leaves if v_leaves is None \
        else np.asarray(v_leaves, dtype=np.int64)
    mult = np.inf if disable_far else epol_mac_multiplier(eps)
    mc = classify_many(tree, tree.ball_center[leaves],
                       tree.ball_radius[leaves], mult)
    return _plan_from_classification(
        "epol", tree, tree, leaves, mc, eps=eps, mac_variant="", power=0,
        multiplier=mult, t0=t0, timer=timer)
