"""Plan caching across pipeline phases and epsilon sweeps.

A plan depends only on ``(tree pair, eps, mac_variant, power)``; the
driver's phases and the Fig. 10 epsilon sweep keep asking for the same
handful of configurations, so building each plan once and reusing it is
pure win.  :class:`PlanCache` is a tiny keyed store with hit/miss
accounting that feeds the plan-timing section of the bench output.
"""

from __future__ import annotations

from typing import Callable

from .schema import InteractionPlan

#: Cache key: ("born", eps, mac_variant, power) or ("epol", eps).
PlanKey = tuple


def born_key(eps: float, *, mac_variant: str = "practical",
             power: int = 6, disable_far: bool = False) -> PlanKey:
    return ("born", float(eps), mac_variant, power, bool(disable_far))


def epol_key(eps: float, *, disable_far: bool = False) -> PlanKey:
    return ("epol", float(eps), bool(disable_far))


class PlanCache:
    """Keyed store of built :class:`InteractionPlan` objects.

    One cache belongs to one calculator (one fixed tree pair); keys only
    encode the kernel configuration.  ``get_or_build`` is the single
    entry point so every consumer shares the hit/miss ledger.
    """

    def __init__(self) -> None:
        self._plans: dict[PlanKey, InteractionPlan] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    def get_or_build(self, key: PlanKey,
                     builder: Callable[[], InteractionPlan]
                     ) -> InteractionPlan:
        """Return the cached plan for ``key``, building it on first use."""
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = builder()
        self._plans[key] = plan
        return plan

    def put(self, key: PlanKey, plan: InteractionPlan) -> None:
        """Insert an externally built plan (e.g. one received from the
        parent process through shared memory)."""
        self._plans[key] = plan

    def build_seconds(self) -> float:
        """Total wall seconds spent building the cached plans."""
        # Timing bookkeeping, not an energy term (dict order is insertion
        # order; nothing numeric depends on this value).
        return sum(p.build_seconds  # repro-lint: disable=REP001
                   for p in self._plans.values())

    def stats(self) -> dict:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "build_seconds": self.build_seconds(),
        }
