"""Plan caching across pipeline phases and epsilon sweeps.

A plan depends only on ``(tree pair + variant, eps, mac_variant,
power)``; the
driver's phases and the Fig. 10 epsilon sweep keep asking for the same
handful of configurations, so building each plan once and reusing it is
pure win.  :class:`PlanCache` is a tiny keyed store with hit/miss
accounting that feeds the plan-timing section of the bench output.

For long-lived owners (an epsilon sweep over many values, or the serving
registry where one cache lives per registered molecule) the cache accepts
an optional ``max_bytes`` budget: entries are evicted least-recently-used
by their *measured* :attr:`~repro.plan.schema.InteractionPlan.nbytes`
until the store fits.  The default stays unbounded so existing callers
keep their grow-forever semantics.
"""

from __future__ import annotations

from typing import Callable

from .schema import InteractionPlan

#: Cache key: ("born", eps, mac_variant, power, disable_far, tree_variant)
#: or ("epol", eps, disable_far, tree_variant).  The tree variant is part
#: of the key because a plan's node/point ids are only valid against the
#: exact tree layout it was built from -- two variants of one molecule
#: must never share a cached plan.
PlanKey = tuple


def born_key(eps: float, *, mac_variant: str = "practical",
             power: int = 6, disable_far: bool = False,
             tree_variant: str = "morton") -> PlanKey:
    return ("born", float(eps), mac_variant, power, bool(disable_far),
            tree_variant)


def epol_key(eps: float, *, disable_far: bool = False,
             tree_variant: str = "morton") -> PlanKey:
    return ("epol", float(eps), bool(disable_far), tree_variant)


class PlanCache:
    """Keyed store of built :class:`InteractionPlan` objects.

    One cache belongs to one calculator (one fixed tree pair); keys only
    encode the kernel configuration.  ``get_or_build`` is the single
    entry point so every consumer shares the hit/miss ledger.

    With ``max_bytes`` set, the store is an LRU bounded by the summed
    ``plan.nbytes`` of its entries; the plan just built (or hit) is never
    evicted by its own insertion, so ``get_or_build`` always returns a
    live plan even when one plan alone exceeds the budget.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (or None for unbounded)")
        # dicts preserve insertion order; recency = position (pop/reinsert).
        self._plans: dict[PlanKey, InteractionPlan] = {}
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    @property
    def current_bytes(self) -> int:
        """Measured bytes held right now (sum of entry ``nbytes``)."""
        # Integer byte counts, not an energy term (addition order free).
        return sum(p.nbytes  # repro-lint: disable=REP001
                   for p in self._plans.values())

    def _touch(self, key: PlanKey) -> None:
        self._plans[key] = self._plans.pop(key)

    def _evict_over_budget(self, protect: PlanKey) -> None:
        if self.max_bytes is None:
            return
        while self.current_bytes > self.max_bytes and len(self._plans) > 1:
            victim = next(k for k in self._plans if k != protect)
            del self._plans[victim]
            self.evictions += 1

    def get_or_build(self, key: PlanKey,
                     builder: Callable[[], InteractionPlan]
                     ) -> InteractionPlan:
        """Return the cached plan for ``key``, building it on first use."""
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            self._touch(key)
            return plan
        self.misses += 1
        plan = builder()
        self._plans[key] = plan
        self._evict_over_budget(key)
        return plan

    def put(self, key: PlanKey, plan: InteractionPlan) -> None:
        """Insert an externally built plan (e.g. one received from the
        parent process through shared memory)."""
        self._plans.pop(key, None)
        self._plans[key] = plan
        self._evict_over_budget(key)

    def build_seconds(self) -> float:
        """Total wall seconds spent building the cached plans."""
        # Timing bookkeeping, not an energy term (dict order is insertion
        # order; nothing numeric depends on this value).
        return sum(p.build_seconds  # repro-lint: disable=REP001
                   for p in self._plans.values())

    def stats(self) -> dict:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "build_seconds": self.build_seconds(),
        }
