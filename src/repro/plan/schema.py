"""The :class:`InteractionPlan` CSR schema.

One plan records every traversal decision for one ``(tree pair, eps,
mac_variant, power)`` configuration: for each target leaf (a *row*), the
far nodes the MAC accepted (with their centre distances) and the near
leaves it rejected, plus the flattened sorted-position point ids under
those near leaves.  Everything is flat ``int64``/``float64`` arrays so a
plan can be published once into shared memory
(:class:`~repro.parallel.procpool.shm.SharedArrayBundle`) and executed in
slices by every rank.

Determinism invariants (see ``docs/ALGORITHMS.md``):

* rows are in **canonical leaf-key order** -- the target tree's
  ``leaves`` list, i.e. ascending SFC key / ascending ``point_start``;
  the plan records this contract (``row_order``) and the tree variant it
  was built against (``tree_variant``) in its metadata, and the fold
  order of every executor is defined as ascending row order;
* within a row, far nodes and near leaves appear in the exact BFS
  level-major order :func:`~repro.octree.traversal.classify_against_ball`
  emits, and ``far_dist`` carries the bit pattern of the single-target
  walk's distance expression;
* ``near_points`` of a row equals ``_slice_concat`` of the row's near
  leaves, so executors scatter exact tiles to the same positions in the
  same order as the per-leaf path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from ..analysis_static.flow.contracts import array_contract
from ..runtime.instrument import WorkCounters

#: The flat arrays a plan is made of, in publication order.  All are
#: ``int64`` except ``far_dist`` (``float64``).
PLAN_ARRAY_FIELDS: tuple[str, ...] = (
    "target_leaves", "target_point_start", "target_point_end",
    "far_start", "far_nodes", "far_dist",
    "near_leaf_start", "near_leaves",
    "near_point_start", "near_points",
    "nodes_visited",
)

#: Scalar metadata fields pickled alongside the arrays.
PLAN_META_FIELDS: tuple[str, ...] = (
    "kind", "eps", "mac_variant", "power", "multiplier", "build_seconds",
    "tree_variant", "row_order",
)

#: The only row-order contract current executors implement: rows in the
#: target tree's canonical leaf order, folded ascending.
ROW_ORDER_LEAF_KEY = "leaf-key"


@array_contract(
    target_leaves="(nrows,) int64 C",
    target_point_start="(nrows,) int64 C",
    target_point_end="(nrows,) int64 C",
    far_start="(nrows+1,) int64 C",
    far_nodes="(nnz_far,) int64 C",
    far_dist="(nnz_far,) float64 C",
    near_leaf_start="(nrows+1,) int64 C",
    near_leaves="(nnz_near_leaves,) int64 C",
    near_point_start="(nrows+1,) int64 C",
    near_points="(nnz_near,) int64 C",
    nodes_visited="(nrows,) int64 C",
)
@dataclass
class InteractionPlan:
    """Flat-CSR interaction lists for one kernel configuration.

    Row ``t`` describes target leaf ``target_leaves[t]``:

    * ``far_nodes[far_start[t]:far_start[t+1]]`` (and ``far_dist``) are
      the MAC-accepted nodes of the walked tree;
    * ``near_leaves[near_leaf_start[t]:near_leaf_start[t+1]]`` are the
      exact-tile leaves;
    * ``near_points[near_point_start[t]:near_point_start[t+1]]`` are the
      sorted-position point ids under those leaves, in tile order;
    * ``target_point_start[t]:target_point_end[t]`` is the target leaf's
      own point slice in *its* tree's sorted order.
    """

    kind: str                       # "born" | "epol"
    eps: float
    mac_variant: str                # born MAC variant ("" for epol)
    power: int                      # 6/4 for born, 0 for epol
    multiplier: float               # the MAC multiplier actually used
    target_leaves: np.ndarray       # (L,)   int64 node ids
    target_point_start: np.ndarray  # (L,)   int64
    target_point_end: np.ndarray    # (L,)   int64
    far_start: np.ndarray           # (L+1,) int64
    far_nodes: np.ndarray           # (sum F,) int64
    far_dist: np.ndarray            # (sum F,) float64
    near_leaf_start: np.ndarray     # (L+1,) int64
    near_leaves: np.ndarray         # (sum N,) int64
    near_point_start: np.ndarray    # (L+1,) int64
    near_points: np.ndarray         # (sum A,) int64
    nodes_visited: np.ndarray       # (L,)   int64
    build_seconds: float = 0.0
    #: Octree variant fingerprint the plan's node/point ids refer to
    #: (``Octree.variant``); mixing variants is a hard error downstream.
    tree_variant: str = "morton"
    #: Row-order contract; always :data:`ROW_ORDER_LEAF_KEY` today.
    row_order: str = ROW_ORDER_LEAF_KEY
    _gather_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)

    # -- derived row quantities ----------------------------------------
    @property
    def nrows(self) -> int:
        return len(self.target_leaves)

    @property
    def target_sizes(self) -> np.ndarray:
        """(L,) points under each target leaf."""
        return self.target_point_end - self.target_point_start

    @property
    def far_counts(self) -> np.ndarray:
        """(L,) far nodes per row."""
        return np.diff(self.far_start)

    @property
    def near_leaf_counts(self) -> np.ndarray:
        """(L,) near leaves per row."""
        return np.diff(self.near_leaf_start)

    @property
    def near_point_counts(self) -> np.ndarray:
        """(L,) exact-tile source points per row."""
        return np.diff(self.near_point_start)

    @property
    def exact_pairs_per_row(self) -> np.ndarray:
        """(L,) exact point-point pairs per row (tile area)."""
        return self.near_point_counts * self.target_sizes

    @property
    def nbytes(self) -> int:
        """Measured bytes of the flat plan arrays (what a cache budget or
        a shared-memory publication actually pays for this plan)."""
        return int(sum(getattr(self, name).nbytes
                       for name in PLAN_ARRAY_FIELDS))

    def row_pair_weights(self, *, nbins: int = 0) -> np.ndarray:
        """Exact per-row interaction counts for work division.

        ``exact_pairs + far_nodes * (1 + nbins**2)`` -- with ``nbins`` the
        energy binning width, the far term counts the histogram-pair
        evaluations each accepted node costs; at the default ``nbins=0``
        each far node counts once.  These are *measured* counts from the
        plan, not cost-model estimates.
        """
        return (self.exact_pairs_per_row
                + self.far_counts * (1 + nbins * nbins))

    def row_counters(self, lo: int, hi: int, *,
                     nbins: int = 0) -> list[WorkCounters]:
        """Per-row :class:`WorkCounters` for rows ``[lo, hi)``.

        Integer-exact synthesis of what the legacy per-leaf loop counted:
        the executor does not need to run to know its operation counts.
        """
        exact = self.exact_pairs_per_row[lo:hi]
        far = self.far_counts[lo:hi]
        visited = self.nodes_visited[lo:hi]
        hist = far * (nbins * nbins)
        return [WorkCounters(exact_pairs=int(e), far_evals=int(f),
                             hist_pairs=int(h), nodes_visited=int(v))
                for e, f, h, v in zip(exact, far, hist, visited)]

    def counters(self, lo: int | None = None, hi: int | None = None, *,
                 nbins: int = 0) -> WorkCounters:
        """Aggregate :class:`WorkCounters` over rows ``[lo, hi)``."""
        lo = 0 if lo is None else lo
        hi = self.nrows if hi is None else hi
        far = int(self.far_counts[lo:hi].sum())
        return WorkCounters(
            exact_pairs=int(self.exact_pairs_per_row[lo:hi].sum()),
            far_evals=far,
            hist_pairs=far * nbins * nbins,
            nodes_visited=int(self.nodes_visited[lo:hi].sum()))

    def memo(self, name: str, sources: tuple, build, *,
             cache: bool = True):
        """Plan-lifetime memo of a value derived from ``sources``.

        A plan outlives many executions (epsilon sweeps, repeated energy
        evaluations), so executors stash plan-shaped derived arrays here
        and pay the derivation once per ``(plan, sources)``.  Array
        sources are keyed by *identity* -- a different array under the
        same name (a new Born profile, say) misses, recomputes and
        replaces the entry, so a hit can never be stale as long as
        sources follow the repo-wide write-once convention for sorted
        tree arrays.  Non-array keys (row ranges) compare by equality.
        ``cache=False`` computes without storing (oversized operands).
        """
        hit = self._gather_cache.get(name)
        if hit is not None and len(hit[0]) == len(sources) and all(
                (a is b) if isinstance(a, np.ndarray) else (a == b)
                for a, b in zip(hit[0], sources)):
            return hit[1]
        out = build()
        if cache:
            self._gather_cache[name] = (tuple(sources), out)
        return out

    def gathered(self, name: str, source: np.ndarray) -> np.ndarray:
        """Memoised ``source[near_points]`` gather (contiguous CSR-order
        operand copies the executors stream through; see :meth:`memo`)."""
        return self.memo(name, (source,),
                         lambda: source[self.near_points])

    # -- (de)serialisation for shared-memory publication ---------------
    def meta(self) -> dict:
        """Picklable scalar metadata (pairs with :meth:`as_arrays`)."""
        return {name: getattr(self, name) for name in PLAN_META_FIELDS}

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The flat arrays, keyed by field name."""
        return {name: getattr(self, name) for name in PLAN_ARRAY_FIELDS}

    @classmethod
    def from_arrays(cls, meta: dict,
                    arrays: dict[str, np.ndarray]) -> "InteractionPlan":
        """Rebuild a plan from :meth:`meta` + :meth:`as_arrays` payloads
        (zero-copy when the arrays are shared-memory views)."""
        return cls(**meta, **{name: arrays[name]
                              for name in PLAN_ARRAY_FIELDS})

    def validate(self) -> None:
        """Structural sanity checks (cheap; used by tests and checked
        runs)."""
        L = self.nrows
        for name in ("far_start", "near_leaf_start", "near_point_start"):
            start = getattr(self, name)
            if start.shape != (L + 1,):
                raise ValueError(f"{name} must have {L + 1} entries")
            if np.any(np.diff(start) < 0) or start[0] != 0:
                raise ValueError(f"{name} is not a monotone CSR index")
        if self.far_nodes.shape != self.far_dist.shape:
            raise ValueError("far_nodes/far_dist length mismatch")
        if int(self.far_start[-1]) != len(self.far_nodes):
            raise ValueError("far_start does not cover far_nodes")
        if int(self.near_point_start[-1]) != len(self.near_points):
            raise ValueError("near_point_start does not cover near_points")
        if np.any(self.target_sizes <= 0):
            raise ValueError("every target leaf must hold points")
        if self.row_order != ROW_ORDER_LEAF_KEY:
            raise ValueError(
                f"unknown row-order contract {self.row_order!r}; executors "
                f"implement only {ROW_ORDER_LEAF_KEY!r}")


@dataclass
class PlanSet:
    """The pair of plans one pipeline execution needs."""

    born: InteractionPlan
    epol: InteractionPlan

    def __post_init__(self) -> None:
        if self.born.kind != "born" or self.epol.kind != "epol":
            raise ValueError("PlanSet wants (born, epol) plans in order")
        if self.born.tree_variant != self.epol.tree_variant:
            raise ValueError(
                f"mixed tree variants in one PlanSet: "
                f"{self.born.tree_variant!r} vs {self.epol.tree_variant!r}")


def _field_names() -> set[str]:
    return {f.name for f in fields(InteractionPlan)}


assert set(PLAN_ARRAY_FIELDS) <= _field_names()
assert set(PLAN_META_FIELDS) <= _field_names()
