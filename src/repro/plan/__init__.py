"""Plan/execute split: cached interaction plans and batched executors.

The paper's two kernels (Figs. 2 and 3) share one traversal pattern --
classify a target leaf against a tree, then evaluate far pseudo-point and
near exact tiles.  This package separates *plan construction* (one
vectorised traversal producing flat CSR interaction lists, see
:mod:`.builder`) from *plan execution* (batched NumPy kernels over plan
row ranges, see :mod:`.executor`) -- the architecture of distributed
tree-code solvers such as DASHMM.  Plans are reusable across backends,
cacheable across epsilon sweeps (:mod:`.cache`) and carry exact per-row
work counts for load balancing (:mod:`.stats`).
"""

from .builder import build_born_plan, build_epol_plan
from .cache import PlanCache
from .executor import epol_row_terms, execute_born_plan, execute_epol_plan
from .schema import PLAN_ARRAY_FIELDS, InteractionPlan, PlanSet
from .stats import plan_stats, rank_imbalance, tile_histogram

__all__ = [
    "PLAN_ARRAY_FIELDS",
    "InteractionPlan",
    "PlanCache",
    "PlanSet",
    "build_born_plan",
    "build_epol_plan",
    "epol_row_terms",
    "execute_born_plan",
    "execute_epol_plan",
    "plan_stats",
    "rank_imbalance",
    "tile_histogram",
]
