"""Plan statistics: tile histograms, pair totals, rank imbalance.

Everything here is *measured from the plan* -- exact interaction counts,
not cost-model estimates -- which is what makes plan-driven work division
(:func:`repro.octree.partition.segment_by_weight` over
:meth:`~repro.plan.schema.InteractionPlan.row_pair_weights`) strictly
better informed than the point-count proxy it replaces.
"""

from __future__ import annotations

import numpy as np

from ..octree.partition import imbalance, segment_by_weight
from .schema import InteractionPlan


def tile_histogram(plan: InteractionPlan) -> dict[str, list[int]]:
    """Histogram of near-tile source sizes over doubling bucket edges.

    Buckets are ``[0, 1), [1, 2), [2, 4), ... [2^k, max]`` -- the shape
    distribution the batched executor's per-shape GEMM bucketing sees.
    """
    counts = plan.near_point_counts
    if counts.size == 0 or int(counts.max()) == 0:
        return {"edges": [0, 1], "counts": [int(counts.size)]}
    top = int(counts.max())
    edges = [0, 1]
    while edges[-1] < top + 1:
        edges.append(edges[-1] * 2)
    hist, _ = np.histogram(counts, bins=np.asarray(edges))
    return {"edges": edges, "counts": [int(c) for c in hist]}


def rank_imbalance(plan: InteractionPlan, nparts: int, *,
                   nbins: int = 0) -> float:
    """Imbalance factor (max/mean pair count) of the plan-driven
    partition of this plan's rows into ``nparts`` contiguous segments."""
    weights = plan.row_pair_weights(nbins=nbins)
    bounds = segment_by_weight(weights, nparts)
    loads = np.array([float(weights[s:e].sum()) for s, e in bounds])
    return imbalance(loads)


def plan_stats(plan: InteractionPlan, *, nparts: int = 1,
               nbins: int = 0) -> dict:
    """JSON-ready summary of one plan (bench output, trace metadata)."""
    return {
        "kind": plan.kind,
        "eps": plan.eps,
        "rows": plan.nrows,
        "far_pairs": int(plan.far_counts.sum()),
        "near_leaf_pairs": int(plan.near_leaf_counts.sum()),
        "exact_pairs": int(plan.exact_pairs_per_row.sum()),
        "tile_histogram": tile_histogram(plan),
        "build_seconds": plan.build_seconds,
        "imbalance": rank_imbalance(plan, nparts, nbins=nbins),
    }
