"""Exposed-surface-area accounting and analytic references.

Used to validate the sampler: for small hand-constructible systems (single
sphere, two overlapping spheres) the exposed area has a closed form, and
the sampled weight sum must converge to it.
"""

from __future__ import annotations

import math

import numpy as np

from ..molecule.molecule import Molecule
from .sas import SurfaceQuadrature, build_surface


def sphere_area(radius: float) -> float:
    """Area of a sphere of the given radius."""
    return 4.0 * math.pi * radius * radius


def two_sphere_exposed_area(r1: float, r2: float, d: float) -> float:
    """Total exposed area of two spheres of radii ``r1``, ``r2`` whose
    centres are ``d`` apart.

    Each sphere loses a spherical cap where it dips inside the other; the
    cap heights follow from the radical plane of the two spheres.  Valid
    for ``|r1 - r2| < d`` (partially overlapping) and trivially for
    ``d >= r1 + r2`` (disjoint).
    """
    if d <= 0:
        raise ValueError("d must be positive")
    if d >= r1 + r2:
        return sphere_area(r1) + sphere_area(r2)
    if d <= abs(r1 - r2):
        # One sphere swallows the other: only the bigger one is exposed.
        return sphere_area(max(r1, r2))
    # Distance from centre 1 to the intersection plane.
    x1 = (d * d + r1 * r1 - r2 * r2) / (2.0 * d)
    cap1 = 2.0 * math.pi * r1 * (r1 - x1)          # area of buried cap on 1
    x2 = d - x1
    cap2 = 2.0 * math.pi * r2 * (r2 - x2)
    return sphere_area(r1) + sphere_area(r2) - cap1 - cap2


def measured_exposed_area(molecule: Molecule, *, points_per_atom: int = 128,
                          probe_radius: float = 0.0) -> float:
    """Exposed area as measured by the sampler (weight sum)."""
    surf = build_surface(molecule, points_per_atom=points_per_atom,
                         probe_radius=probe_radius)
    return surf.total_area


def area_per_atom(surface: SurfaceQuadrature, natoms: int) -> np.ndarray:
    """Exposed area attributed to each atom, shape ``(natoms,)``."""
    out = np.zeros(natoms)
    np.add.at(out, surface.owner[surface.owner >= 0],
              surface.weights[surface.owner >= 0])
    return out
