"""Solvent-accessible / van-der-Waals surface sampling.

This module produces the quadrature input the paper's algorithms consume: a
set of points :math:`r_k` on the molecular surface with outward unit
normals :math:`n_k` and area weights :math:`w_k` such that
:math:`\\sum_k w_k f(r_k)` approximates the surface integral of ``f``.

The construction is the classical one: tessellate every atom's sphere with
near-uniform points, discard points buried inside any neighbouring atom
(found with a uniform cell grid, so the whole build is O(N) at protein
density), and give each surviving point an equal share of its sphere's
area.  For an isolated atom this recovers the analytic Born radius exactly
in the quadrature limit -- the correctness anchor for everything above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_POINTS_PER_ATOM
from ..geometry import CellGrid
from ..molecule.molecule import Molecule
from .quadrature import mesh_quadrature
from .sphere import fibonacci_sphere, icosphere


@dataclass
class SurfaceQuadrature:
    """A surface quadrature: points, outward unit normals, area weights.

    Attributes
    ----------
    points:
        ``(Q, 3)`` quadrature point coordinates (Angstrom).
    normals:
        ``(Q, 3)`` outward unit normals at the points.
    weights:
        ``(Q,)`` area weights (Angstrom^2); their sum approximates the
        exposed surface area.
    owner:
        ``(Q,)`` index of the atom whose sphere each point came from
        (informational; -1 when unknown).
    """

    points: np.ndarray
    normals: np.ndarray
    weights: np.ndarray
    owner: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        self.normals = np.ascontiguousarray(self.normals, dtype=np.float64)
        self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        q = self.points.shape[0]
        if self.points.shape != (q, 3) or self.normals.shape != (q, 3):
            raise ValueError("points and normals must be (Q, 3)")
        if self.weights.shape != (q,):
            raise ValueError("weights must be (Q,)")
        if self.owner is None:
            self.owner = np.full(q, -1, dtype=np.int64)
        else:
            self.owner = np.asarray(self.owner, dtype=np.int64)
            if self.owner.shape != (q,):
                raise ValueError("owner must be (Q,)")

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def npoints(self) -> int:
        return self.points.shape[0]

    @property
    def total_area(self) -> float:
        """Exposed surface area represented by this quadrature."""
        return float(self.weights.sum())

    def nbytes(self) -> int:
        """Bytes of array payload."""
        return int(self.points.nbytes + self.normals.nbytes
                   + self.weights.nbytes + self.owner.nbytes)

    def subset(self, indices: np.ndarray) -> "SurfaceQuadrature":
        """Quadrature restricted to the given point indices."""
        idx = np.asarray(indices)
        return SurfaceQuadrature(self.points[idx], self.normals[idx],
                                 self.weights[idx], self.owner[idx])

    def transformed(self, rotation: np.ndarray | None = None,
                    translation: np.ndarray | None = None
                    ) -> "SurfaceQuadrature":
        """Rigidly transform the quadrature (weights are invariant).

        This backs the paper's docking-reuse argument (Section IV.C): the
        surface of a rigid ligand moves with it, so quadratures -- like
        octrees -- can be transformed instead of rebuilt.
        """
        pts = self.points
        nrm = self.normals
        if rotation is not None:
            rot = np.asarray(rotation, dtype=np.float64)
            pts = pts @ rot.T
            nrm = nrm @ rot.T
        if translation is not None:
            pts = pts + np.asarray(translation, dtype=np.float64)
        return SurfaceQuadrature(pts, nrm, self.weights.copy(), self.owner.copy())


def _unit_sphere_points(points_per_atom: int, method: str
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unit-sphere sample shared by all atoms: (points, normals, weights
    summing to 4*pi)."""
    if method == "fibonacci":
        pts = fibonacci_sphere(points_per_atom)
        weights = np.full(points_per_atom, 4.0 * np.pi / points_per_atom)
        return pts, pts.copy(), weights
    if method == "icosphere":
        # Smallest subdivision level whose Dunavant point count reaches the
        # requested density.
        level = 0
        # 20 faces x 4^level subdivisions x 3 quadrature points: pure-int
        # mesh bookkeeping, no array dtype in play (REP009 exemption).
        while 20 * 4 ** level * 3 < points_per_atom and level < 6:  # repro-lint: disable=REP009
            level += 1
        mesh = icosphere(level)
        # Projection rescales the weights to the exact sphere area 4*pi.
        return mesh_quadrature(mesh, degree=2, project_to_sphere=True)
    raise ValueError(f"unknown tessellation method {method!r}")


def build_surface(molecule: Molecule, *,
                  points_per_atom: int = DEFAULT_POINTS_PER_ATOM,
                  probe_radius: float = 0.0,
                  method: str = "fibonacci") -> SurfaceQuadrature:
    """Sample the molecular surface of ``molecule``.

    Parameters
    ----------
    molecule:
        Input molecule.
    points_per_atom:
        Sphere sample points per atom before burial filtering.
    probe_radius:
        Probe inflation added to every atomic radius (0 gives the van der
        Waals surface that Eq. 4's Born integral runs over; 1.4 gives the
        classical solvent-accessible surface).
    method:
        ``"fibonacci"`` (equal-weight lattice) or ``"icosphere"``
        (triangulated + Dunavant quadrature, the paper's construction).

    Returns
    -------
    SurfaceQuadrature
        Points with outward normals and area weights.  Points buried inside
        any other atom's (inflated) sphere are removed; each surviving
        point's weight is its sphere's area divided by the pre-filter point
        count, so the weight sum estimates the exposed area.
    """
    if points_per_atom < 4:
        raise ValueError("points_per_atom must be at least 4")
    n = len(molecule)
    if n == 0:
        raise ValueError("cannot build a surface for an empty molecule")
    unit_pts, unit_normals, unit_weights = _unit_sphere_points(points_per_atom, method)
    k = unit_pts.shape[0]
    radii = molecule.radii + probe_radius
    rmax = float(radii.max())
    grid = CellGrid(molecule.positions, cell_size=max(2.0 * rmax, 1e-6))

    kept_points: list[np.ndarray] = []
    kept_normals: list[np.ndarray] = []
    kept_weights: list[np.ndarray] = []
    kept_owner: list[np.ndarray] = []
    for i in range(n):
        center = molecule.positions[i]
        ri = radii[i]
        pts = center + ri * unit_pts                      # (k, 3)
        cand = grid.candidates(center, ri + rmax)
        cand = cand[cand != i]
        if len(cand):
            cpos = molecule.positions[cand]               # (c, 3)
            crad = radii[cand]
            # Keep only candidates whose sphere can actually reach ours.
            d = np.linalg.norm(cpos - center, axis=1)
            near = d < ri + crad
            cpos, crad = cpos[near], crad[near]
        else:
            cpos = np.empty((0, 3))
            crad = np.empty(0)
        if len(cpos):
            # buried[p] = any_j |pts[p] - cpos[j]| < crad[j]
            d2 = np.sum((pts[:, None, :] - cpos[None, :, :]) ** 2, axis=2)
            buried = np.any(d2 < (crad * crad)[None, :], axis=1)
            keep = ~buried
        else:
            keep = np.ones(k, dtype=bool)
        if not np.any(keep):
            continue
        kept_points.append(pts[keep])
        kept_normals.append(unit_normals[keep])
        kept_weights.append(unit_weights[keep] * (ri * ri))
        kept_owner.append(np.full(int(keep.sum()), i, dtype=np.int64))

    if not kept_points:
        raise ValueError("surface sampling removed every point; "
                         "molecule may be degenerate")
    return SurfaceQuadrature(np.vstack(kept_points), np.vstack(kept_normals),
                             np.concatenate(kept_weights),
                             np.concatenate(kept_owner))


def sphere_surface(radius: float, *, npoints: int = 256,
                   center: np.ndarray | None = None) -> SurfaceQuadrature:
    """Quadrature over a single analytic sphere -- the unit test anchor."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    unit = fibonacci_sphere(npoints)
    c = np.zeros(3) if center is None else np.asarray(center, dtype=np.float64)
    weights = np.full(npoints, 4.0 * np.pi * radius * radius / npoints)
    return SurfaceQuadrature(c + radius * unit, unit.copy(), weights,
                             np.zeros(npoints, dtype=np.int64))
