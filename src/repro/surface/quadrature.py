"""Symmetric Gaussian quadrature rules on triangles (Dunavant 1985).

The paper cites Dunavant's high-degree symmetric rules for placing a
constant number of quadrature points inside every surface triangle.  We
provide the standard rules up to degree 5 in barycentric form; weights sum
to 1 so that multiplying by the triangle's area gives the integral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sphere import TriangleMesh


@dataclass(frozen=True)
class TriangleRule:
    """A quadrature rule on the reference triangle.

    Attributes
    ----------
    degree:
        Highest polynomial degree integrated exactly.
    barycentric:
        ``(n, 3)`` barycentric coordinates of the quadrature points.
    weights:
        ``(n,)`` weights summing to 1.
    """

    degree: int
    barycentric: np.ndarray
    weights: np.ndarray

    @property
    def npoints(self) -> int:
        return self.weights.shape[0]


def _symmetric_orbit(a: float) -> np.ndarray:
    """The 3-point orbit of barycentric coordinate (a, b, b), b=(1-a)/2."""
    b = (1.0 - a) / 2.0
    return np.array([[a, b, b], [b, a, b], [b, b, a]])


_RULES: dict[int, TriangleRule] = {}


def _register(degree: int, bary: np.ndarray, weights: np.ndarray) -> None:
    bary = np.asarray(bary, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _RULES[degree] = TriangleRule(degree, bary, weights)


# Degree 1: centroid rule.
_register(1, np.array([[1 / 3, 1 / 3, 1 / 3]]), np.array([1.0]))

# Degree 2: three midpoint-orbit points (Dunavant rule 2).
_register(2, _symmetric_orbit(2 / 3), np.full(3, 1 / 3))

# Degree 3: centroid + orbit (Dunavant rule 3, has a negative weight).
_register(3, np.vstack([[[1 / 3, 1 / 3, 1 / 3]], _symmetric_orbit(0.6)]),
          np.array([-27 / 48, 25 / 48, 25 / 48, 25 / 48]))

# Degree 4: two 3-point orbits (Dunavant rule 4).
_A4_1, _W4_1 = 0.108103018168070, 0.223381589678011
_A4_2, _W4_2 = 0.816847572980459, 0.109951743655322
_register(4, np.vstack([_symmetric_orbit(_A4_1), _symmetric_orbit(_A4_2)]),
          np.array([_W4_1] * 3 + [_W4_2] * 3))

# Degree 5: centroid + two orbits (Dunavant rule 5, 7 points).
_A5_1, _W5_1 = 0.059715871789770, 0.132394152788506
_A5_2, _W5_2 = 0.797426985353087, 0.125939180544827
_register(5, np.vstack([[[1 / 3, 1 / 3, 1 / 3]],
                        _symmetric_orbit(_A5_1), _symmetric_orbit(_A5_2)]),
          np.array([0.225] + [_W5_1] * 3 + [_W5_2] * 3))


def triangle_rule(degree: int) -> TriangleRule:
    """Return the lowest-point-count registered rule of at least ``degree``."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    for d in sorted(_RULES):
        if d >= degree:
            return _RULES[d]
    raise ValueError(f"no registered rule of degree >= {degree} "
                     f"(max is {max(_RULES)})")


def available_degrees() -> list[int]:
    """Degrees with a registered rule."""
    return sorted(_RULES)


def mesh_quadrature(mesh: TriangleMesh, degree: int = 2,
                    *, project_to_sphere: bool = False
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quadrature points, outward normals and weights for a triangle mesh.

    Returns ``(points, normals, weights)`` with shapes ``(T*n, 3)``,
    ``(T*n, 3)`` and ``(T*n,)`` where ``n`` is the rule's point count.
    ``sum(weights)`` equals the mesh area, so these triples plug directly
    into the surface integrals of Eqs. 3 and 4.

    With ``project_to_sphere`` the points and normals are radially projected
    onto the unit sphere and the weights rescaled to the exact sphere area
    ``4*pi`` -- the right choice when the mesh is an icosphere approximating
    a sphere, removing the facet-chord bias.
    """
    rule = triangle_rule(degree)
    verts = mesh.vertices[mesh.triangles]          # (T, 3 verts, 3 xyz)
    # points[t, q] = sum_k bary[q, k] * verts[t, k]
    points = np.einsum("qk,tkx->tqx", rule.barycentric, verts)
    areas = mesh.triangle_areas()                   # (T,)
    normals = mesh.triangle_normals()               # (T, 3)
    weights = areas[:, None] * rule.weights[None, :]   # (T, n)
    T, n = weights.shape
    points = points.reshape(T * n, 3)
    normals = np.repeat(normals, n, axis=0)
    weights = weights.reshape(T * n)
    if project_to_sphere:
        norms = np.linalg.norm(points, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        points = points / norms
        normals = points.copy()
        weights = weights * (4.0 * np.pi / weights.sum())
    return points, normals, weights
