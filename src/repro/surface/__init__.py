"""Molecular-surface generation and quadrature."""

from .area import (area_per_atom, measured_exposed_area, sphere_area,
                   two_sphere_exposed_area)
from .quadrature import TriangleRule, available_degrees, mesh_quadrature, triangle_rule
from .sas import SurfaceQuadrature, build_surface, sphere_surface
from .sphere import TriangleMesh, fibonacci_sphere, icosahedron, icosphere

__all__ = [
    "SurfaceQuadrature",
    "TriangleMesh",
    "TriangleRule",
    "area_per_atom",
    "available_degrees",
    "build_surface",
    "fibonacci_sphere",
    "icosahedron",
    "icosphere",
    "measured_exposed_area",
    "mesh_quadrature",
    "sphere_area",
    "sphere_surface",
    "triangle_rule",
    "two_sphere_exposed_area",
]
