"""Unit-sphere tessellations: icosphere triangulation and Fibonacci points.

Two samplers are provided because the package supports two quadrature
pathways (paper Section II):

* the *triangulated* pathway -- an icosphere mesh whose triangles carry
  Dunavant Gaussian quadrature points, mirroring the paper's "triangulation
  of Gaussian quadrature function of the molecular surface";
* the *point-cloud* pathway -- Fibonacci-lattice points with equal-area
  weights, cheaper and sufficient for large sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TriangleMesh:
    """A triangulated closed surface.

    Attributes
    ----------
    vertices:
        ``(V, 3)`` vertex coordinates.
    triangles:
        ``(T, 3)`` integer vertex indices, outward-oriented (counter-
        clockwise seen from outside).
    """

    vertices: np.ndarray
    triangles: np.ndarray

    @property
    def ntriangles(self) -> int:
        return self.triangles.shape[0]

    def triangle_areas(self) -> np.ndarray:
        """Area of every triangle, shape ``(T,)``."""
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def triangle_normals(self) -> np.ndarray:
        """Outward unit normal of every triangle, shape ``(T, 3)``."""
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        n = np.cross(b - a, c - a)
        norms = np.linalg.norm(n, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return n / norms

    def total_area(self) -> float:
        return float(self.triangle_areas().sum())


def icosahedron() -> TriangleMesh:
    """The regular icosahedron inscribed in the unit sphere."""
    phi = (1.0 + math.sqrt(5.0)) / 2.0
    verts = np.array([
        (-1, phi, 0), (1, phi, 0), (-1, -phi, 0), (1, -phi, 0),
        (0, -1, phi), (0, 1, phi), (0, -1, -phi), (0, 1, -phi),
        (phi, 0, -1), (phi, 0, 1), (-phi, 0, -1), (-phi, 0, 1),
    ], dtype=np.float64)
    verts /= np.linalg.norm(verts, axis=1, keepdims=True)
    tris = np.array([
        (0, 11, 5), (0, 5, 1), (0, 1, 7), (0, 7, 10), (0, 10, 11),
        (1, 5, 9), (5, 11, 4), (11, 10, 2), (10, 7, 6), (7, 1, 8),
        (3, 9, 4), (3, 4, 2), (3, 2, 6), (3, 6, 8), (3, 8, 9),
        (4, 9, 5), (2, 4, 11), (6, 2, 10), (8, 6, 7), (9, 8, 1),
    ], dtype=np.int64)
    return TriangleMesh(verts, tris)


def icosphere(subdivisions: int) -> TriangleMesh:
    """Icosahedron subdivided ``subdivisions`` times, vertices re-projected
    to the unit sphere.  Triangle count is ``20 * 4**subdivisions``."""
    if subdivisions < 0:
        raise ValueError("subdivisions must be >= 0")
    mesh = icosahedron()
    for _ in range(subdivisions):
        verts = list(map(tuple, mesh.vertices))
        index: dict[tuple[float, float, float], int] = {v: i for i, v in enumerate(verts)}
        cache: dict[tuple[int, int], int] = {}

        def midpoint(i: int, j: int) -> int:
            key = (min(i, j), max(i, j))
            if key in cache:
                return cache[key]
            m = (np.asarray(verts[i]) + np.asarray(verts[j])) / 2.0
            m = tuple(m / np.linalg.norm(m))
            if m in index:
                k = index[m]
            else:
                k = len(verts)
                verts.append(m)
                index[m] = k
            cache[key] = k
            return k

        new_tris = []
        for t0, t1, t2 in mesh.triangles:
            a = midpoint(int(t0), int(t1))
            b = midpoint(int(t1), int(t2))
            c = midpoint(int(t2), int(t0))
            new_tris.extend([(t0, a, c), (t1, b, a), (t2, c, b), (a, b, c)])
        mesh = TriangleMesh(np.asarray(verts, dtype=np.float64),
                            np.asarray(new_tris, dtype=np.int64))
    return mesh


def fibonacci_sphere(n: int) -> np.ndarray:
    """``n`` near-uniform points on the unit sphere (Fibonacci lattice).

    Each point represents an equal share ``4*pi/n`` of solid angle, which is
    what makes the equal-weight quadrature of the point-cloud pathway valid.
    """
    if n < 1:
        raise ValueError("n must be positive")
    i = np.arange(n, dtype=np.float64)
    golden = math.pi * (3.0 - math.sqrt(5.0))
    z = 1.0 - 2.0 * (i + 0.5) / n
    rho = np.sqrt(np.clip(1.0 - z * z, 0.0, 1.0))
    theta = golden * i
    return np.column_stack([rho * np.cos(theta), rho * np.sin(theta), z])
