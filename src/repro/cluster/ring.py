"""Consistent-hash ring: content keys -> owning shard nodes.

The cluster maps each registered molecule (its
:func:`repro.serve.registry.content_key`) onto one owning shard with the
classic virtual-node consistent-hash construction: every node is hashed
at ``vnodes`` points on a 64-bit ring, a key is owned by the first node
point at or clockwise-after the key's own hash, and replicas continue
clockwise to the next *distinct* nodes.  Two properties carry the
design:

* **balance** -- with >= 64 virtual nodes per node the largest
  per-node share of a uniform key population concentrates near 1/N
  (the Hypothesis suite bounds the spread);
* **minimal remapping** -- adding or removing one node moves only the
  keys whose owning arc changed, ~1/N of the population, so a cluster
  resize does not restampede every warm registry.

Everything is keyed by SHA-256 (:func:`ring_hash`), never Python's
``hash()``: placement must be identical across processes and runs
regardless of ``PYTHONHASHSEED``, because shard-local registries,
shared-memory publications and the routing tier all have to agree on
who owns what without talking to each other.
"""

from __future__ import annotations

import bisect
import hashlib


def ring_hash(label: str) -> int:
    """Deterministic 64-bit ring position of ``label`` (sha256 prefix;
    process- and ``PYTHONHASHSEED``-independent)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Virtual-node consistent-hash ring over a set of node ids."""

    def __init__(self, node_ids: list[str] | tuple[str, ...] = (), *,
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        #: Sorted (point, node_id) pairs -- the ring itself.
        self._points: list[tuple[int, str]] = []
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def nodes(self) -> list[str]:
        """Member node ids, sorted (deterministic iteration order)."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def _node_points(self, node_id: str) -> list[tuple[int, str]]:
        return [(ring_hash(f"{node_id}#{i}"), node_id)
                for i in range(self.vnodes)]

    def add_node(self, node_id: str) -> None:
        """Add a node (its ``vnodes`` points) to the ring."""
        if not node_id:
            raise ValueError("node_id must be non-empty")
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        self._nodes.add(node_id)
        for point in self._node_points(node_id):
            bisect.insort(self._points, point)

    def remove_node(self, node_id: str) -> None:
        """Remove a node; its arcs fall to the clockwise successors."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} is not on the ring")
        self._nodes.remove(node_id)
        self._points = [p for p in self._points if p[1] != node_id]

    def owner(self, key: str) -> str:
        """The node owning ``key``: first node point clockwise from the
        key's hash (wrapping)."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: str, n: int) -> list[str]:
        """The first ``min(n, len(self))`` *distinct* nodes clockwise
        from ``key``'s hash -- owner first, then replica targets.

        Deterministic in (key, membership, vnodes) alone, so every
        router instance picks the same replica set without
        coordination.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if not self._points:
            raise KeyError("ring has no nodes")
        want = min(int(n), len(self._nodes))
        hashes = [point for point, _ in self._points]
        start = bisect.bisect_right(hashes, ring_hash(key))
        chosen: list[str] = []
        for i in range(len(self._points)):
            node_id = self._points[(start + i) % len(self._points)][1]
            if node_id not in chosen:
                chosen.append(node_id)
                if len(chosen) == want:
                    break
        return chosen

    def ownership(self, keys: list[str]) -> dict[str, str]:
        """Owner per key (bulk helper for remapping measurements)."""
        return {key: self.owner(key) for key in keys}
