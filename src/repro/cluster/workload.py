"""Zipf-skewed request traces: the cluster benchmark's workload model.

Real serving traffic is not uniform -- a few decoy scaffolds dominate a
docking screen the way a few documents dominate a cache.  The cluster
replay therefore draws molecule indices from a zipf distribution
(:func:`zipf_trace`): rank ``i`` is requested with probability
proportional to ``1 / (i + 1)**s``.  Skew is what makes the fabric's
design observable -- hot-molecule replication only pays when some keys
are hot, and donation only fires when skew piles a queue onto one
shard while its neighbours idle.

Draws come from a seeded ``numpy`` Generator: the same
``(nmolecules, nrequests, s, seed)`` produces the same trace in every
process, so per-node-count benchmark columns replay identical request
streams (repro-lint REP007's seeded-randomness contract).
"""

from __future__ import annotations

import numpy as np


def zipf_weights(nmolecules: int, s: float = 1.1) -> np.ndarray:
    """Normalised zipf probabilities over ``nmolecules`` ranks."""
    if nmolecules < 1:
        raise ValueError("nmolecules must be >= 1")
    if s < 0:
        raise ValueError("s must be >= 0")
    ranks = np.arange(1, nmolecules + 1, dtype=np.float64)
    w = ranks ** (-float(s))
    return w / w.sum()


def zipf_trace(nmolecules: int, nrequests: int, *, s: float = 1.1,
               seed: int = 0) -> np.ndarray:
    """A reproducible request trace: ``nrequests`` molecule indices in
    ``[0, nmolecules)`` drawn zipf(s)-skewed from ``seed``."""
    if nrequests < 0:
        raise ValueError("nrequests must be >= 0")
    rng = np.random.default_rng(seed)
    return rng.choice(nmolecules, size=int(nrequests),
                      p=zipf_weights(nmolecules, s))
