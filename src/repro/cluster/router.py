"""The routing tier: consistent-hash forwarding, replication, donation.

:class:`ClusterRouter` is the cluster's front door and a drop-in
``server`` for :class:`~repro.serve.client.ServeClient` (it exposes the
same ``register``/``submit`` surface as
:class:`~repro.serve.scheduler.EpolServer`).  Per request it decides
three things, none of which can change a served energy:

* **where** -- the consistent-hash ring names the owning shard; with
  hot-molecule replication the request goes to the least-loaded warm
  replica (deterministic tie-break by node id);
* **backpressure** -- a full shard queue surfaces as
  :class:`~repro.serve.scheduler.RejectedError` *to the submitting
  client*, wrapped with the shard's identity and re-raised from the
  shard's own rejection -- never swallowed (the router/donation
  protocol model checks exactly this, RV406);
* **donation** -- when the target shard is saturated
  (:func:`repro.serve.policy.decide_donation`) and other shards are
  idle, a large request is served by row-range fan-out: contiguous
  Hilbert key ranges of its plans (:mod:`repro.cluster.donate`) execute
  on idle shards' warm entries through the slice kernels of
  :mod:`repro.serve.fleet`, and the owner replays the serial reduction
  of :mod:`repro.serve.sliced` -- bit-identical to the cold path by the
  PR-6 positional-write/serial-replay argument, independent of which
  shard computed which range.

Every byte the tier moves -- forwards, results, replica pushes, donated
tasks/partials/broadcasts -- is charged through
:meth:`~repro.parallel.machine.NetworkSpec.p2p_cost` into the
:class:`~repro.cluster.metrics.TrafficLedger`; together with measured
per-shard busy seconds this yields the modeled cluster makespan and
throughput that ``BENCH_cluster.json`` reports (the paper's Section
IV.C cost model, applied to serving).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..analysis_static.flow.contracts import array_contract
from ..analysis_static.model.annotations import protocol_event
from ..core.born import push_integrals_to_atoms
from ..core.energy import EnergyContext, epol_from_pair_sum
from ..core.params import ApproximationParams
from ..molecule.molecule import Molecule
from ..parallel.machine import LONESTAR4_NETWORK, NetworkSpec
from ..serve.client import ServeFuture
from ..serve.fleet import EpsConfig, execute_born_rows, execute_epol_rows
from ..serve.policy import MODE_DONATED, decide_donation
from ..serve.registry import RegistryEntry, content_key
from ..serve.scheduler import RejectedError, ServeConfig
from ..serve.sliced import (born_flat_sizes, fold_pair_terms,
                            reduce_born_flat)
from .donate import donation_bounds, plan_row_keys
from .metrics import TrafficLedger, aggregate_metrics, cluster_now
from .ring import HashRing
from .shard import ShardNode


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the cluster fabric (one immutable bag)."""

    #: Simulated shard nodes.
    nodes: int = 2
    #: Per-shard fleet backend: ``"sim"`` (inline) or ``"real"``
    #: (warm OS processes).
    backend: str = "sim"
    #: Per-shard fleet width.
    workers: int = 1
    #: multiprocessing start method for ``backend="real"`` shards.
    start_method: str | None = None
    #: Virtual nodes per shard on the consistent-hash ring.
    vnodes: int = 64
    #: Warm copies per hot molecule (owner included); 1 = no replication.
    replication_factor: int = 1
    #: How many hit-ranked molecules to keep replicated (0 disables).
    hot_top_k: int = 0
    #: Re-rank the hot set every this many submissions.
    promote_every: int = 32
    #: A molecule must be hit at least this often to be promoted.
    min_hits_to_promote: int = 2
    #: Queue depth at/above which the target shard counts as saturated
    #: and large requests fan out to idle shards (None disables).
    donation_saturation_depth: int | None = None
    #: Minimum plan row weight for a request to be worth donating.
    donation_min_row_weight: float = 0.0
    #: Modeled wire size of one forwarded request descriptor.
    request_nbytes: int = 96
    #: Modeled wire size of one scalar energy result.
    result_nbytes: int = 64
    #: Per-shard serving configuration.
    serve: ServeConfig = field(default_factory=ServeConfig)
    #: The t_s/t_w cost model every routed byte is charged through.
    network: NetworkSpec = LONESTAR4_NETWORK

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.hot_top_k < 0:
            raise ValueError("hot_top_k must be >= 0")
        if self.promote_every < 1:
            raise ValueError("promote_every must be >= 1")
        if (self.donation_saturation_depth is not None
                and self.donation_saturation_depth < 0):
            raise ValueError(
                "donation_saturation_depth must be >= 0 (or None)")
        if self.request_nbytes < 0 or self.result_nbytes < 0:
            raise ValueError("modeled message sizes must be >= 0")


def _molecule_nbytes(molecule: Molecule) -> int:
    """Modeled wire size of shipping one molecule's defining arrays."""
    return int(molecule.positions.nbytes + molecule.radii.nbytes
               + molecule.charges.nbytes)


class ClusterRouter:
    """Consistent-hash routing over N :class:`ShardNode` serving stacks.

    Drop-in ``server`` for :class:`~repro.serve.client.ServeClient`::

        with ClusterRouter(ClusterConfig(nodes=4)) as router:
            key = router.register(molecule)
            energy = router.submit(key).result(timeout=60.0)
    """

    def __init__(self, config: ClusterConfig | None = None, *,
                 clock: Callable[[], float] | None = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        self._clock = clock if clock is not None else cluster_now
        cfg = self.config
        node_ids = [f"node{i:02d}" for i in range(cfg.nodes)]
        self.ring = HashRing(node_ids, vnodes=cfg.vnodes)
        self.traffic = TrafficLedger(cfg.network)
        self.shards: dict[str, ShardNode] = {
            node_id: ShardNode(node_id, backend=cfg.backend,
                               workers=cfg.workers, config=cfg.serve,
                               start_method=cfg.start_method,
                               clock=self._clock)
            for node_id in node_ids}
        for shard in self.shards.values():
            shard.set_evict_listener(self._on_shard_evict)
        self._lock = threading.Lock()
        #: key -> node ids holding a warm copy (owner first historically;
        #: order is registration order, membership is what matters).
        self._placement: dict[str, list[str]] = {}
        self._hits: dict[str, int] = {}
        self._mol_nbytes: dict[str, int] = {}
        self._assigned_weight: dict[str, float] = {}
        self._submissions = 0
        self._served: list[tuple[str, ServeFuture]] = []
        self.counters = {
            "routed": 0, "rejected": 0, "replica_hits": 0,
            "donations": 0, "donated_ranges": 0,
            "promotions": 0, "demotions": 0,
        }

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ClusterRouter":
        for node_id in sorted(self.shards):
            self.shards[node_id].start()
        return self

    def stop(self) -> None:
        for node_id in sorted(self.shards):
            self.shards[node_id].stop()

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- placement -------------------------------------------------------
    def register(self, molecule: Molecule,
                 params: ApproximationParams | None = None) -> str:
        """Register a molecule on its owning shard; returns the content
        key (idempotent, like :meth:`EpolServer.register`)."""
        params = params if params is not None else ApproximationParams()
        key = content_key(molecule, params)
        owner = self.ring.owner(key)
        nbytes = _molecule_nbytes(molecule)
        with self._lock:
            known = owner in self._placement.get(key, ())
            self._mol_nbytes[key] = nbytes
        if not known:
            # Shipping the molecule to its shard costs wire like any
            # other routed bytes (a warm cache is not a free cache).
            self.traffic.charge(owner, nbytes, kind="register")
        self.shards[owner].server.register(molecule, params)
        self._record_placement(key, owner)
        return key

    def _record_placement(self, key: str, node_id: str) -> None:
        with self._lock:
            nodes = self._placement.setdefault(key, [])
            if node_id not in nodes:
                nodes.append(node_id)

    def _on_shard_evict(self, node_id: str, key: str) -> None:
        """Registry-eviction listener: a shard dropped its copy, so the
        placement map must stop routing there."""
        with self._lock:
            nodes = self._placement.get(key)
            if nodes is not None and node_id in nodes:
                nodes.remove(node_id)
                if not nodes:
                    del self._placement[key]

    def locations(self, key: str) -> list[str]:
        """Shards currently holding a warm copy of ``key`` (sorted)."""
        with self._lock:
            return sorted(self._placement.get(key, ()))

    # -- request path ----------------------------------------------------
    @protocol_event("cluster", "submit")
    def submit(self, key: str, *, eps_born: float | None = None,
               eps_epol: float | None = None) -> ServeFuture:
        """Route one request to a shard holding ``key`` (or donate it).

        Raises :class:`KeyError` for unregistered molecules and
        re-raises shard :class:`RejectedError` backpressure to the
        caller (who owns the retry policy, exactly as against a
        single-node server).
        """
        cfg = self.config
        with self._lock:
            self._submissions += 1
            nsub = self._submissions
            self._hits[key] = self._hits.get(key, 0) + 1
        if nsub % cfg.promote_every == 0:
            self._rebalance_replicas()
        with self._lock:
            locations = list(self._placement.get(key, ()))
        if not locations:
            raise KeyError(
                f"molecule {key!r} is not registered with the cluster "
                "(evicted everywhere, or never submitted through "
                "register())")
        owner = self.ring.owner(key)
        target = self._choose_target(locations)
        entry = self.shards[target].registry.get(key)
        eps = EpsConfig.resolve(entry.params, eps_born, eps_epol)
        row_weight = entry.row_weight(eps.eps_born, eps.eps_epol)
        with self._lock:
            self._assigned_weight[target] = (
                self._assigned_weight.get(target, 0.0) + row_weight)
            if target != owner:
                self.counters["replica_hits"] += 1
        idle = sorted(node_id for node_id in self.shards
                      if node_id != target
                      and self.shards[node_id].queue_depth() == 0)
        if decide_donation(row_weight, self.shards[target].queue_depth(),
                           len(idle),
                           saturation_depth=cfg.donation_saturation_depth,
                           min_row_weight=cfg.donation_min_row_weight):
            return self._donate(key, target, idle, eps, entry)
        return self._forward(key, target, eps_born=eps_born,
                             eps_epol=eps_epol)

    def _choose_target(self, locations: list[str]) -> str:
        """Least-assigned-weight warm replica, node id as tie-break --
        deterministic given submission history."""
        with self._lock:
            return min(sorted(locations),
                       key=lambda n: (self._assigned_weight.get(n, 0.0), n))

    @protocol_event("cluster", "forward")
    def _forward(self, key: str, node_id: str, *,
                 eps_born: float | None,
                 eps_epol: float | None) -> ServeFuture:
        """Forward one request to ``node_id``'s server, charging the
        request/result wire both ways; shard backpressure re-raises to
        the caller wrapped with the shard's identity."""
        self.traffic.charge(node_id, self.config.request_nbytes,
                            kind="route")
        try:
            future = self.shards[node_id].server.submit(
                key, eps_born=eps_born, eps_epol=eps_epol)
        except RejectedError as err:
            self._shard_rejected(node_id, key)
            raise RejectedError(
                f"shard {node_id} rejected molecule {key!r}: {err}"
            ) from err
        self.traffic.charge(node_id, self.config.result_nbytes,
                            kind="result")
        with self._lock:
            self.counters["routed"] += 1
            self._served.append((node_id, future))
        return future

    @protocol_event("cluster", "reject")
    def _shard_rejected(self, node_id: str, key: str) -> None:
        """Count one shard rejection (the observable ``reject`` event of
        the router protocol model; the caller re-raises)."""
        with self._lock:
            self.counters["rejected"] += 1

    # -- replication -----------------------------------------------------
    def _rebalance_replicas(self) -> None:
        """Re-rank molecules by hit count; promote the top-k onto their
        deterministic replica sets, demote everything else's non-owner
        copies through the registry eviction hook."""
        cfg = self.config
        if cfg.hot_top_k < 1 or cfg.replication_factor < 2:
            return
        with self._lock:
            ranked = sorted(self._hits.items(),
                            key=lambda kv: (-kv[1], kv[0]))
            hot = [k for k, hits in ranked[:cfg.hot_top_k]
                   if hits >= cfg.min_hits_to_promote]
            snapshot = {k: list(v) for k, v in self._placement.items()}
        hot_set = set(hot)
        for key in hot:
            for node_id in self.ring.replicas(key, cfg.replication_factor):
                if node_id not in snapshot.get(key, ()):
                    self._ensure_registered(key, node_id, kind="replicate")
        for key, nodes in snapshot.items():
            if key in hot_set:
                continue
            owner = self.ring.owner(key)
            for node_id in nodes:
                if node_id == owner:
                    continue
                # evict() fires the shard's listener, which updates the
                # placement map; count only actual drops.
                if self.shards[node_id].registry.evict(key):
                    with self._lock:
                        self.counters["demotions"] += 1

    def _ensure_registered(self, key: str, node_id: str, *,
                           kind: str) -> RegistryEntry:
        """Warm ``key`` on ``node_id`` (idempotent), charging the
        molecule's bytes as ``kind`` traffic on a cold push."""
        shard = self.shards[node_id]
        if key not in shard.registry:
            with self._lock:
                source_nodes = list(self._placement.get(key, ()))
                nbytes = self._mol_nbytes.get(key, 0)
            if not source_nodes:
                raise KeyError(f"molecule {key!r} has no warm copy left")
            source = self.shards[sorted(source_nodes)[0]].registry.get(key)
            self.traffic.charge(node_id, nbytes, kind=kind)
            shard.server.register(source.molecule, source.params)
            self._record_placement(key, node_id)
            if kind == "replicate":
                with self._lock:
                    self.counters["promotions"] += 1
        return shard.registry.get(key)

    # -- work donation ---------------------------------------------------
    @protocol_event("cluster", "donate")
    def _donate(self, key: str, owner_id: str, donees: list[str],
                eps: EpsConfig, entry: RegistryEntry) -> ServeFuture:
        """Serve one request by row-range fan-out over idle shards.

        The owner cuts its plans along Hilbert key ranges
        (:func:`donation_bounds`), each donee executes its ranges
        against its *own* warm entry (deterministically rebuilt ->
        identical plans), and the owner replays the serial reduction.
        Failures settle the future, exactly like shard-side serving.
        """
        future = ServeFuture(key=key)
        owner = self.shards[owner_id]
        owner.metrics.record_admission(True)
        t0 = self._clock()
        nranges = 0
        try:
            plans = entry.plans_for(eps.eps_born, eps.eps_epol)
            atoms = entry.calc.atom_tree()
            quad = entry.calc.quad_tree()
            donee_entries = {
                node_id: self._ensure_registered(key, node_id,
                                                 kind="donate_publish")
                for node_id in donees}

            # Phase 1: Born flat spans, one contiguous key range per
            # donee, scattered positionally into the owner's flat CSR.
            far_total, near_total = born_flat_sizes(plans.born)
            far_flat = np.zeros(far_total)
            near_flat = np.zeros(near_total)
            born_bounds = donation_bounds(
                plans.born.row_pair_weights(),
                plan_row_keys(plans.born, quad.tree), len(donees))

            def run_born(node_id: str, lo: int, hi: int) -> int:
                (far, near), = execute_born_rows(
                    donee_entries[node_id], eps, [(lo, hi)])
                f0 = int(plans.born.far_start[lo])
                n0 = int(plans.born.near_point_start[lo])
                far_flat[f0:f0 + len(far)] = far
                near_flat[n0:n0 + len(near)] = near
                return int(far.nbytes + near.nbytes)

            self._donate_phase(owner_id, donees, born_bounds, run_born)
            partial = reduce_born_flat(plans.born, atoms, far_flat,
                                       near_flat)
            born_sorted = push_integrals_to_atoms(
                atoms, partial,
                max_radius=2.0 * entry.molecule.bounding_radius)

            # The Born radii broadcast every donee needs for phase 2.
            for node_id in donees:
                self.traffic.charge(node_id, int(born_sorted.nbytes),
                                    kind="donate_broadcast")

            # Phase 2: E_pol per-row terms, scattered positionally and
            # folded in serial row order by the owner.
            ectx = EnergyContext.build(atoms, born_sorted, eps.eps_epol)
            far_terms = np.zeros(plans.epol.nrows)
            near_terms = np.zeros(plans.epol.nrows)
            epol_bounds = donation_bounds(
                plans.epol.row_pair_weights(nbins=ectx.binning.nbins),
                plan_row_keys(plans.epol, atoms.tree), len(donees))

            def run_epol(node_id: str, lo: int, hi: int) -> int:
                (ft, nt), = execute_epol_rows(
                    donee_entries[node_id], eps, [(lo, hi)], born_sorted)
                far_terms[lo:hi] = ft
                near_terms[lo:hi] = nt
                return int(ft.nbytes + nt.nbytes)

            self._donate_phase(owner_id, donees, epol_bounds, run_epol)
            nranges = len(born_bounds) + len(epol_bounds)
            energy = self._donate_finish(entry, far_terms, near_terms)
        except Exception as err:
            owner.metrics.record_done(self._clock() - t0, ok=False,
                                      mode=MODE_DONATED)
            future._reject(err)
            return future
        latency = self._clock() - t0
        owner.metrics.record_done(latency, ok=True, mode=MODE_DONATED)
        with self._lock:
            self.counters["donations"] += 1
            self.counters["donated_ranges"] += nranges
        future._resolve(energy, worker=-1, eval_seconds=latency,
                        cold_attach=False, latency_seconds=latency,
                        mode=MODE_DONATED, nslices=nranges,
                        donees=list(donees))
        return future

    @protocol_event("cluster", "exec")
    def _donate_phase(self, owner_id: str, donees: list[str],
                      bounds: list[tuple[int, int]],
                      run_one: Callable[[str, int, int], int]) -> None:
        """One donated phase: range ``i`` executes on donee ``i`` (both
        orderings deterministic), with task bytes charged to the donee,
        measured execution seconds attributed to it, and the partial's
        bytes charged back to the owner."""
        for i, (lo, hi) in enumerate(bounds):
            node_id = donees[i % len(donees)]
            self.traffic.charge(node_id, self.config.request_nbytes,
                                kind="donate_task")
            t1 = self._clock()
            result_nbytes = run_one(node_id, lo, hi)
            self.shards[node_id].add_busy(self._clock() - t1)
            self.traffic.charge(owner_id, result_nbytes,
                                kind="donate_result")

    @protocol_event("cluster", "reduce")
    @array_contract(far_terms="(nrows,) float64 C",
                    near_terms="(nrows,) float64 C")
    def _donate_finish(self, entry: RegistryEntry, far_terms: np.ndarray,
                       near_terms: np.ndarray) -> float:
        """The owner's serial replay: interleaved left fold of the
        per-row terms, then the scalar energy -- the same reduction a
        cold run performs, so donation cannot move a bit."""
        pair_sum = fold_pair_terms(far_terms, near_terms)
        return epol_from_pair_sum(
            pair_sum, epsilon_solvent=entry.params.epsilon_solvent)

    # -- reporting -------------------------------------------------------
    def modeled_report(self) -> dict:
        """Modeled cluster timing: per-shard busy (measured evaluation
        seconds of routed requests + donated-range execution) plus
        charged network seconds; makespan is the slowest shard and
        modeled throughput is completions over that makespan."""
        busy = {node_id: shard.busy_seconds
                for node_id, shard in self.shards.items()}
        completed = 0
        with self._lock:
            served = list(self._served)
            donations = self.counters["donations"]
        for node_id, future in served:
            if not future.done() or future._error is not None:
                continue
            completed += 1
            busy[node_id] += float(future.detail.get("eval_seconds", 0.0))
        completed += donations
        per_node = {
            node_id: {
                "busy_seconds": busy[node_id],
                "network_seconds": self.traffic.node_seconds(node_id),
                "total_seconds": (busy[node_id]
                                  + self.traffic.node_seconds(node_id)),
            }
            for node_id in sorted(busy)}
        makespan = max((v["total_seconds"] for v in per_node.values()),
                       default=0.0)
        return {
            "per_node": per_node,
            "makespan_seconds": makespan,
            "completed": completed,
            "throughput_rps": completed / makespan if makespan > 0
            else 0.0,
        }

    def stats(self) -> dict:
        """Cluster-wide statistics: merged serving metrics, routing
        counters, per-shard breakdowns, traffic and the modeled report
        (JSON-ready -- the BENCH_cluster.json payload per node count)."""
        merged = aggregate_metrics(
            [shard.metrics for shard in self.shards.values()],
            clock=self._clock)
        out = merged.snapshot()
        with self._lock:
            counters = dict(self.counters)
            placement = {key: sorted(nodes)
                         for key, nodes in sorted(self._placement.items())}
        out["cluster"] = {
            "nodes": len(self.shards),
            "vnodes": self.config.vnodes,
            "replication_factor": self.config.replication_factor,
            "hot_top_k": self.config.hot_top_k,
            "backend": self.config.backend,
            "workers": self.config.workers,
            **counters,
            "replicated_keys": sum(1 for nodes in placement.values()
                                   if len(nodes) > 1),
        }
        out["shards"] = {
            node_id: {
                "queue_depth": shard.queue_depth(),
                "busy_seconds": shard.busy_seconds,
                "registry": shard.registry.stats(),
            }
            for node_id, shard in sorted(self.shards.items())}
        out["traffic"] = self.traffic.snapshot()
        out["modeled"] = self.modeled_report()
        return out
