"""``repro.cluster``: a sharded multi-node serving fabric (simulated).

The paper's top layer is an MPI cluster of multicores; this package is
that layer for the serving stack -- it scales :mod:`repro.serve` from
one warm fleet to N simulated shard nodes:

* :mod:`.ring` -- consistent-hash placement of
  :func:`~repro.serve.registry.content_key`\\ s onto shards (sha256
  virtual-node ring: balanced, minimally remapped on join/leave,
  ``PYTHONHASHSEED``-independent);
* :mod:`.shard` -- one node = one complete single-node serving stack
  (registry + warm fleet + server) under the cluster's shared clock;
* :mod:`.router` -- the routing tier: forwards submissions to the
  owning shard, re-raises shard backpressure to the client, promotes
  hit-ranked hot molecules to R replicas, and donates Hilbert
  key-range row slices of large requests to idle shards;
* :mod:`.donate` -- the key-range -> plan-row-range geometry donation
  cuts along (PR 8's ownership primitive, reused as currency);
* :mod:`.metrics` -- the fabric's only wall-clock reader plus the
  :class:`~repro.cluster.metrics.TrafficLedger` charging every routed
  byte through :meth:`~repro.parallel.machine.NetworkSpec.p2p_cost`;
* :mod:`.workload` -- seeded zipf-skewed request traces;
* ``python -m repro.cluster`` -- trace replay across node counts
  writing ``BENCH_cluster.json``.

Cluster-served energies are bit-identical to a cold
:meth:`repro.core.driver.PolarizationEnergyCalculator.run` at any shard
count, replication factor and donation configuration; see
``docs/SERVING.md`` section 8 for the architecture and the argument.
"""

from __future__ import annotations

from ..serve.scheduler import ServeConfig
from .donate import donation_bounds, plan_row_keys
from .metrics import TrafficLedger, aggregate_metrics, cluster_now
from .ring import HashRing, ring_hash
from .router import ClusterConfig, ClusterRouter
from .shard import ShardNode
from .workload import zipf_trace, zipf_weights

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "HashRing",
    "ServeConfig",
    "ShardNode",
    "TrafficLedger",
    "aggregate_metrics",
    "cluster_now",
    "donation_bounds",
    "make_cluster",
    "plan_row_keys",
    "ring_hash",
    "zipf_trace",
    "zipf_weights",
]


def make_cluster(nodes: int = 2, **kwargs) -> ClusterRouter:
    """Assemble (but do not start) a router over ``nodes`` shards;
    keyword arguments are :class:`ClusterConfig` fields."""
    return ClusterRouter(ClusterConfig(nodes=nodes, **kwargs))
