"""Cluster trace replay CLI: ``python -m repro.cluster``.

Replays one zipf-skewed request trace (a scaled stand-in for the
million-request serving target) through the sharded fabric at several
simulated node counts and writes ``BENCH_cluster.json``: per node count
the merged serving metrics, routing/replication/donation counters, the
byte-exact traffic ledger (every message charged through
``NetworkSpec.p2p_cost``) and the modeled cluster throughput
(completions over the slowest shard's busy + network seconds)::

    python -m repro.cluster --requests 200 --distinct 8
    python -m repro.cluster --node-counts 1,2,4 --backend real -P 2

Two gates make the run a test, not just a benchmark: every served
energy must be bit-identical to a cold ``driver.run()`` of the same
molecule, and the modeled throughput must increase monotonically from
1 to 4 nodes on the skewed workload.  The process exits non-zero if
either fails, or if any request is lost.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.driver import PolarizationEnergyCalculator
from ..molecule.generators import protein_blob
from ..serve.client import ServeClient
from ..serve.scheduler import ServeConfig
from .metrics import cluster_now
from .router import ClusterConfig, ClusterRouter
from .workload import zipf_trace


def _parse_counts(text: str) -> list[int]:
    counts = sorted({int(part) for part in text.split(",") if part.strip()})
    if not counts or any(c < 1 for c in counts):
        raise argparse.ArgumentTypeError(
            "--node-counts needs a comma list of positive ints")
    return counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Replay a zipf-skewed E_pol request trace through the "
                    "sharded serving fabric at several simulated node "
                    "counts and write BENCH_cluster.json.")
    parser.add_argument("--node-counts", type=_parse_counts,
                        default=[1, 2, 4, 8],
                        help="comma list of simulated node counts "
                             "(default 1,2,4,8)")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per node-count column (default 200)")
    parser.add_argument("--distinct", type=int, default=8,
                        help="distinct molecules in the trace (default 8)")
    parser.add_argument("--natoms", type=int, default=220,
                        help="atoms per molecule (default 220)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="zipf skew exponent (default 1.1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace + molecule generator seed")
    parser.add_argument("--backend", choices=("sim", "real"),
                        default="sim",
                        help="per-shard fleet backend (default sim)")
    parser.add_argument("-P", "--workers", type=int, default=1,
                        help="per-shard fleet width (default 1)")
    parser.add_argument("--replication-factor", type=int, default=2,
                        help="warm copies per hot molecule (default 2)")
    parser.add_argument("--hot-top-k", type=int, default=2,
                        help="hit-ranked molecules kept replicated "
                             "(default 2)")
    parser.add_argument("--promote-every", type=int, default=16,
                        help="re-rank the hot set every N submissions")
    parser.add_argument("--donation-depth", type=int, default=None,
                        help="queue depth at which large requests donate "
                             "row ranges to idle shards (default: off)")
    parser.add_argument("--queue-cap", type=int, default=64,
                        help="per-shard admission bound (default 64)")
    parser.add_argument("--bench-out", default="BENCH_cluster.json")
    args = parser.parse_args(argv)
    if args.requests < 1 or args.distinct < 1 or args.workers < 1:
        parser.error("--requests/--distinct/--workers must be >= 1")

    molecules = [protein_blob(args.natoms, seed=args.seed + 17 * i,
                              name=f"zipf-{i}")
                 for i in range(args.distinct)]
    trace = zipf_trace(args.distinct, args.requests, s=args.zipf_s,
                       seed=args.seed)
    print(f"workload: {args.requests} zipf(s={args.zipf_s}) requests "
          f"over {args.distinct} molecules of {args.natoms} atoms "
          f"(seed {args.seed})")

    # The determinism oracle: one cold serial run per molecule.
    t0 = cluster_now()
    cold = {m.name: PolarizationEnergyCalculator(m).run().energy
            for m in molecules}
    print(f"cold baseline: {len(cold)} molecules in "
          f"{cluster_now() - t0:.2f} s")

    serve_cfg = ServeConfig(queue_capacity=args.queue_cap)
    columns = []
    mismatches = 0
    lost = 0
    for nodes in args.node_counts:
        cfg = ClusterConfig(
            nodes=nodes, backend=args.backend, workers=args.workers,
            start_method=None,
            replication_factor=min(args.replication_factor, nodes),
            hot_top_k=args.hot_top_k,
            promote_every=args.promote_every,
            donation_saturation_depth=args.donation_depth,
            serve=serve_cfg)
        router = ClusterRouter(cfg)
        with router:
            client = ServeClient(router)
            keys = [client.register(m) for m in molecules]
            t1 = cluster_now()
            # Serialized replay: awaiting each request before submitting
            # the next keeps shard evaluations from contending for this
            # one physical machine, so measured eval seconds stay
            # uncontended and the *modeled* makespan (which is where the
            # parallelism lives -- the simmpi methodology) is honest.
            energies = []
            for mi in trace:
                future = client.submit(key=keys[mi], retries=sys.maxsize)
                energies.append(future.result(timeout=600.0))
            replay_seconds = cluster_now() - t1
            stats = router.stats()
        column_mismatch = sum(
            1 for mi, energy in zip(trace, energies)
            if energy != cold[molecules[mi].name])
        mismatches += column_mismatch
        lost += args.requests - stats["completed"]
        columns.append({
            "nodes": nodes,
            "replay_seconds": replay_seconds,
            "retried_rejections": client.retried_rejections,
            "identity_mismatches": column_mismatch,
            **stats,
        })
        modeled = stats["modeled"]
        print(f"  nodes={nodes}: modeled "
              f"{modeled['throughput_rps']:.1f} req/s "
              f"(makespan {modeled['makespan_seconds'] * 1e3:.1f} ms), "
              f"routed {stats['cluster']['routed']}, "
              f"rejected {stats['cluster']['rejected']}, "
              f"donations {stats['cluster']['donations']}, "
              f"promotions {stats['cluster']['promotions']}, "
              f"traffic {stats['traffic']['total_bytes']} B "
              f"({stats['traffic']['total_seconds'] * 1e3:.2f} ms), "
              f"identity mismatches {column_mismatch}")

    # The scaling gate: modeled throughput must rise monotonically over
    # the 1..4-node columns (8 nodes may saturate on a small trace).
    gate = [c for c in columns if c["nodes"] <= 4]
    rps = [c["modeled"]["throughput_rps"] for c in gate]
    monotonic = all(b > a for a, b in zip(rps, rps[1:]))
    record = {
        "workload": {
            "requests": args.requests,
            "distinct_molecules": args.distinct,
            "natoms": args.natoms,
            "zipf_s": args.zipf_s,
            "seed": args.seed,
        },
        "backend": args.backend,
        "workers": args.workers,
        "cold_energies": cold,
        "node_counts": args.node_counts,
        "columns": columns,
        "monotonic_1_to_4": monotonic,
        "identity_mismatches": mismatches,
    }
    with open(args.bench_out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.bench_out}")

    ok = True
    if mismatches:
        print(f"ERROR: {mismatches} served energies differ from the cold "
              "baseline")
        ok = False
    if lost:
        print(f"ERROR: {lost} request(s) unaccounted for")
        ok = False
    if not monotonic and len(gate) > 1:
        print("ERROR: modeled throughput is not monotonically increasing "
              f"over node counts {[c['nodes'] for c in gate]}: "
              f"{[round(r, 1) for r in rps]}")
        ok = False
    elif monotonic and len(gate) > 1:
        print(f"scaling: modeled throughput {[round(r, 1) for r in rps]} "
              f"req/s over nodes {[c['nodes'] for c in gate]} "
              "(monotonic)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
