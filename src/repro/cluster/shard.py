"""One simulated cluster node: a shard-local registry, fleet and server.

A :class:`ShardNode` is exactly the single-node serving stack of
:mod:`repro.serve` -- its own :class:`~repro.serve.registry.MoleculeRegistry`,
its own warm :class:`~repro.serve.fleet.InlineFleet` or
:class:`~repro.serve.fleet.ProcessFleet`, its own
:class:`~repro.serve.scheduler.EpolServer` -- wrapped with the three
things the routing tier needs on top:

* a **shared clock** -- the shard's metrics timestamp with the
  cluster's injected clock, so per-shard spans merge coherently;
* an **eviction listener** -- registry evictions keep firing the
  server's fleet-unpublish hook *and* notify the router, so the
  placement map never claims a replica the shard dropped;
* a **busy ledger** -- seconds of donated row-range execution are
  attributed to the shard that computed them (the measured half of the
  modeled makespan; the network half lives in
  :class:`~repro.cluster.metrics.TrafficLedger`).
"""

from __future__ import annotations

import threading
from typing import Callable

from ..serve.fleet import InlineFleet, ProcessFleet
from ..serve.metrics import ServeMetrics
from ..serve.registry import RegistryEntry
from ..serve.scheduler import EpolServer, ServeConfig


class ShardNode:
    """One cluster node: ``node_id`` plus a complete serving stack."""

    def __init__(self, node_id: str, *, backend: str = "sim",
                 workers: int = 1, config: ServeConfig | None = None,
                 start_method: str | None = None,
                 clock: Callable[[], float] | None = None) -> None:
        if not node_id:
            raise ValueError("node_id must be non-empty")
        self.node_id = node_id
        if backend == "real":
            fleet: InlineFleet | ProcessFleet = ProcessFleet(
                workers, start_method=start_method)
        elif backend == "sim":
            fleet = InlineFleet(nworkers=workers)
        else:
            raise ValueError(f"unknown shard backend {backend!r}")
        self.server = EpolServer(fleet=fleet, config=config,
                                 metrics=ServeMetrics(clock=clock))
        self._busy_lock = threading.Lock()
        self._busy_seconds = 0.0
        self._evict_listener: Callable[[str, str], None] | None = None
        # Chain the router's placement cleanup onto the server's own
        # fleet-unpublish hook: one eviction path no matter who drops
        # the entry (LRU budget, explicit demotion, clear()).
        server_on_evict = self.server.registry.on_evict

        def _on_evict(entry: RegistryEntry) -> None:
            if server_on_evict is not None:
                server_on_evict(entry)
            listener = self._evict_listener
            if listener is not None:
                listener(self.node_id, entry.key)

        self.server.registry.on_evict = _on_evict

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ShardNode":
        self.server.start()
        return self

    def stop(self) -> None:
        self.server.stop()

    # -- router-facing surface -------------------------------------------
    @property
    def registry(self):
        return self.server.registry

    @property
    def metrics(self) -> ServeMetrics:
        return self.server.metrics

    def queue_depth(self) -> int:
        """Requests waiting on this shard (the saturation signal)."""
        return self.server.queue_depth()

    def set_evict_listener(self, listener: Callable[[str, str], None]
                           ) -> None:
        """Install ``fn(node_id, key)`` called on every registry
        eviction (after the fleet unpublish)."""
        self._evict_listener = listener

    def add_busy(self, seconds: float) -> None:
        """Attribute measured execution seconds (donated row ranges run
        inline by the router) to this shard."""
        with self._busy_lock:
            self._busy_seconds += float(seconds)

    @property
    def busy_seconds(self) -> float:
        with self._busy_lock:
            return self._busy_seconds
