"""Cluster metrics: the fabric's wall clock and the traffic ledger.

This module is the cluster subsystem's **only** wall-clock reader,
mirroring :mod:`repro.serve.metrics` one layer up: repro-lint's REP003
gives every file under ``repro/cluster/`` the ``cluster`` role, which
bans direct ``time.*`` calls everywhere except here (see
:data:`repro.analysis_static.rules.CLOCK_HOME_FILES`).  The router
injects :func:`cluster_now` into every shard's
:class:`~repro.serve.metrics.ServeMetrics`, so all N shards timestamp
against one clock and :func:`aggregate_metrics` merges spans that
actually compare.

:class:`TrafficLedger` is the cluster's cost model: every byte the
router moves -- request forwards, result returns, hot-molecule replica
pushes, donated row-range tasks and their partials -- is charged
through :meth:`repro.parallel.machine.NetworkSpec.p2p_cost`
(``t_s + t_w * nbytes``, the Grama-style model the paper's Section IV.C
analysis uses).  The charged seconds accumulate per destination node,
which is what turns measured single-process execution into the modeled
cluster makespan the benchmark reports.
"""

from __future__ import annotations

import threading
import time

from ..analysis_static.verify.annotations import declares_effects
from ..parallel.machine import LONESTAR4_NETWORK, NetworkSpec
from ..serve.metrics import ServeMetrics


@declares_effects("CLOCK")
def cluster_now() -> float:
    """Monotonic wall-clock seconds (the cluster fabric's one clock)."""
    return time.perf_counter()


class TrafficLedger:
    """Thread-safe accounting of every byte the routing tier moves.

    All cluster traffic is charged as *inter-node* messages
    (``same_node=False``): the router models the front-end tier, so
    even a one-shard cluster pays the wire for each forwarded request
    -- which is exactly why the benchmark's 1-node column is an honest
    baseline rather than a free local call.
    """

    def __init__(self, network: NetworkSpec = LONESTAR4_NETWORK) -> None:
        self.network = network
        self._lock = threading.Lock()
        self._bytes: dict[str, int] = {}
        self._messages: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._node_seconds: dict[str, float] = {}

    def charge(self, node_id: str, nbytes: int, *, kind: str) -> float:
        """Charge one message of ``nbytes`` terminating at ``node_id``;
        returns the modeled seconds (``p2p_cost``)."""
        seconds = self.network.p2p_cost(int(nbytes), same_node=False)
        with self._lock:
            self._bytes[kind] = self._bytes.get(kind, 0) + int(nbytes)
            self._messages[kind] = self._messages.get(kind, 0) + 1
            self._seconds[kind] = self._seconds.get(kind, 0.0) + seconds
            self._node_seconds[node_id] = (
                self._node_seconds.get(node_id, 0.0) + seconds)
        return seconds

    def node_seconds(self, node_id: str) -> float:
        """Modeled network seconds charged against one node."""
        with self._lock:
            return self._node_seconds.get(node_id, 0.0)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._bytes.values())

    def snapshot(self) -> dict:
        """JSON-ready per-kind and per-node traffic totals."""
        with self._lock:
            return {
                "bytes": dict(sorted(self._bytes.items())),
                "messages": dict(sorted(self._messages.items())),
                "seconds": dict(sorted(self._seconds.items())),
                "node_seconds": dict(sorted(self._node_seconds.items())),
                "total_bytes": sum(self._bytes.values()),
                "total_seconds": sum(self._seconds.values()),
            }


def aggregate_metrics(parts: list[ServeMetrics], *,
                      clock=None) -> ServeMetrics:
    """One cluster-wide :class:`ServeMetrics` from N per-shard objects.

    Left-folds :meth:`ServeMetrics.merge`: counters sum, percentile
    samples concatenate (cluster percentiles come from the merged
    sample, not an average of shard percentiles), span endpoints widen.
    Only meaningful when every part shares one clock -- the router
    constructs all shard metrics with :func:`cluster_now`.
    """
    merged = ServeMetrics(clock=clock if clock is not None else cluster_now)
    for part in parts:
        merged.merge(part)
    return merged
