"""Donation geometry: Hilbert key ranges -> contiguous plan row ranges.

Work donation ships *plan row ranges* between shards, and the ranges
are cut along the octree's space-filling-curve keys
(:func:`repro.octree.partition.segment_by_key_range`): plan rows are in
canonical leaf order, so a key-interval cut is a contiguous ``[lo, hi)``
row range whose ownership can be stated as a closed Hilbert key range --
the same addressing PR 8 uses for per-rank tree ownership, reused here
as the cluster's donation currency.

Bit-identity is inherited, not re-proven: donated ranges execute the
exact slice kernels of :mod:`repro.serve.sliced` with positional
flat-CSR writes, and the owner replays the serial reduction
(:func:`~repro.serve.sliced.reduce_born_flat`,
:func:`~repro.serve.sliced.fold_pair_terms`), which PR 6 showed is
invariant to where the cuts fall.  So *any* bounds produced here -- and
any assignment of bounds to shards -- yields the cold ``driver.run()``
energy to the last bit; the key-range snapping only affects balance.
"""

from __future__ import annotations

import numpy as np

from ..analysis_static.flow.contracts import array_contract
from ..octree.partition import (coarsen_keys, segment_by_key_range,
                                segment_by_weight)
from ..plan import InteractionPlan


@array_contract(returns="(nrows,) uint64 C")
def plan_row_keys(plan: InteractionPlan, tree) -> np.ndarray | None:
    """Per-plan-row SFC key: the target leaf's curve key, in plan row
    order (non-decreasing -- rows follow canonical leaf order).

    ``tree`` is the octree the plan's ``target_leaves`` index into (the
    quad tree for Born plans, the atom tree for E_pol plans).  Returns
    None when the tree carries no SFC keys (hand-constructed trees);
    donation then falls back to plain weight cuts.
    """
    if tree.node_key is None:
        return None
    return tree.node_key[plan.target_leaves]


@array_contract(weights="(nrows,) float64 view-ok",
                keys="(nrows,) uint64 view-ok")
def donation_bounds(weights: np.ndarray, keys: np.ndarray | None,
                    nparts: int) -> list[tuple[int, int]]:
    """Cut plan rows into at most ``nparts`` donated ranges.

    With SFC ``keys``, cuts are weighted key-interval cuts snapped to
    coarse key blocks (every range is a closed Hilbert key range);
    without keys, plain weight-balanced cuts.  Empty ranges are dropped,
    so the result may have fewer than ``nparts`` entries -- callers
    assign ranges to donees in order and simply use fewer donees.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    w = np.asarray(weights, dtype=np.float64)
    if keys is None:
        bounds = segment_by_weight(w, nparts)
    else:
        bounds = segment_by_key_range(coarsen_keys(keys, nparts), nparts,
                                      weights=w)
    return [(int(lo), int(hi)) for lo, hi in bounds if hi > lo]
