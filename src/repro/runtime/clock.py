"""Simulated clocks for the discrete-event substrates."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    now: float = 0.0

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be non-negative); returns the
        new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` if it is in the future; a no-op
        otherwise (clocks never run backwards)."""
        if t > self.now:
            self.now = t
        return self.now
