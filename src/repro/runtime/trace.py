"""Lightweight event tracing for the simulated runtimes.

Traces record what the simulated schedulers did -- task starts, steals,
collective phases -- so experiments can report steal counts and phase
timelines, and tests can assert scheduler behaviour without poking at
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    Attributes
    ----------
    time:
        Simulated time of the event (seconds).
    kind:
        Event category, e.g. ``"steal"``, ``"task_start"``, ``"collective"``.
    who:
        Acting entity (worker id, rank id).
    detail:
        Free-form payload.
    """

    time: float
    kind: str
    who: int
    detail: Any = None


@dataclass
class Trace:
    """An append-only event log."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, time: float, kind: str, who: int, detail: Any = None) -> None:
        """Append one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(time, kind, who, detail))

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """All events of the given kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
