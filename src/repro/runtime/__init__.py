"""Simulated-runtime support: clocks, work counters, traces."""

from .clock import SimClock
from .instrument import WorkCounters
from .trace import Trace, TraceEvent

__all__ = ["SimClock", "Trace", "TraceEvent", "WorkCounters"]
