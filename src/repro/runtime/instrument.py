"""Work counters: the bridge between real kernels and modelled time.

Every kernel in :mod:`repro.core` and :mod:`repro.baselines` increments a
:class:`WorkCounters` as it computes.  The machine model
(:mod:`repro.parallel.cost`) then converts counters to simulated seconds.
Keeping *computation* (real NumPy arithmetic) separate from *cost
accounting* (counters) is what lets one run on a laptop regenerate the
paper's 144-core figures deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from dataclasses import field as dc_field


@dataclass
class WorkCounters:
    """Additive operation counts for one computation phase.

    Attributes
    ----------
    exact_pairs:
        Point-point interactions evaluated exactly (atom-qpoint pairs in
        the Born phase, atom-atom pairs in the energy phase).
    far_evals:
        Far-field (pseudo-point) evaluations accepted by the MAC.
    hist_pairs:
        Histogram-bin pair evaluations in the far-field energy rule
        (``M_eps^2`` per far node pair).
    nodes_visited:
        Octree nodes touched by traversals.
    tree_points:
        Points processed by tree construction / prefix passes.
    bytes_touched:
        Approximate working-set bytes of the phase (cache model input).
    """

    exact_pairs: int = 0
    far_evals: int = 0
    hist_pairs: int = 0
    nodes_visited: int = 0
    tree_points: int = 0
    bytes_touched: int = 0

    def add(self, other: "WorkCounters") -> "WorkCounters":
        """Accumulate ``other`` into this counter set (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "WorkCounters":
        return WorkCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def total_ops(self) -> int:
        """Raw operation count (unweighted), for quick sanity checks."""
        return self.exact_pairs + self.far_evals + self.hist_pairs + self.nodes_visited

    def __iadd__(self, other: "WorkCounters") -> "WorkCounters":
        return self.add(other)

    @staticmethod
    def merged(parts: list["WorkCounters"]) -> "WorkCounters":
        out = WorkCounters()
        for p in parts:
            out.add(p)
        return out


@dataclass
class TimingLedger:
    """Named wall-clock accumulators (plan build/exec, phase timings).

    Unlike :class:`WorkCounters` these are *measured seconds*, so they
    never feed the deterministic cost model -- they exist for bench
    output and the trace, where real timings are the point.
    """

    seconds: dict[str, float] = dc_field(default_factory=dict)

    def add(self, name: str, dt: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + float(dt)

    def merge(self, other: "TimingLedger") -> "TimingLedger":
        for name, dt in other.seconds.items():
            self.add(name, dt)
        return self

    def as_dict(self) -> dict[str, float]:
        return dict(sorted(self.seconds.items()))
