"""High-level public API: :class:`PolarizationEnergyCalculator`.

This is the entry point a downstream user should reach for::

    from repro import PolarizationEnergyCalculator, protein_blob

    mol = protein_blob(5000, seed=1)
    calc = PolarizationEnergyCalculator(mol)
    result = calc.run()
    print(result.energy, "kcal/mol")

It wires together surface sampling, octree construction, the Born-radii
traversal and the energy traversal -- the serial (OCT_CILK-algorithm)
pipeline.  The distributed variants live in :mod:`repro.parallel.hybrid`
and reuse this object's prepared state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from ..surface.sas import SurfaceQuadrature, build_surface
from .born import (AtomTreeData, BornPartial, QuadTreeData, approx_integrals,
                   push_integrals_to_atoms)
from .energy import EnergyContext, epol_from_pair_sum
from .error import percent_error
from .naive import naive_reference
from .params import ApproximationParams


@dataclass
class EpolResult:
    """Result of a polarization-energy computation.

    Attributes
    ----------
    energy:
        GB polarization energy, kcal/mol.
    born_radii:
        ``(N,)`` Born radii in original atom order.
    born_counters / energy_counters:
        Work counters for the two traversal phases (inputs to the timing
        models).
    params:
        The approximation parameters used.
    molecule_name / natoms / nqpoints:
        Provenance.
    """

    energy: float
    born_radii: np.ndarray
    born_counters: WorkCounters
    energy_counters: WorkCounters
    params: ApproximationParams
    molecule_name: str
    natoms: int
    nqpoints: int


@dataclass
class RunProfile:
    """A fully executed pipeline plus per-leaf work profiles.

    The per-leaf counters are *partition-invariant*: each leaf's traversal
    classifies against the same tree regardless of which rank owns it.
    The parallel runners therefore schedule these cached profiles instead
    of re-executing the kernels for every layout under study.
    """

    born_per_leaf: list[WorkCounters]
    energy_per_leaf: list[WorkCounters]
    born_sorted: np.ndarray
    born_counters: WorkCounters
    energy_counters: WorkCounters
    pair_sum: float
    energy: float


@dataclass
class PolarizationEnergyCalculator:
    """Computes GB polarization energy with the paper's octree algorithm.

    Construction is lazy: the surface and octrees are built on first use
    and cached, matching the paper's treatment of octree construction as a
    reusable pre-processing step (Section IV.C).

    Attributes
    ----------
    molecule:
        Input molecule.
    params:
        Approximation parameters.
    surface:
        Optional pre-built surface quadrature (else sampled on demand).
    """

    molecule: Molecule
    params: ApproximationParams = field(default_factory=ApproximationParams)
    surface: SurfaceQuadrature | None = None
    _atoms: AtomTreeData | None = field(default=None, repr=False)
    _quad: QuadTreeData | None = field(default=None, repr=False)
    _born_sorted: np.ndarray | None = field(default=None, repr=False)
    _born_counters: WorkCounters | None = field(default=None, repr=False)
    _profile: RunProfile | None = field(default=None, repr=False)
    _plan_cache: object | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # prepared state
    # ------------------------------------------------------------------
    def prepare_surface(self) -> SurfaceQuadrature:
        """Sample (or return the cached) molecular surface."""
        if self.surface is None:
            self.surface = build_surface(
                self.molecule, points_per_atom=self.params.points_per_atom)
        return self.surface

    def atom_tree(self) -> AtomTreeData:
        """Build (or return the cached) atoms octree bundle."""
        if self._atoms is None:
            self._atoms = AtomTreeData.build(
                self.molecule, leaf_cap=self.params.leaf_cap,
                sfc=self.params.tree_sfc,
                compress=self.params.tree_compress)
        return self._atoms

    def quad_tree(self) -> QuadTreeData:
        """Build (or return the cached) quadrature-points octree bundle."""
        if self._quad is None:
            self._quad = QuadTreeData.build(
                self.prepare_surface(),
                leaf_cap=self.params.quad_leaf_cap,
                sfc=self.params.tree_sfc,
                compress=self.params.tree_compress)
        return self._quad

    # ------------------------------------------------------------------
    # interaction plans
    # ------------------------------------------------------------------
    def plan_cache(self):
        """The calculator's :class:`~repro.plan.cache.PlanCache` (lazy)."""
        from ..plan import PlanCache
        if self._plan_cache is None:
            self._plan_cache = PlanCache()
        return self._plan_cache

    def born_plan(self, eps: float | None = None, *,
                  disable_far: bool = False):
        """The cached whole-tree Born interaction plan for ``eps``
        (default: ``params.eps_born``)."""
        import time

        from ..plan import build_born_plan
        from ..plan.cache import born_key
        eps = self.params.eps_born if eps is None else float(eps)
        variant = self.params.born_mac_variant
        key = born_key(eps, mac_variant=variant, disable_far=disable_far,
                       tree_variant=self.params.tree_variant)
        return self.plan_cache().get_or_build(
            key, lambda: build_born_plan(self.atom_tree(), self.quad_tree(),
                                         eps, disable_far=disable_far,
                                         mac_variant=variant,
                                         timer=time.perf_counter))

    def epol_plan(self, eps: float | None = None, *,
                  disable_far: bool = False):
        """The cached whole-tree energy interaction plan for ``eps``
        (default: ``params.eps_epol``).  Reused across the Fig. 10
        epsilon sweep -- the plan depends on the tree and ``eps`` only."""
        import time

        from ..plan import build_epol_plan
        from ..plan.cache import epol_key
        eps = self.params.eps_epol if eps is None else float(eps)
        key = epol_key(eps, disable_far=disable_far,
                       tree_variant=self.params.tree_variant)
        return self.plan_cache().get_or_build(
            key, lambda: build_epol_plan(self.atom_tree(), eps,
                                         disable_far=disable_far,
                                         timer=time.perf_counter))

    def plans(self):
        """Both default-configuration plans as a
        :class:`~repro.plan.schema.PlanSet` (what the process-parallel
        backend publishes to its workers)."""
        from ..plan import PlanSet
        return PlanSet(born=self.born_plan(), epol=self.epol_plan())

    def plan_stats(self, *, nparts: int = 1, nbins: int = 0) -> dict:
        """JSON-ready statistics of the cached default plans (near/far
        pair counts, tile histogram, per-rank imbalance, build timings)."""
        from ..plan import plan_stats as _plan_stats
        return {
            "born": _plan_stats(self.born_plan(), nparts=nparts),
            "epol": _plan_stats(self.epol_plan(), nparts=nparts,
                                nbins=nbins),
            "cache": self.plan_cache().stats(),
        }

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def profile(self) -> RunProfile:
        """Execute the full pipeline once, capturing per-leaf work profiles
        (cached; see :class:`RunProfile`).

        Plan-based: the cached whole-tree plans are built (or reused) and
        executed batched; per-leaf counters are synthesised from the plan
        rows -- integer-exact matches of what the per-leaf loops count.
        """
        if self._profile is None:
            from ..plan import execute_born_plan, execute_epol_plan
            atoms = self.atom_tree()
            quad = self.quad_tree()
            born_per_leaf: list[WorkCounters] = []
            partial = execute_born_plan(self.born_plan(), atoms, quad,
                                        per_leaf=born_per_leaf)
            born_sorted = push_integrals_to_atoms(
                atoms, partial,
                max_radius=2.0 * self.molecule.bounding_radius)
            self._born_sorted = born_sorted
            self._born_counters = partial.counters.copy()
            ectx = EnergyContext.build(atoms, born_sorted,
                                       self.params.eps_epol)
            energy_per_leaf: list[WorkCounters] = []
            epartial = execute_epol_plan(self.epol_plan(), ectx,
                                         per_leaf=energy_per_leaf)
            self._profile = RunProfile(
                born_per_leaf=born_per_leaf,
                energy_per_leaf=energy_per_leaf,
                born_sorted=born_sorted,
                born_counters=partial.counters,
                energy_counters=epartial.counters,
                pair_sum=epartial.pair_sum,
                energy=epol_from_pair_sum(
                    epartial.pair_sum,
                    epsilon_solvent=self.params.epsilon_solvent),
            )
        return self._profile

    def born_radii(self) -> np.ndarray:
        """Born radii in original atom order (cached after first call)."""
        if self._born_sorted is None:
            self.profile()
        assert self._born_sorted is not None
        return self.atom_tree().to_original_order(self._born_sorted)

    def born_partial(self, q_leaves: np.ndarray) -> BornPartial:
        """One rank's share of the Born phase (used by the parallel
        runners); see :func:`repro.core.born.approx_integrals`."""
        return approx_integrals(self.atom_tree(), self.quad_tree(),
                                q_leaves, self.params.eps_born,
                                mac_variant=self.params.born_mac_variant)

    def energy_context(self) -> EnergyContext:
        """Energy-phase context (tree + binned charge histograms)."""
        self.born_radii()  # ensures _born_sorted
        assert self._born_sorted is not None
        return EnergyContext.build(self.atom_tree(), self._born_sorted,
                                   self.params.eps_epol)

    def run(self) -> EpolResult:
        """Execute the full pipeline and return an :class:`EpolResult`."""
        prof = self.profile()
        return EpolResult(
            energy=prof.energy,
            born_radii=self.born_radii(),
            born_counters=prof.born_counters.copy(),
            energy_counters=prof.energy_counters.copy(),
            params=self.params,
            molecule_name=self.molecule.name,
            natoms=len(self.molecule),
            nqpoints=self.prepare_surface().npoints,
        )

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def compute(self, backend: str | object = "serial", *, workers: int = 1,
                trace=None):
        """Execute the pipeline on an execution backend, with wall-clock
        phase timing.

        Parameters
        ----------
        backend:
            ``"serial"`` runs the rank program inline on
            :class:`~repro.parallel.procpool.backend.SerialBackend` (bit
            identical to :meth:`run`, but timed); ``"real"`` runs it across
            ``workers`` OS processes with the molecule in shared memory
            (:func:`repro.parallel.procpool.runner.run_real`).  Any object
            satisfying the
            :class:`~repro.parallel.procpool.backend.ExecutionBackend`
            protocol is also accepted and driven inline as one rank of its
            collective group.
        workers:
            Process count for the ``"real"`` backend.
        trace:
            Optional :class:`~repro.runtime.trace.Trace` receiving phase
            and collective events.

        Returns
        -------
        :class:`repro.parallel.procpool.runner.BackendRunResult`
            with measured (not modelled) seconds.
        """
        import time as _time

        from ..parallel.procpool.backend import SerialBackend
        from ..parallel.procpool.runner import (BackendRunResult,
                                                rank_program, run_real)
        from ..runtime.trace import Trace

        if backend == "real":
            return run_real(self, workers, trace=trace)
        if backend == "serial":
            if workers != 1:
                raise ValueError("the serial backend has exactly 1 worker")
            backend = SerialBackend()
        elif isinstance(backend, str):
            raise ValueError(f"unknown backend {backend!r}")

        trace = trace if trace is not None else Trace()
        t0 = _time.perf_counter()
        atoms = self.atom_tree()
        quad = self.quad_tree()
        setup_seconds = _time.perf_counter() - t0
        t0 = _time.perf_counter()
        report = rank_program(backend, atoms, quad, self.params,
                              max_radius=2.0 * self.molecule.bounding_radius)
        wall_seconds = _time.perf_counter() - t0
        t = 0.0
        for kind, detail in report.events:
            if kind == "phase":
                t += detail.get("seconds", 0.0)
            trace.record(t, kind, report.rank, detail)
        pair_sum = report.pair_sum  # type: ignore[attr-defined]
        born_sorted = report.born_sorted  # type: ignore[attr-defined]
        if pair_sum is None:
            raise ValueError("compute() must be driven from the backend's "
                             "root rank (reduce returned None)")
        return BackendRunResult(
            backend="serial", nworkers=backend.size, energy=epol_from_pair_sum(
                pair_sum, epsilon_solvent=self.params.epsilon_solvent),
            born_radii=atoms.to_original_order(born_sorted),
            wall_seconds=wall_seconds, setup_seconds=setup_seconds,
            phase_seconds=dict(report.phase_seconds),
            rank_seconds=[report.span_seconds],
            counters=report.counters.copy(), trace=trace)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def compare_with_naive(self) -> dict[str, float]:
        """Run both the octree pipeline and the naive reference; return
        energies and the signed percent error (paper's accuracy metric)."""
        result = self.run()
        ref = naive_reference(self.molecule, self.prepare_surface(),
                              epsilon_solvent=self.params.epsilon_solvent)
        return {
            "octree_energy": result.energy,
            "naive_energy": ref.energy,
            "percent_error": percent_error(result.energy, ref.energy),
        }


def compute_polarization_energy(molecule: Molecule, *,
                                eps_born: float | None = None,
                                eps_epol: float | None = None,
                                **param_overrides) -> EpolResult:
    """One-call convenience API.

    ``eps_born``/``eps_epol`` (and any other
    :class:`~repro.core.params.ApproximationParams` field passed as a
    keyword) override the defaults.
    """
    kwargs = dict(param_overrides)
    if eps_born is not None:
        kwargs["eps_born"] = eps_born
    if eps_epol is not None:
        kwargs["eps_epol"] = eps_epol
    params = ApproximationParams(**kwargs)
    return PolarizationEnergyCalculator(molecule, params).run()
