"""Pairwise Generalized-Born formulas: STILL f_GB, HCT, OBC, Still-1990.

The octree algorithms and the naive reference share the STILL-style
``f_GB`` interaction function (Eq. 2).  The baseline packages use their own
Born-radius models -- HCT pairwise descreening (Amber, Gromacs), OBC
rescaling (NAMD) and Still's original volume descreening (Tinker) -- which
we implement faithfully enough that their *energy deviations* from the
naive surface-r^6 reference emerge from the model differences themselves
(paper Fig. 9), not from fudged outputs.
"""

from __future__ import annotations

import numpy as np

from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters

#: HCT dielectric-offset subtracted from intrinsic radii (Angstrom).
HCT_OFFSET = 0.09

#: HCT per-element descreening scale factors (Amber's standard set).
HCT_SCALES = {"H": 0.85, "C": 0.72, "N": 0.79, "O": 0.85, "S": 0.96, "P": 0.86}

#: OBC-II rescaling coefficients (Onufriev, Bashford & Case 2004).
OBC_ALPHA, OBC_BETA, OBC_GAMMA = 1.0, 0.8, 4.85

#: Born radii are clamped to this multiple of the largest intrinsic
#: radius when descreening numerically overshoots (production GB codes
#: use the same kind of floor).
MAX_RADIUS_FACTOR = 50.0

#: Sphere-volume prefactor, folded to one float64 constant so the volume
#: kernel issues a single well-typed multiply (REP009).
FOUR_THIRDS = 4.0 / 3.0


def f_gb(r2: np.ndarray, born_product: np.ndarray) -> np.ndarray:
    """The STILL interaction length ``f_GB`` of Eq. 2.

    ``f = sqrt(r^2 + R_i R_j exp(-r^2 / (4 R_i R_j)))`` -- smoothly
    interpolating between ``sqrt(R_i R_j)`` at contact (giving the Born
    self-energy on the diagonal) and ``r`` at separation (plain Coulomb).

    Parameters
    ----------
    r2:
        Squared distances (any broadcastable shape).
    born_product:
        ``R_i * R_j``, broadcastable against ``r2``.
    """
    bp = np.asarray(born_product, dtype=np.float64)
    r2 = np.asarray(r2, dtype=np.float64)
    return np.sqrt(r2 + bp * np.exp(-r2 / (4.0 * bp)))


def hct_scale_factors(molecule: Molecule) -> np.ndarray:
    """Per-atom HCT descreening scale factors from element symbols."""
    return np.array([HCT_SCALES.get(str(e), 0.8) for e in molecule.elements])


def hct_descreening_integral(rho_i: np.ndarray, r: np.ndarray,
                             srho_j: np.ndarray) -> np.ndarray:
    """The HCT pairwise descreening integral ``I_ij`` (broadcast over pairs).

    This is the closed-form integral of ``1/r^4`` over the part of atom
    ``j``'s scaled sphere (radius ``srho_j``) outside atom ``i``'s sphere
    (radius ``rho_i``), at centre distance ``r``.  Standard Amber/HCT form::

        U = r + srho_j
        L = max(rho_i, r - srho_j)     (zero contribution if U <= rho_i)
        I = 1/2 [ 1/L - 1/U + r/4 (1/U^2 - 1/L^2)
                  + 1/(2r) ln(L/U) + srho_j^2/(4r) (1/L^2 - 1/U^2) ]

    plus the deep-overlap correction ``2 (1/rho_i - 1/L)`` when atom ``i``'s
    centre lies inside ``j``'s scaled sphere (``srho_j - r > rho_i``).
    """
    rho_i, r, srho_j = np.broadcast_arrays(
        np.asarray(rho_i, dtype=np.float64),
        np.asarray(r, dtype=np.float64),
        np.asarray(srho_j, dtype=np.float64))
    upper = r + srho_j
    lower = np.maximum(rho_i, np.abs(r - srho_j))
    engulfed = upper <= rho_i            # j's sphere entirely inside i: no descreening
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_l = 1.0 / lower
        inv_u = 1.0 / upper
        term = 0.5 * (inv_l - inv_u
                      + 0.25 * r * (inv_u ** 2 - inv_l ** 2)
                      + 0.5 / r * np.log(lower / upper)
                      + 0.25 * (srho_j ** 2) / r * (inv_l ** 2 - inv_u ** 2))
        deep = (srho_j - r) > rho_i
        term = term + np.where(deep, 2.0 * (1.0 / rho_i - inv_l), 0.0)
    term = np.where(engulfed, 0.0, term)
    np.nan_to_num(term, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
    return term


def hct_born_radii(molecule: Molecule, *, cutoff: float | None = None,
                   counters: WorkCounters | None = None) -> np.ndarray:
    """HCT Born radii by all-pairs (or cutoff-truncated) descreening.

    ``1/R_i = 1/rho_i - sum_j I_ij`` with ``rho_i = r_i - offset``.
    O(N^2) pairwise, blocked; the baselines' performance models account for
    the nblist machinery separately.
    """
    pos = molecule.positions
    n = len(molecule)
    rho = molecule.radii - HCT_OFFSET
    scaled = hct_scale_factors(molecule) * rho
    inv_r = 1.0 / rho
    block = 256
    total = np.zeros(n)
    for s in range(0, n, block):
        e = min(s + block, n)
        diff = pos[None, :, :] - pos[s:e, None, :]
        r = np.sqrt(np.einsum("ijx,ijx->ij", diff, diff))
        i_idx = np.arange(s, e)
        mask = np.ones_like(r, dtype=bool)
        mask[np.arange(e - s), i_idx] = False            # exclude self
        if cutoff is not None:
            mask &= r < cutoff
        contrib = hct_descreening_integral(rho[s:e, None], r, scaled[None, :])
        total[s:e] = np.where(mask, contrib, 0.0).sum(axis=1)
        if counters is not None:
            counters.exact_pairs += (e - s) * n
    with np.errstate(divide="ignore"):
        inv_R = inv_r - total
    # Descreening can numerically overshoot for tightly packed synthetic
    # inputs; clamp to the intrinsic radius floor like production GB codes.
    inv_R = np.clip(inv_R, 1.0 / (MAX_RADIUS_FACTOR * molecule.radii.max()),
                    1.0 / rho)
    return 1.0 / inv_R


def obc_born_radii(molecule: Molecule, *, cutoff: float | None = None,
                   counters: WorkCounters | None = None) -> np.ndarray:
    """OBC-II Born radii: HCT integral rescaled through a tanh.

    ``1/R_i = 1/rho_i - tanh(a psi - b psi^2 + c psi^3) / r_i`` with
    ``psi = rho_i * I_i`` (I_i the summed HCT integral).
    """
    pos = molecule.positions
    n = len(molecule)
    rho = molecule.radii - HCT_OFFSET
    scaled = hct_scale_factors(molecule) * rho
    block = 256
    integral = np.zeros(n)
    for s in range(0, n, block):
        e = min(s + block, n)
        diff = pos[None, :, :] - pos[s:e, None, :]
        r = np.sqrt(np.einsum("ijx,ijx->ij", diff, diff))
        mask = np.ones_like(r, dtype=bool)
        mask[np.arange(e - s), np.arange(s, e)] = False
        if cutoff is not None:
            mask &= r < cutoff
        contrib = hct_descreening_integral(rho[s:e, None], r, scaled[None, :])
        integral[s:e] = np.where(mask, contrib, 0.0).sum(axis=1)
        if counters is not None:
            counters.exact_pairs += (e - s) * n
    psi = rho * integral
    inv_R = (1.0 / rho
             - np.tanh(OBC_ALPHA * psi - OBC_BETA * psi ** 2
                       + OBC_GAMMA * psi ** 3) / molecule.radii)
    inv_R = np.clip(inv_R, 1.0 / (MAX_RADIUS_FACTOR * molecule.radii.max()),
                    1.0 / rho)
    return 1.0 / inv_R


#: Still volume-descreening scale, calibrated on protein-density synthetic
#: packings so the resulting GB energy lands near the 70%-of-naive
#: signature the paper measured for Tinker (Fig. 9).  Plays the role of
#: Still's P4 nonbonded parameter.
STILL_VOLUME_SCALE = 0.9


def still_volume_born_radii(molecule: Molecule, *,
                            scale: float = STILL_VOLUME_SCALE,
                            counters: WorkCounters | None = None) -> np.ndarray:
    """Still-1990-style volume descreening (Tinker's STILL lineage).

    ``1/R_i = 1/rho_i - (P/4pi) sum_j V_j / r_ij^4`` with ``V_j`` atom
    ``j``'s van der Waals volume and pair distances floored at contact
    (``rho_i + rho_j``) -- overlapping volume must not descreen twice,
    which is what Still's bonded-pair parameters handle in the original.
    The model systematically under-descreens buried atoms relative to the
    surface-r^6 reference: Tinker's ~70%-of-naive energies in Fig. 9.
    """
    pos = molecule.positions
    n = len(molecule)
    radii = molecule.radii
    vol = FOUR_THIRDS * np.pi * radii ** 3
    block = 256
    total = np.zeros(n)
    for s in range(0, n, block):
        e = min(s + block, n)
        diff = pos[None, :, :] - pos[s:e, None, :]
        r = np.sqrt(np.einsum("ijx,ijx->ij", diff, diff))
        np.maximum(r, radii[s:e, None] + radii[None, :], out=r)
        mask = np.ones_like(r, dtype=bool)
        mask[np.arange(e - s), np.arange(s, e)] = False
        contrib = vol[None, :] / r ** 4
        total[s:e] = np.where(mask, contrib, 0.0).sum(axis=1)
        if counters is not None:
            counters.exact_pairs += (e - s) * n
    inv_R = 1.0 / radii - scale * total / (4.0 * np.pi)
    inv_R = np.clip(inv_R, 1.0 / (MAX_RADIUS_FACTOR * radii.max()),
                    1.0 / radii)
    return 1.0 / inv_R
