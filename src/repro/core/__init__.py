"""The paper's core contribution: octree-approximated GB polarization energy."""

from .binning import BornBinning, build_binning
from .born import (AtomTreeData, BornPartial, QuadTreeData, approx_integrals,
                   approx_integrals_perleaf, born_radii_octree,
                   push_integrals_to_atoms)
from .counting import (count_born_work, count_epol_work,
                       shell_surface_points)
from .driver import (EpolResult, PolarizationEnergyCalculator,
                     compute_polarization_energy)
from .dualtree import dual_tree_born_radii, dual_tree_integrals
from .energy import (EnergyContext, EpolPartial, approx_epol,
                     approx_epol_perleaf, epol_from_pair_sum, epol_octree)
from .error import ErrorSummary, percent_error, radii_relative_error
from .gbmodels import (f_gb, hct_born_radii, hct_descreening_integral,
                       obc_born_radii, still_volume_born_radii)
from .integrals import (born_radius_from_integral, pairwise_r6_exact,
                        surface_integral)
from .naive import NaiveResult, naive_born_radii, naive_epol, naive_reference
from .params import ApproximationParams, GBModel

__all__ = [
    "ApproximationParams",
    "AtomTreeData",
    "BornBinning",
    "BornPartial",
    "EnergyContext",
    "EpolPartial",
    "EpolResult",
    "ErrorSummary",
    "GBModel",
    "NaiveResult",
    "PolarizationEnergyCalculator",
    "QuadTreeData",
    "approx_epol",
    "approx_epol_perleaf",
    "approx_integrals",
    "approx_integrals_perleaf",
    "born_radii_octree",
    "born_radius_from_integral",
    "build_binning",
    "compute_polarization_energy",
    "count_born_work",
    "count_epol_work",
    "dual_tree_born_radii",
    "dual_tree_integrals",
    "epol_from_pair_sum",
    "epol_octree",
    "f_gb",
    "hct_born_radii",
    "hct_descreening_integral",
    "naive_born_radii",
    "naive_epol",
    "naive_reference",
    "obc_born_radii",
    "pairwise_r6_exact",
    "percent_error",
    "push_integrals_to_atoms",
    "radii_relative_error",
    "shell_surface_points",
    "still_volume_born_radii",
    "surface_integral",
]
