"""Vectorised surface-integral kernels (Eqs. 3 and 4 of the paper).

The Coulomb-field approximation turns Born radii into surface integrals::

    r^4:  1/R_i   ~= (1/4pi) sum_k w_k (r_k - x_i) . n_k / |r_k - x_i|^4
    r^6:  1/R_i^3 ~= (3/4pi) * (1/3) * ... = (1/4pi) sum_k w_k (r_k - x_i) . n_k / |r_k - x_i|^6

(both as printed in the paper; the r^6 weights already absorb the 3/(4pi)
vs 1/(4pi) bookkeeping -- see :func:`born_radius_from_integral`).

These kernels are the exact near-field building block shared by the naive
reference and the octree algorithm's leaf-leaf case.  They are blocked so
the pairwise distance matrix never exceeds a few MB regardless of input
size -- the cache-conscious habit the HPC guides insist on.
"""

from __future__ import annotations

import numpy as np

from ..constants import FOUR_PI, MIN_BORN_RADIUS
from ..runtime.instrument import WorkCounters

#: Pairwise block edge: 256 targets x 2048 sources of float64 stays ~4 MB.
TARGET_BLOCK = 256
SOURCE_BLOCK = 2048


def pair_distance_sq(targets: np.ndarray, sources: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Squared pairwise distances via the GEMM expansion, plus the centred
    coordinate copies.

    ``r2[i, j] = |t_i|^2 + |s_j|^2 - 2 t_i . s_j`` after translating both
    sets by the source centroid.  Routing the cross term through one matrix
    multiply is several times faster than forming the ``(T, S, 3)``
    difference tensor; centring keeps the expansion's cancellation error at
    the 1e-11-relative level even for coordinates hundreds of Angstroms
    from the origin.

    Returns ``(r2, t_centred, s_centred)``; ``r2`` is clamped at zero.
    """
    center = sources.mean(axis=0)
    t = targets - center
    s = sources - center
    r2 = ((t * t).sum(axis=1)[:, None] + (s * s).sum(axis=1)[None, :]
          - 2.0 * (t @ s.T))
    np.maximum(r2, 0.0, out=r2)
    return r2, t, s


def surface_integral(points: np.ndarray, normals: np.ndarray,
                     weights: np.ndarray, targets: np.ndarray, *,
                     power: int = 6,
                     counters: WorkCounters | None = None) -> np.ndarray:
    """Evaluate ``s_i = sum_k w_k (r_k - x_i).n_k / |r_k - x_i|^power`` for
    every target ``x_i``.

    Parameters
    ----------
    points, normals, weights:
        Surface quadrature arrays, shapes ``(Q, 3)``, ``(Q, 3)``, ``(Q,)``.
    targets:
        ``(A, 3)`` evaluation points (atom centres).
    power:
        4 or 6 -- the paper's two Coulomb-field approximations.
    counters:
        Optional work counters; ``exact_pairs`` grows by ``A * Q``.

    Returns
    -------
    ``(A,)`` integral values (no ``1/4pi`` normalisation applied).
    """
    if power not in (4, 6):
        raise ValueError("power must be 4 or 6")
    pts = np.asarray(points, dtype=np.float64)
    nrm = np.asarray(normals, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    tgt = np.atleast_2d(np.asarray(targets, dtype=np.float64))
    q = pts.shape[0]
    a = tgt.shape[0]
    out = np.zeros(a)
    wn = w[:, None] * nrm                       # (Q, 3) pre-weighted normals
    half = power // 2
    for ts in range(0, a, TARGET_BLOCK):
        te = min(ts + TARGET_BLOCK, a)
        tb = tgt[ts:te]                          # (T, 3)
        acc = np.zeros(te - ts)
        for ss in range(0, q, SOURCE_BLOCK):
            se = min(ss + SOURCE_BLOCK, q)
            r2, t_c, s_c = pair_distance_sq(tb, pts[ss:se])
            # (p_q - p_a) . wn_q = s_q . wn_q - t_a . wn_q (GEMM form).
            wn_b = wn[ss:se]
            num = (s_c * wn_b).sum(axis=1)[None, :] - t_c @ wn_b.T
            with np.errstate(divide="ignore", invalid="ignore"):
                term = num / r2 ** half
            # A target coincident with a quadrature point contributes an
            # undefined term; drop it (the octree path never evaluates it
            # either because such a pair is always a leaf self-pair of
            # measure zero).
            np.nan_to_num(term, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
            acc += term.sum(axis=1)
        out[ts:te] = acc
    if counters is not None:
        counters.exact_pairs += a * q
        counters.bytes_touched += (pts.nbytes + tgt.nbytes)
    return out


def born_radius_from_integral(integral: np.ndarray, intrinsic_radius: np.ndarray,
                              *, power: int = 6,
                              max_radius: float | None = None) -> np.ndarray:
    """Convert raw surface integrals to Born radii.

    For ``power=6`` (Eq. 4): ``1/R^3 = integral / (4 pi)`` so
    ``R = (integral/4pi)^(-1/3)``; for ``power=4`` (Eq. 3):
    ``1/R = integral / (4 pi)``.

    Following Fig. 2's ``PUSH-INTEGRALS-TO-ATOMS`` the result is clamped
    from below by the intrinsic atomic radius.  Degenerate quadratures can
    make the integral non-positive for deeply buried atoms; those radii are
    clamped to ``max_radius`` (callers pass the molecule's bounding radius
    -- a Born radius cannot meaningfully exceed the molecule).
    """
    s = np.asarray(integral, dtype=np.float64) / FOUR_PI
    rin = np.asarray(intrinsic_radius, dtype=np.float64)
    cap = np.inf if max_radius is None else float(max_radius)
    with np.errstate(divide="ignore", invalid="ignore"):
        if power == 6:
            radius = np.where(s > 0, s ** (-1.0 / 3.0), cap)
        elif power == 4:
            radius = np.where(s > 0, 1.0 / s, cap)
        else:
            raise ValueError("power must be 4 or 6")
    radius = np.minimum(radius, cap)
    radius = np.maximum(radius, rin)
    return np.maximum(radius, MIN_BORN_RADIUS)


def pairwise_r6_exact(atom_pos: np.ndarray, q_pos: np.ndarray,
                      q_normals: np.ndarray, q_weights: np.ndarray,
                      counters: WorkCounters | None = None,
                      power: int = 6) -> np.ndarray:
    """Unblocked exact kernel for small leaf-leaf tiles (r^6 by default,
    r^4 for the Eq. 3 pathway).

    Identical maths to :func:`surface_integral` but without the blocking
    machinery -- the shape the octree near-field path calls with tiles of
    at most (leaf_cap x leaf_cap) points.
    """
    if power not in (4, 6):
        raise ValueError("power must be 4 or 6")
    r2, t_c, s_c = pair_distance_sq(atom_pos, q_pos)
    wn = q_weights[:, None] * q_normals
    num = (s_c * wn).sum(axis=1)[None, :] - t_c @ wn.T
    if r2.min() > 1e-24:
        term = num / (r2 * r2 * r2) if power == 6 else num / (r2 * r2)
    elif power == 4:
        with np.errstate(divide="ignore", invalid="ignore"):
            term = num / (r2 * r2)
        np.nan_to_num(term, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
    else:
        # Coincident atom/q-point pairs contribute undefined terms; drop
        # them (a measure-zero event the naive path drops identically).
        with np.errstate(divide="ignore", invalid="ignore"):
            term = num / (r2 * r2 * r2)
        np.nan_to_num(term, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
    if counters is not None:
        counters.exact_pairs += atom_pos.shape[0] * q_pos.shape[0]
    return term.sum(axis=1)
