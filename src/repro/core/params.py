"""Approximation parameters and GB-model identifiers."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import (DEFAULT_EPS_BORN, DEFAULT_EPS_EPOL, DEFAULT_LEAF_CAP,
                      DEFAULT_POINTS_PER_ATOM)
from ..constants import EPSILON_WATER


class GBModel(enum.Enum):
    """Generalized-Born model families referenced by the paper (Table II)."""

    STILL = "still"          # Still et al. 1990 -- what the octree codes use
    HCT = "hct"              # Hawkins-Cramer-Truhlar (Amber, Gromacs)
    OBC = "obc"              # Onufriev-Bashford-Case (NAMD)
    R6_SURFACE = "r6-surface"  # this paper's surface-based r^6 Born radii
    R6_VOLUME = "r6-volume"    # GBr6's volume-based r^6 Born radii


@dataclass(frozen=True)
class ApproximationParams:
    """Tunable parameters of the octree algorithms.

    The paper's headline experiments use ``eps_born = eps_epol = 0.9``
    (Section V.C); Fig. 10 sweeps ``eps_epol`` from 0.1 to 0.9 with
    ``eps_born`` pinned at 0.9.

    Attributes
    ----------
    eps_born:
        MAC parameter for the Born-radii traversal; larger is faster and
        less accurate.
    eps_epol:
        MAC parameter for the energy traversal.
    leaf_cap:
        Octree leaf capacity (points per leaf).
    points_per_atom:
        Surface sample density before burial filtering.
    epsilon_solvent:
        Solvent dielectric constant.
    approximate_math:
        Models the paper's "approximate math for computing square root and
        power functions": when True, timing models apply the paper's
        observed 1.42x speedup and the error models its 4-5% shift.  The
        actual NumPy numerics are unchanged (NumPy has no fast-approx
        mode); the flag only drives the cost/error accounting, and that
        substitution is documented in DESIGN.md.
    tree_sfc / tree_compress:
        The octree variant: which space-filling curve orders children at
        every split (``"morton"`` -- the default, bit-identical to the
        seed -- or ``"hilbert"``), and whether single-child chains are
        collapsed (:func:`repro.octree.compress.compress`).  The variant
        changes leaf/plan-row *order*, never the leaf contents or MAC
        decisions, so energies across variants agree to addition
        reordering; within one variant every execution substrate is
        bit-identical (docs/ALGORITHMS.md).
    """

    eps_born: float = DEFAULT_EPS_BORN
    eps_epol: float = DEFAULT_EPS_EPOL
    leaf_cap: int = DEFAULT_LEAF_CAP
    #: Quadrature-tree leaf capacity.  Surface points live on a 2-D
    #: manifold, so octree cells thin out quickly; a larger cap keeps the
    #: per-leaf work (the distributable unit) coarse enough to amortise
    #: traversal overhead while staying far finer than any rank count.
    quad_leaf_cap: int = 4 * DEFAULT_LEAF_CAP
    points_per_atom: int = DEFAULT_POINTS_PER_ATOM
    epsilon_solvent: float = EPSILON_WATER
    approximate_math: bool = False
    #: Born MAC variant: "practical" (kappa = 1+eps, matches the paper's
    #: measured speed and accuracy) or "theory" (kappa = (1+eps)^(1/6),
    #: the conservative Section II formula).  See repro.octree.mac.
    born_mac_variant: str = "practical"
    #: Space-filling curve ordering octree children ("morton"|"hilbert").
    tree_sfc: str = "morton"
    #: Collapse single-child octree chains (CompressedOctree).
    tree_compress: bool = False

    def __post_init__(self) -> None:
        if self.born_mac_variant not in ("practical", "theory"):
            raise ValueError("born_mac_variant must be 'practical' or 'theory'")
        if self.tree_sfc not in ("morton", "hilbert"):
            raise ValueError("tree_sfc must be 'morton' or 'hilbert'")
        if self.eps_born <= 0 or self.eps_epol <= 0:
            raise ValueError("approximation parameters must be positive")
        if self.leaf_cap < 1 or self.quad_leaf_cap < 1:
            raise ValueError("leaf_cap must be >= 1")
        if self.points_per_atom < 4:
            raise ValueError("points_per_atom must be >= 4")
        if self.epsilon_solvent <= 1.0:
            raise ValueError("solvent dielectric must exceed 1")

    @property
    def tree_variant(self) -> str:
        """The octree-variant fingerprint both trees are built with
        (matches :attr:`repro.octree.octree.Octree.variant`); recorded in
        plan metadata, plan-cache keys and serve content hashes."""
        return self.tree_sfc + ("+compressed" if self.tree_compress else "")

    #: Speedup factor the paper measured for approximate math (Section V.E).
    APPROX_MATH_SPEEDUP: float = 1.42
    #: Error shift the paper measured for approximate math (percent points).
    APPROX_MATH_ERROR_SHIFT: float = 4.5
