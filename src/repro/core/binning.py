"""Born-radius charge binning for the far-field energy rule (Fig. 3).

The energy far-field approximation cannot treat a whole node as one point
charge, because ``f_GB`` depends on the Born radii of the interacting
atoms.  The paper's fix: bin each node's charge by Born radius into
``M_eps = log_{1+eps}(R_max / R_min)`` geometric bins, and evaluate
``f_GB`` once per *bin pair* using the representative radius product
``R_min^2 (1+eps)^{i+j}``.  Within a bin, radii differ by at most a factor
``(1+eps)``, bounding the per-term error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Hard cap on the bin count; protects memory for extreme eps. The cap is
#: only reached for eps far below anything the paper sweeps (<0.01), where
#: the energy MAC multiplier (1 + 2/eps) is so strict that far-field terms
#: barely fire anyway.
MAX_BINS = 256


@dataclass(frozen=True)
class BornBinning:
    """A geometric binning of Born radii.

    Attributes
    ----------
    r_min / r_max:
        Extreme Born radii over all atoms.
    base:
        Geometric bin ratio (``1 + eps`` unless capped).
    nbins:
        Number of bins ``M_eps``.
    bin_index:
        ``(N,)`` bin of each atom (same order as the input radii).
    """

    r_min: float
    r_max: float
    base: float
    nbins: int
    bin_index: np.ndarray

    def pair_radius_sq(self) -> np.ndarray:
        """``(nbins, nbins)`` representative ``R_i * R_j`` products:
        ``r_min^2 * base^(i+j)`` (Fig. 3, step 2)."""
        i = np.arange(self.nbins)
        return (self.r_min ** 2) * self.base ** (i[:, None] + i[None, :])


def build_binning(born_radii: np.ndarray, eps: float) -> BornBinning:
    """Bin ``born_radii`` geometrically with ratio ``1 + eps``.

    Degenerate inputs (all radii equal) get a single bin.  If the implied
    bin count exceeds :data:`MAX_BINS` the base is widened to fit (slightly
    coarser than the paper asks for, at eps values the paper never uses).
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    radii = np.asarray(born_radii, dtype=np.float64)
    if radii.ndim != 1 or radii.size == 0:
        raise ValueError("born_radii must be a non-empty 1-D array")
    if np.any(radii <= 0):
        raise ValueError("born radii must be positive")
    r_min = float(radii.min())
    r_max = float(radii.max())
    if r_max <= r_min * (1.0 + 1e-12):
        return BornBinning(r_min, r_max, 1.0 + eps, 1,
                           np.zeros(radii.shape, dtype=np.int64))
    base = 1.0 + eps
    nbins = int(math.ceil(math.log(r_max / r_min) / math.log(base)))
    nbins = max(nbins, 1)
    if nbins > MAX_BINS:
        nbins = MAX_BINS
        base = (r_max / r_min) ** (1.0 / nbins)
    idx = np.floor(np.log(radii / r_min) / math.log(base)).astype(np.int64)
    idx = np.clip(idx, 0, nbins - 1)
    return BornBinning(r_min, r_max, base, nbins, idx)
