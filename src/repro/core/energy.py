"""Octree-based GB polarization energy: APPROX-EPOL (paper Fig. 3).

The unit of distributable work is one *leaf of the atoms octree* ``V``; for
each assigned leaf the same atoms octree is walked from the root, and

* far nodes ``U`` (energy MAC: ``r_UV > (r_U + r_V)(1 + 2/eps)``)
  contribute through the binned-charge rule
  ``sum_{i,j} q_U[i] q_V[j] / f_GB(r_UV, R_min^2 (1+eps)^(i+j))``;
* near leaves contribute exact ``f_GB`` tiles.

Every *ordered* atom pair ``(u, v)`` is covered exactly once (``v`` ranges
over the leaf partition, ``u`` over the whole tree), so the sum over all
leaves equals the unrestricted double sum of Eq. 2 -- including the
``u == v`` self-energy diagonal -- and the usual ``1/2`` lives in the
prefactor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis_static.verify.annotations import declares_effects
from ..constants import EPSILON_WATER, gb_prefactor
from ..octree.aggregate import node_histograms
from ..octree.mac import epol_mac_multiplier
from ..octree.traversal import classify_against_ball
from ..runtime.instrument import WorkCounters
from .binning import BornBinning, build_binning
from .born import AtomTreeData, _slice_concat
from .gbmodels import f_gb
from .integrals import pair_distance_sq


@dataclass
class EpolPartial:
    """One rank's additive share of the energy phase.

    ``pair_sum`` is the raw ordered double sum ``sum q_u q_v / f_uv`` over
    the rank's leaves; partial energies from different ranks combine by
    addition (the paper's Step 7 ``MPI_Allreduce``/master accumulation).
    """

    pair_sum: float
    counters: WorkCounters

    def add(self, other: "EpolPartial") -> "EpolPartial":
        self.pair_sum += other.pair_sum
        self.counters.add(other.counters)
        return self


@dataclass
class EnergyContext:
    """Everything APPROX-EPOL needs besides the leaf segment: the tree
    bundle, Born radii (sorted order), the binning and the per-node charge
    histograms ``q_U[k]``.

    Building this once and sharing it across ranks mirrors the paper's
    replicated-data design (every process holds the full octree).
    """

    atoms: AtomTreeData
    born_sorted: np.ndarray
    binning: BornBinning
    node_hist: np.ndarray          # (M, nbins)
    pair_radius_sq: np.ndarray     # (nbins, nbins)

    @classmethod
    def build(cls, atoms: AtomTreeData, born_sorted: np.ndarray,
              eps: float) -> "EnergyContext":
        if born_sorted.shape != (atoms.tree.npoints,):
            raise ValueError("born_sorted must have one entry per atom")
        binning = build_binning(born_sorted, eps)
        # node_histograms works in original point order; map sorted-order
        # payloads back through the permutation.
        bins_orig = np.empty(atoms.tree.npoints, dtype=np.int64)
        bins_orig[atoms.tree.perm] = binning.bin_index
        charges_orig = np.empty(atoms.tree.npoints)
        charges_orig[atoms.tree.perm] = atoms.sorted_charges
        hist = node_histograms(atoms.tree, bins_orig, charges_orig,
                               binning.nbins)
        return cls(atoms=atoms, born_sorted=born_sorted, binning=binning,
                   node_hist=hist, pair_radius_sq=binning.pair_radius_sq())


@declares_effects()
def approx_epol(ctx: EnergyContext, v_leaves: np.ndarray,
                eps: float, *, disable_far: bool = False,
                per_leaf: list[WorkCounters] | None = None) -> EpolPartial:
    """Run APPROX-EPOL for the given segment of atoms-tree leaves.

    Default entry point: builds an interaction plan for the segment and
    executes it batched (:mod:`repro.plan`) -- bit-identical to
    :func:`approx_epol_perleaf`, the reference loop the differential
    tests compare against.  Callers holding a cached whole-tree plan
    should slice it with :func:`repro.plan.execute_epol_plan` directly.
    """
    # Imported lazily: repro.plan imports this module for EnergyContext.
    from ..plan import build_epol_plan, execute_epol_plan
    plan = build_epol_plan(ctx.atoms, eps, disable_far=disable_far,
                           v_leaves=np.asarray(v_leaves, dtype=np.int64))
    return execute_epol_plan(plan, ctx, per_leaf=per_leaf)


def approx_epol_perleaf(ctx: EnergyContext, v_leaves: np.ndarray,
                        eps: float, *, disable_far: bool = False,
                        per_leaf: list[WorkCounters] | None = None
                        ) -> EpolPartial:
    """Reference per-leaf APPROX-EPOL (one walk + one tile batch per leaf).

    The plan executor reproduces this loop bit for bit; it stays as the
    differential baseline and as the readable transcription of Fig. 3.

    Returns the raw pair sum (no dielectric prefactor); see
    :func:`epol_from_pair_sum`.  ``disable_far`` forces the exact path for
    every node pair (the MAC would otherwise accept zero-radius pairs at
    any ``eps``, whose binned radii are approximate).  ``per_leaf``
    optionally collects one :class:`WorkCounters` per leaf for the
    work-stealing simulation.
    """
    tree = ctx.atoms.tree
    counters = WorkCounters()
    mult = np.inf if disable_far else epol_mac_multiplier(eps)
    pos = tree.sorted_points
    charges = ctx.atoms.sorted_charges
    born = ctx.born_sorted
    nbins = ctx.binning.nbins
    pair_r2 = ctx.pair_radius_sq              # (K, K)
    total = 0.0
    for leaf in np.asarray(v_leaves):
        leaf_counters = WorkCounters()
        center = tree.ball_center[leaf]
        radius = float(tree.ball_radius[leaf])
        vs, ve = tree.point_start[leaf], tree.point_end[leaf]
        cls = classify_against_ball(tree, center, radius, mult)
        leaf_counters.nodes_visited += cls.nodes_visited
        if cls.far_nodes.size:
            q_u = ctx.node_hist[cls.far_nodes]     # (F, K)
            q_v = ctx.node_hist[leaf]              # (K,)
            d2 = (cls.far_dist ** 2)[:, None, None]
            f = f_gb(d2, pair_r2[None, :, :])      # (F, K, K)
            total += float(np.einsum("fi,j,fij->", q_u, q_v, 1.0 / f))
            leaf_counters.far_evals += cls.far_nodes.size
            leaf_counters.hist_pairs += cls.far_nodes.size * nbins * nbins
        if cls.near_leaves.size:
            idx = _slice_concat(tree, cls.near_leaves)
            r2, _, _ = pair_distance_sq(pos[idx], pos[vs:ve])
            f = f_gb(r2, born[idx][:, None] * born[vs:ve][None, :])
            total += float(np.sum(charges[idx][:, None]
                                  * charges[vs:ve][None, :] / f))
            leaf_counters.exact_pairs += idx.size * (ve - vs)
        counters.add(leaf_counters)
        if per_leaf is not None:
            per_leaf.append(leaf_counters)
    return EpolPartial(pair_sum=total, counters=counters)


def epol_from_pair_sum(pair_sum: float, *,
                       epsilon_solvent: float = EPSILON_WATER) -> float:
    """Apply the GB prefactor (sign, 1/2, Coulomb constant, dielectrics)
    to a raw ordered pair sum."""
    return gb_prefactor(epsilon_solvent) * pair_sum


@declares_effects()
def epol_octree(ctx: EnergyContext, *, eps: float,
                epsilon_solvent: float = EPSILON_WATER,
                counters: WorkCounters | None = None) -> float:
    """Single-process convenience wrapper over the full leaf set."""
    partial = approx_epol(ctx, ctx.atoms.tree.leaves, eps)
    if counters is not None:
        counters.add(partial.counters)
    return epol_from_pair_sum(partial.pair_sum,
                              epsilon_solvent=epsilon_solvent)
