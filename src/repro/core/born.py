"""Octree-based r^6 Born radii: APPROX-INTEGRALS + PUSH-INTEGRALS-TO-ATOMS.

This is paper Fig. 2, in the work-divided form of Fig. 4: the unit of
distributable work is one *leaf of the quadrature-points octree*.  For each
assigned Q leaf the atoms octree is walked from the root; nodes accepted by
the Born MAC receive a single pseudo-point contribution into their ``s_A``
accumulator, and rejected leaves compute the exact (atom x q-point) tile.
``PUSH-INTEGRALS-TO-ATOMS`` then accumulates every atom's ancestor sums
top-down and converts to Born radii.

The decomposition is *exactly additive*: the union of far nodes and near
leaves produced by one walk covers every atom once, so summing the
``(s_node, s_atom)`` pairs produced by different ranks for different Q-leaf
segments reconstructs precisely the serial result -- the invariant behind
the paper's claim that node-based division has P-independent error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis_static.flow.contracts import array_contract
from ..molecule.molecule import Molecule
from ..octree.aggregate import pseudo_normals
from ..octree.build import build_octree
from ..octree.compress import compress as compress_octree
from ..octree.mac import born_mac_multiplier
from ..octree.octree import Octree
from ..octree.traversal import classify_against_ball
from ..runtime.instrument import WorkCounters
from ..surface.sas import SurfaceQuadrature
from .integrals import born_radius_from_integral, pairwise_r6_exact


@dataclass
class AtomTreeData:
    """An atoms octree plus per-point payloads in tree (sorted) order."""

    tree: Octree
    sorted_radii: np.ndarray
    sorted_charges: np.ndarray

    @classmethod
    def build(cls, molecule: Molecule, *, leaf_cap: int,
              sfc: str = "morton",
              compress: bool = False) -> "AtomTreeData":
        tree = build_octree(molecule.positions, leaf_cap=leaf_cap, sfc=sfc)
        if compress:
            tree = compress_octree(tree)
        return cls(tree=tree,
                   sorted_radii=molecule.radii[tree.perm],
                   sorted_charges=molecule.charges[tree.perm])

    def to_original_order(self, sorted_values: np.ndarray) -> np.ndarray:
        """Scatter per-sorted-position values back to original atom ids."""
        out = np.empty_like(sorted_values)
        out[self.tree.perm] = sorted_values
        return out


@dataclass
class QuadTreeData:
    """A quadrature-points octree plus payloads and per-node pseudo-normals."""

    tree: Octree
    sorted_points: np.ndarray
    sorted_normals: np.ndarray
    sorted_weights: np.ndarray
    #: Per-node ``ñ_Q = sum_q w_q n_q`` (paper Fig. 2 preamble).
    node_pseudo_normals: np.ndarray

    @classmethod
    def build(cls, surface: SurfaceQuadrature, *, leaf_cap: int,
              sfc: str = "morton",
              compress: bool = False) -> "QuadTreeData":
        tree = build_octree(surface.points, leaf_cap=leaf_cap, sfc=sfc)
        if compress:
            tree = compress_octree(tree)
        return cls(
            tree=tree,
            sorted_points=tree.sorted_points,
            sorted_normals=surface.normals[tree.perm],
            sorted_weights=surface.weights[tree.perm],
            node_pseudo_normals=pseudo_normals(tree, surface.normals,
                                               surface.weights),
        )


@dataclass
class BornPartial:
    """One rank's additive share of the Born-integral phase.

    ``s_node[v]`` holds far-field sums collected at atoms-tree node ``v``
    (to be pushed to all atoms below), ``s_atom[i]`` holds exact near-field
    sums for the atom at *sorted position* ``i``.  Partials from different
    ranks combine by elementwise addition -- that is the payload of the
    paper's ``MPI_Allreduce`` in Step 3 of Fig. 4.
    """

    s_node: np.ndarray
    s_atom: np.ndarray
    counters: WorkCounters

    def add(self, other: "BornPartial") -> "BornPartial":
        self.s_node += other.s_node
        self.s_atom += other.s_atom
        self.counters.add(other.counters)
        return self

    @staticmethod
    def zeros(atoms: AtomTreeData) -> "BornPartial":
        return BornPartial(np.zeros(atoms.tree.nnodes),
                           np.zeros(atoms.tree.npoints), WorkCounters())


def _slice_concat(tree: Octree, nodes: np.ndarray) -> np.ndarray:
    """Sorted-position indices of all points under the given nodes."""
    starts = tree.point_start[nodes]
    counts = tree.point_end[nodes] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep_starts = np.repeat(starts, counts)
    block_starts = np.repeat(np.cumsum(counts) - counts, counts)
    return rep_starts + (np.arange(total, dtype=np.int64) - block_starts)


def approx_integrals(atoms: AtomTreeData, quad: QuadTreeData,
                     q_leaves: np.ndarray, eps: float, *,
                     disable_far: bool = False,
                     mac_variant: str = "practical",
                     power: int = 6,
                     per_leaf: list[WorkCounters] | None = None) -> BornPartial:
    """Run APPROX-INTEGRALS for the given segment of Q leaves.

    Default entry point: builds an interaction plan for the segment and
    executes it batched (:mod:`repro.plan`) -- bit-identical to
    :func:`approx_integrals_perleaf`, which remains as the reference the
    differential tests compare against.  Callers holding a cached
    whole-tree plan should slice it with
    :func:`repro.plan.execute_born_plan` directly instead.
    """
    # Imported lazily: repro.plan imports this module for the tree bundles.
    from ..plan import build_born_plan, execute_born_plan
    plan = build_born_plan(atoms, quad, eps, disable_far=disable_far,
                           mac_variant=mac_variant, power=power,
                           q_leaves=np.asarray(q_leaves, dtype=np.int64))
    return execute_born_plan(plan, atoms, quad, per_leaf=per_leaf)


def approx_integrals_perleaf(atoms: AtomTreeData, quad: QuadTreeData,
                             q_leaves: np.ndarray, eps: float, *,
                             disable_far: bool = False,
                             mac_variant: str = "practical",
                             power: int = 6,
                             per_leaf: list[WorkCounters] | None = None
                             ) -> BornPartial:
    """Reference per-leaf APPROX-INTEGRALS (one walk + one tile per leaf).

    The plan executor reproduces this loop bit for bit; it stays as the
    differential baseline and as the readable transcription of Fig. 2.

    Parameters
    ----------
    atoms, quad:
        Built tree bundles (identical on every rank -- the paper replicates
        data and divides work).
    q_leaves:
        The quadrature-tree leaf ids assigned to this rank (node-based work
        division, first phase of Fig. 4).
    eps:
        Born approximation parameter (``eps -> 0`` disables far-field
        acceptance and the result becomes exact).
    disable_far:
        Reject every MAC test, forcing the exact leaf-leaf path everywhere.
        Note this is stronger than ``eps -> 0``: the MAC accepts
        zero-radius (single-point) node pairs at any ``eps``, which is
        exact for Born but matters for the energy phase's binning.
    per_leaf:
        Optional list; one :class:`WorkCounters` per processed leaf is
        appended, in leaf order.  These are the per-task costs the
        work-stealing simulation schedules.
    """
    partial = BornPartial.zeros(atoms)
    mult = np.inf if disable_far else born_mac_multiplier(eps, variant=mac_variant)
    a_tree = atoms.tree
    q_tree = quad.tree
    sorted_atom_pos = a_tree.sorted_points
    for leaf in np.asarray(q_leaves):
        leaf_counters = WorkCounters()
        center = q_tree.ball_center[leaf]
        radius = float(q_tree.ball_radius[leaf])
        ntilde = quad.node_pseudo_normals[leaf]
        cls = classify_against_ball(a_tree, center, radius, mult)
        leaf_counters.nodes_visited += cls.nodes_visited
        if cls.far_nodes.size:
            # Pseudo-point contribution: s_A += ñ_Q . (c_Q - c_A) / d^power.
            diff = center[None, :] - a_tree.ball_center[cls.far_nodes]
            d2 = cls.far_dist ** 2
            denom = d2 * d2 * d2 if power == 6 else d2 * d2
            partial.s_node[cls.far_nodes] += (diff @ ntilde) / denom
            leaf_counters.far_evals += cls.far_nodes.size
        if cls.near_leaves.size:
            qs, qe = q_tree.point_start[leaf], q_tree.point_end[leaf]
            qpos = quad.sorted_points[qs:qe]
            qnrm = quad.sorted_normals[qs:qe]
            qw = quad.sorted_weights[qs:qe]
            idx = _slice_concat(a_tree, cls.near_leaves)
            contrib = pairwise_r6_exact(sorted_atom_pos[idx], qpos, qnrm, qw,
                                        counters=leaf_counters, power=power)
            partial.s_atom[idx] += contrib
        partial.counters.add(leaf_counters)
        if per_leaf is not None:
            per_leaf.append(leaf_counters)
    return partial


@array_contract(returns="(npoints,) float64 C")
def push_integrals_to_atoms(atoms: AtomTreeData, partial: BornPartial, *,
                            max_radius: float,
                            power: int = 6,
                            atom_range: tuple[int, int] | None = None
                            ) -> np.ndarray:
    """PUSH-INTEGRALS-TO-ATOMS: ancestor accumulation + radius conversion.

    Every atom's total integral is its own exact sum plus the ``s`` fields
    of all its ancestors.  Ancestor sums are accumulated top-down level by
    level (each node adds its parent's accumulated value), then spread to
    the atoms through the leaf slices.

    Parameters
    ----------
    atoms:
        The atoms-tree bundle.
    partial:
        The *combined* (post-Allreduce) Born partial.
    max_radius:
        Upper clamp for degenerate (non-positive-integral) atoms.
    atom_range:
        Optional ``[start, end)`` of sorted atom positions this rank is
        responsible for (second-phase atom division of Fig. 4); the result
        is zero outside the range.

    Returns
    -------
    ``(N,)`` Born radii in *sorted* order (zeros outside ``atom_range``).
    """
    tree = atoms.tree
    acc = partial.s_node.copy()
    # Nodes are created in BFS order (parents precede children), so one
    # forward pass per level accumulates ancestors exactly once.
    for level_nodes in tree.nodes_by_level()[1:]:
        acc[level_nodes] += acc[tree.parent[level_nodes]]
    leaves = tree.leaves
    leaf_counts = tree.point_end[leaves] - tree.point_start[leaves]
    # Canonical (curve-ordered) leaves tile the sorted positions [0, N)
    # in order -- guaranteed by Octree.leaves and asserted by validate().
    per_position = np.repeat(acc[leaves], leaf_counts)
    total = partial.s_atom + per_position
    radii = born_radius_from_integral(total, atoms.sorted_radii, power=power,
                                      max_radius=max_radius)
    if atom_range is not None:
        s, e = atom_range
        out = np.zeros_like(radii)
        out[s:e] = radii[s:e]
        return out
    return radii


def born_radii_octree(molecule: Molecule, surface: SurfaceQuadrature, *,
                      eps: float, leaf_cap: int,
                      mac_variant: str = "practical",
                      counters: WorkCounters | None = None) -> np.ndarray:
    """Single-process convenience wrapper: build trees, run the full leaf
    set, push, and return Born radii in original atom order."""
    atoms = AtomTreeData.build(molecule, leaf_cap=leaf_cap)
    quad = QuadTreeData.build(surface, leaf_cap=leaf_cap)
    partial = approx_integrals(atoms, quad, quad.tree.leaves, eps,
                               mac_variant=mac_variant)
    sorted_radii = push_integrals_to_atoms(
        atoms, partial, max_radius=2.0 * molecule.bounding_radius)
    if counters is not None:
        counters.add(partial.counters)
    return atoms.to_original_order(sorted_radii)
