"""Counting-only traversals: exact work counts without kernel evaluation.

The octree algorithms' *work* (exact pairs, far-field evaluations, node
visits) is determined entirely by tree geometry and the MAC -- no physics
needed.  These functions run the same classification walks as the real
kernels and return the same :class:`WorkCounters` the cost models consume,
at a fraction of the cost.

This is what lets the Fig. 11 harness time the octree algorithms at the
paper's full 509,640-atom CMV scale: the energies are computed on the
tractable analogue, while the full-scale *timing* comes from genuinely
counted full-scale work (not a power-law extrapolation, which would miss
the far-field regime change that kicks in once the shell's diameter
exceeds the Born MAC's leaf-separation threshold).
"""

from __future__ import annotations

import numpy as np

from ..octree.mac import born_mac_multiplier, epol_mac_multiplier
from ..octree.octree import Octree
from ..octree.traversal import classify_against_ball
from ..runtime.instrument import WorkCounters


def _count_against(tree: Octree, target_tree: Octree, leaves: np.ndarray,
                   multiplier: float,
                   per_leaf: list[WorkCounters] | None = None,
                   hist_pairs_per_far: int = 0) -> WorkCounters:
    """Classify every ``leaves`` ball of ``target_tree`` against ``tree``
    and accumulate the work the real kernel would have done."""
    total = WorkCounters()
    point_counts = tree.point_end - tree.point_start
    for leaf in np.asarray(leaves):
        lc = WorkCounters()
        center = target_tree.ball_center[leaf]
        radius = float(target_tree.ball_radius[leaf])
        leaf_points = int(target_tree.point_end[leaf]
                          - target_tree.point_start[leaf])
        cls = classify_against_ball(tree, center, radius, multiplier)
        lc.nodes_visited += cls.nodes_visited
        lc.far_evals += int(cls.far_nodes.size)
        lc.hist_pairs += int(cls.far_nodes.size) * hist_pairs_per_far
        if cls.near_leaves.size:
            near_points = int(point_counts[cls.near_leaves].sum())
            lc.exact_pairs += near_points * leaf_points
        total.add(lc)
        if per_leaf is not None:
            per_leaf.append(lc)
    return total


def count_born_work(atoms_tree: Octree, quad_tree: Octree, eps: float, *,
                    mac_variant: str = "practical",
                    per_leaf: list[WorkCounters] | None = None
                    ) -> WorkCounters:
    """Work of APPROX-INTEGRALS over the full quadrature leaf set."""
    return _count_against(atoms_tree, quad_tree, quad_tree.leaves,
                          born_mac_multiplier(eps, variant=mac_variant),
                          per_leaf)


def count_epol_work(atoms_tree: Octree, eps: float, *, nbins: int = 4,
                    per_leaf: list[WorkCounters] | None = None
                    ) -> WorkCounters:
    """Work of APPROX-EPOL over the full atoms leaf set.

    ``nbins`` is the Born-radius histogram width ``M_eps`` (unknown
    without real radii; pass the analogue run's value).
    """
    return _count_against(atoms_tree, atoms_tree, atoms_tree.leaves,
                          epol_mac_multiplier(eps), per_leaf,
                          hist_pairs_per_far=nbins * nbins)


def shell_surface_points(natoms: int, outer_radius: float,
                         thickness: float, *, points_per_atom: int = 12,
                         exposed_fraction: float = 0.35,
                         seed: int = 0) -> np.ndarray:
    """Analytic stand-in for a capsid shell's quadrature *positions*.

    Counting only needs point geometry, not weights/normals.  A hollow
    shell's exposed surface is its outer and inner sphere; we scatter the
    same number of points the SAS sampler would keep
    (``natoms * points_per_atom * exposed_fraction``), split between the
    two spheres by area.
    """
    from ..surface.sphere import fibonacci_sphere
    if outer_radius <= thickness:
        raise ValueError("outer radius must exceed thickness")
    n_total = max(8, int(natoms * points_per_atom * exposed_fraction))
    inner_radius = outer_radius - thickness
    a_out = outer_radius ** 2
    a_in = inner_radius ** 2
    n_out = max(4, int(round(n_total * a_out / (a_out + a_in))))
    n_in = max(4, n_total - n_out)
    rng = np.random.default_rng(seed)
    jitter = 0.6  # Angstrom of radial fuzz, mimicking atomic granularity
    pts_out = fibonacci_sphere(n_out) * (
        outer_radius + rng.uniform(-jitter, jitter, n_out)[:, None])
    pts_in = fibonacci_sphere(n_in) * (
        inner_radius + rng.uniform(-jitter, jitter, n_in)[:, None])
    return np.vstack([pts_out, pts_in])
