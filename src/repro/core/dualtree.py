"""The prior-work dual-tree Born integral (Chowdhury & Bajaj [6]).

The paper's Section IV opens: "The major difference of our approach from
algorithms presented in [6] is that we only traverse one octree instead of
two."  This module implements the *original* scheme the paper departed
from -- a simultaneous recursion over the atoms octree and the
quadrature-points octree, approximating whole (A, Q) node *pairs* when the
MAC accepts them -- which is the algorithm behind the paper's shared-memory
``OCT_CILK`` lineage.

Relative to the per-leaf scheme of Fig. 2:

* far-field approximation can trigger at *internal* nodes of both trees
  (coarser pairs, fewer far evaluations, slightly larger error -- exactly
  the trade-off Section IV.A describes);
* the traversal is a genuinely recursive divide-and-conquer over pairs,
  the shape cilk++ nested parallelism was designed for;
* the unit of distributable work is a node *pair*, which is why the paper
  switched to per-leaf division for its MPI work distribution.

Both algorithms compute the same integral; tests pin down that with the
MAC disabled they agree with the naive reference to machine precision.
"""

from __future__ import annotations

import numpy as np

from ..octree.mac import born_mac_multiplier
from ..runtime.instrument import WorkCounters
from .born import AtomTreeData, BornPartial, QuadTreeData, _slice_concat
from .integrals import pairwise_r6_exact


def dual_tree_integrals(atoms: AtomTreeData, quad: QuadTreeData, eps: float,
                        *, disable_far: bool = False,
                        mac_variant: str = "practical") -> BornPartial:
    """APPROX-INTEGRALS in the dual-tree style of [6].

    Returns a :class:`~repro.core.born.BornPartial` interchangeable with
    the per-leaf scheme's output: feed it to
    :func:`~repro.core.born.push_integrals_to_atoms` unchanged.
    """
    a_tree = atoms.tree
    q_tree = quad.tree
    partial = BornPartial.zeros(atoms)
    mult = (np.inf if disable_far
            else born_mac_multiplier(eps, variant=mac_variant))
    counters = partial.counters
    a_pos = a_tree.sorted_points

    # Explicit pair stack (the cilk++ version spawns here).
    stack: list[tuple[int, int]] = [(0, 0)]
    while stack:
        a, q = stack.pop()
        counters.nodes_visited += 1
        d = float(np.linalg.norm(a_tree.ball_center[a]
                                 - q_tree.ball_center[q]))
        radius_sum = float(a_tree.ball_radius[a] + q_tree.ball_radius[q])
        if np.isfinite(mult) and d > mult * radius_sum:
            # Whole-pair pseudo-point approximation collected at node a.
            ntilde = quad.node_pseudo_normals[q]
            diff = q_tree.ball_center[q] - a_tree.ball_center[a]
            partial.s_node[a] += float(diff @ ntilde) / d ** 6
            counters.far_evals += 1
            continue
        a_leaf = a_tree.child_count[a] == 0
        q_leaf = q_tree.child_count[q] == 0
        if a_leaf and q_leaf:
            idx = _slice_concat(a_tree, np.array([a]))
            qs, qe = q_tree.point_start[q], q_tree.point_end[q]
            contrib = pairwise_r6_exact(
                a_pos[idx], quad.sorted_points[qs:qe],
                quad.sorted_normals[qs:qe], quad.sorted_weights[qs:qe],
                counters=counters)
            partial.s_atom[idx] += contrib
        elif a_leaf:
            for cq in q_tree.children(q):
                stack.append((a, int(cq)))
        elif q_leaf:
            for ca in a_tree.children(a):
                stack.append((int(ca), q))
        else:
            # Split the larger node -- the balanced dual-tree strategy.
            if a_tree.ball_radius[a] >= q_tree.ball_radius[q]:
                for ca in a_tree.children(a):
                    stack.append((int(ca), q))
            else:
                for cq in q_tree.children(q):
                    stack.append((a, int(cq)))
    return partial


def dual_tree_born_radii(atoms: AtomTreeData, quad: QuadTreeData, eps: float,
                         *, max_radius: float,
                         mac_variant: str = "practical",
                         counters: WorkCounters | None = None) -> np.ndarray:
    """Born radii via the dual-tree scheme, in sorted atom order."""
    from .born import push_integrals_to_atoms
    partial = dual_tree_integrals(atoms, quad, eps, mac_variant=mac_variant)
    if counters is not None:
        counters.add(partial.counters)
    return push_integrals_to_atoms(atoms, partial, max_radius=max_radius)
