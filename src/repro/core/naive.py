"""The naive exact reference: Eq. 4 Born radii + Eq. 2 GB energy.

This is the O(N*Q) + O(N^2) algorithm every approximation in the paper is
measured against ("% of difference with naive", Figs. 9-11).  It is
blocked NumPy, so it is exact but only *tractable* -- tens of thousands of
atoms in seconds, not the paper's half-million (which is exactly why the
paper needed the octree algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import EPSILON_WATER, gb_prefactor
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from ..surface.sas import SurfaceQuadrature
from .gbmodels import f_gb
from .integrals import (born_radius_from_integral, pair_distance_sq,
                        surface_integral)

#: Pair-block edge for the O(N^2) energy loop.
ENERGY_BLOCK = 512


@dataclass
class NaiveResult:
    """Output of the naive reference computation.

    Attributes
    ----------
    energy:
        Polarization energy, kcal/mol (negative).
    born_radii:
        ``(N,)`` exact-quadrature Born radii.
    counters:
        Work counters for the whole computation.
    """

    energy: float
    born_radii: np.ndarray
    counters: WorkCounters


def naive_born_radii(molecule: Molecule, surface: SurfaceQuadrature, *,
                     power: int = 6,
                     counters: WorkCounters | None = None) -> np.ndarray:
    """Exact-quadrature Born radii (Eq. 4 by default, Eq. 3 for power=4)."""
    integral = surface_integral(surface.points, surface.normals,
                                surface.weights, molecule.positions,
                                power=power, counters=counters)
    return born_radius_from_integral(integral, molecule.radii, power=power,
                                     max_radius=2.0 * molecule.bounding_radius)


def naive_epol(molecule: Molecule, born_radii: np.ndarray, *,
               epsilon_solvent: float = EPSILON_WATER,
               counters: WorkCounters | None = None) -> float:
    """Exact GB polarization energy: the full double sum of Eq. 2.

    Includes the diagonal ``i == j`` self-energy terms ``q_i^2 / R_i`` (at
    ``r=0``, ``f_GB = R_i``), as Eq. 2's unrestricted ``sum_{i,j}`` does.
    """
    pos = molecule.positions
    q = molecule.charges
    R = np.asarray(born_radii, dtype=np.float64)
    n = len(molecule)
    if R.shape != (n,):
        raise ValueError("born_radii must have one entry per atom")
    total = 0.0
    for s in range(0, n, ENERGY_BLOCK):
        e = min(s + ENERGY_BLOCK, n)
        r2, _, _ = pair_distance_sq(pos[s:e], pos)
        f = f_gb(r2, R[s:e, None] * R[None, :])
        total += float(np.sum(q[s:e, None] * q[None, :] / f))
        if counters is not None:
            counters.exact_pairs += (e - s) * n
    return gb_prefactor(epsilon_solvent) * total


def naive_reference(molecule: Molecule, surface: SurfaceQuadrature, *,
                    epsilon_solvent: float = EPSILON_WATER,
                    power: int = 6) -> NaiveResult:
    """Run the full naive pipeline and return energy + Born radii."""
    counters = WorkCounters()
    radii = naive_born_radii(molecule, surface, power=power, counters=counters)
    energy = naive_epol(molecule, radii, epsilon_solvent=epsilon_solvent,
                        counters=counters)
    return NaiveResult(energy=energy, born_radii=radii, counters=counters)
