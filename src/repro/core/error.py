"""Error metrics against the naive reference (the paper's "% of difference
with naive", Figs. 9-11)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def percent_error(approx: float, reference: float) -> float:
    """Signed percent difference ``100 * (approx - reference) / |reference|``.

    The paper reports signed values (e.g. -0.07% for OCT_MPI on CMV).
    """
    if reference == 0:
        raise ValueError("reference energy is zero; percent error undefined")
    return 100.0 * (approx - reference) / abs(reference)


def radii_relative_error(approx: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Per-atom relative Born-radius error ``|approx - ref| / ref``."""
    ref = np.asarray(reference, dtype=np.float64)
    if np.any(ref <= 0):
        raise ValueError("reference radii must be positive")
    return np.abs(np.asarray(approx, dtype=np.float64) - ref) / ref


@dataclass(frozen=True)
class ErrorSummary:
    """Mean +/- std of percent errors over a molecule suite (Fig. 10's
    ``avg +/- std`` series)."""

    mean: float
    std: float
    worst: float
    count: int

    @classmethod
    def from_samples(cls, errors: list[float] | np.ndarray) -> "ErrorSummary":
        arr = np.asarray(errors, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("no error samples")
        return cls(mean=float(arr.mean()), std=float(arr.std()),
                   worst=float(np.max(np.abs(arr))), count=int(arr.size))

    def __str__(self) -> str:
        return (f"{self.mean:+.3f}% +/- {self.std:.3f}% "
                f"(worst |e| = {self.worst:.3f}%, n = {self.count})")
