"""repro: octree-based hybrid-parallel GB polarization energy.

A full reproduction of Tithi & Chowdhury, *Polarization Energy on a Cluster
of Multicores* (SC 2012): the surface-based r^6 Generalized-Born algorithm,
its distributed / distributed-shared parallelisations (on simulated MPI and
work-stealing substrates), the five baseline packages it is compared
against, and a benchmark harness regenerating every figure and table of the
paper's evaluation.  See DESIGN.md for the system inventory.
"""

from .core import (ApproximationParams, EpolResult, GBModel,
                   PolarizationEnergyCalculator, compute_polarization_energy,
                   naive_reference, percent_error)
from .molecule import (Molecule, btv_analogue, cmv_analogue, from_arrays,
                       protein_blob, read_pdb, read_pqr, two_body_complex)
from .surface import SurfaceQuadrature, build_surface

__version__ = "1.0.0"

__all__ = [
    "ApproximationParams",
    "EpolResult",
    "GBModel",
    "Molecule",
    "PolarizationEnergyCalculator",
    "SurfaceQuadrature",
    "btv_analogue",
    "build_surface",
    "cmv_analogue",
    "compute_polarization_energy",
    "from_arrays",
    "naive_reference",
    "percent_error",
    "protein_blob",
    "read_pdb",
    "read_pqr",
    "two_body_complex",
]
