"""Shared geometric utilities: uniform-cell neighbour grids and rotations.

The cell grid is the workhorse behind both the surface burial test and the
baseline nonbonded-list construction: O(N) build, O(1) expected candidates
per query at fixed density, fully vectorised queries.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class CellGrid:
    """A uniform grid over 3-D points supporting radius queries.

    Points are binned into cubic cells of edge ``cell_size``.  A radius
    query for radius ``r <= cell_size`` needs only the 27 neighbouring
    cells; larger radii scan proportionally more cells.

    Parameters
    ----------
    points:
        ``(N, 3)`` array of point coordinates.
    cell_size:
        Cell edge length; pick the largest interaction radius you will
        query for best performance.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be (N, 3)")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self.origin = points.min(axis=0) if len(points) else np.zeros(3)
        idx3 = np.floor((points - self.origin) / self.cell_size).astype(np.int64)
        self.dims = idx3.max(axis=0) + 1 if len(points) else np.ones(3, np.int64)
        self._flat = (idx3[:, 0] * self.dims[1] + idx3[:, 1]) * self.dims[2] + idx3[:, 2]
        order = np.argsort(self._flat, kind="stable")
        self._sorted_points_idx = order
        self._sorted_flat = self._flat[order]
        # CSR-style offsets into the sorted point index array, one slot per
        # occupied cell, found by searchsorted on demand.

    def _cell_points(self, cx: int, cy: int, cz: int) -> np.ndarray:
        """Indices of points in cell (cx, cy, cz)."""
        if not (0 <= cx < self.dims[0] and 0 <= cy < self.dims[1]
                and 0 <= cz < self.dims[2]):
            return np.empty(0, dtype=np.int64)
        flat = (cx * self.dims[1] + cy) * self.dims[2] + cz
        lo = np.searchsorted(self._sorted_flat, flat, side="left")
        hi = np.searchsorted(self._sorted_flat, flat, side="right")
        return self._sorted_points_idx[lo:hi]

    def candidates(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Indices of points in all cells overlapping the query ball.

        This is a superset of the true in-radius set; callers filter by
        actual distance (kept separate so they can fold the distance test
        into their own vectorised kernel).
        """
        c = np.asarray(center, dtype=np.float64)
        span = int(math.ceil(radius / self.cell_size))
        base = np.floor((c - self.origin) / self.cell_size).astype(np.int64)
        chunks = []
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                for dz in range(-span, span + 1):
                    chunk = self._cell_points(base[0] + dx, base[1] + dy, base[2] + dz)
                    if len(chunk):
                        chunks.append(chunk)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def query_radius(self, center: Sequence[float], radius: float) -> np.ndarray:
        """Indices of points strictly within ``radius`` of ``center``."""
        cand = self.candidates(center, radius)
        if len(cand) == 0:
            return cand
        c = np.asarray(center, dtype=np.float64)
        d2 = np.sum((self.points[cand] - c) ** 2, axis=1)
        return cand[d2 < radius * radius]


def rotation_matrix(axis: Sequence[float], angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about ``axis`` by ``angle`` radians."""
    a = np.asarray(axis, dtype=np.float64)
    norm = np.linalg.norm(a)
    if norm == 0:
        raise ValueError("rotation axis must be nonzero")
    x, y, z = a / norm
    c, s = math.cos(angle), math.sin(angle)
    C = 1.0 - c
    return np.array([
        [c + x * x * C, x * y * C - z * s, x * z * C + y * s],
        [y * x * C + z * s, c + y * y * C, y * z * C - x * s],
        [z * x * C - y * s, z * y * C + x * s, c + z * z * C],
    ])


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random rotation matrix (via QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q
