"""The paper's Fig. 4 algorithm on the simulated substrates.

Three variants, as in Table II:

* ``OCT_CILK``      -- one process, ``p`` work-stealing threads (Section V.C
  runs p = 12 on one node);
* ``OCT_MPI``       -- ``P`` single-threaded ranks (12 per node);
* ``OCT_MPI+CILK``  -- hybrid: one rank per socket, 6 threads each.

Numerics modes
--------------
``numerics="full"`` executes every rank's real share of the NumPy kernels
inside the simulated engine and moves real payloads through the simulated
collectives -- the ground-truth mode the invariance tests run.

``numerics="cached"`` (default) exploits a property the tests prove: with
node-based work division, per-leaf work profiles and all numeric results
are independent of the partition.  The pipeline is executed once
(:meth:`~repro.core.driver.PolarizationEnergyCalculator.profile`), and
layout studies then schedule the cached per-leaf costs through the same
work-stealing and collective cost models with size-only payloads.  A
144-core sweep over a dozen layouts costs one real execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

import numpy as np

from ..core.born import BornPartial, push_integrals_to_atoms
from ..core.driver import PolarizationEnergyCalculator, RunProfile
from ..core.energy import EnergyContext, epol_from_pair_sum
from ..octree.partition import (segment_by_weight, segment_leaf_bounds,
                                segment_range)
from ..plan import execute_born_plan, execute_epol_plan
from ..runtime.instrument import WorkCounters
from .cilk.scheduler import simulate_work_stealing
from .cost import CostModel, MemoryModel
from .machine import (LONESTAR4_NETWORK, NetworkSpec, RankLayout,
                      layout_for_cores)
from .simmpi.engine import CommStats, RankContext, SimMPI

#: Phase identifiers used for seed derivation.
PHASE_BORN, PHASE_PUSH, PHASE_ENERGY = 1, 2, 3

#: Extra noise width of hybrid compute phases relative to single-thread
#: ranks: the randomized steal schedule and unpinned thread migration add
#: variance a static MPI rank does not have.  Calibrated (with the OS
#: jitter sigma of Fig. 6) so the hybrid's max-envelope is the widest while
#: its min-envelope crosses below pure MPI's only at high core counts --
#: the paper's Fig. 6 crossover behaviour.
HYBRID_JITTER_FACTOR = 1.15


@dataclass(frozen=True)
class ParallelRunConfig:
    """Knobs of a simulated parallel run.

    Attributes
    ----------
    cost_model / memory_model / network:
        The machine models (defaults mirror Lonestar4).
    seed:
        Seeds the work-stealing victim selection and the optional OS
        jitter; vary it across repetitions to generate Fig. 6's min/max
        envelopes.
    jitter_sigma:
        Lognormal sigma of multiplicative per-phase OS noise (0 = fully
        deterministic).
    approximate_math:
        Apply the paper's approximate-math timing factor (Section V.E).
    include_tree_build:
        Charge octree construction time (the paper excludes it as
        amortised pre-processing; Table/Fig timings follow the paper).
    numa_penalty:
        Compute inflation for an *unpinned* multi-socket cilk process
        (OCT_CILK's 12 threads span both sockets with no affinity manager,
        Section V.A).
    """

    cost_model: CostModel = field(default_factory=CostModel)
    memory_model: MemoryModel = field(default_factory=MemoryModel)
    network: NetworkSpec = LONESTAR4_NETWORK
    seed: int = 0
    jitter_sigma: float = 0.0
    approximate_math: bool = False
    include_tree_build: bool = False
    numa_penalty: float = 1.06


@dataclass
class ParallelRunResult:
    """Outcome of one simulated parallel run.

    ``sim_seconds`` is the simulated makespan; ``energy`` and
    ``born_radii`` are real computed values (identical to the serial
    algorithm for node-based division).
    """

    variant: str
    layout: RankLayout
    energy: float
    born_radii: np.ndarray
    sim_seconds: float
    phase_seconds: dict[str, float]
    counters: WorkCounters
    comm: CommStats | None
    data_bytes: int
    node_bytes: int
    steals: int
    oom: bool = False
    #: Measured wall-clock seconds when the run executed on the real
    #: process backend (``engine="real"``); NaN for simulated runs.
    wall_seconds: float = float("nan")

    @property
    def total_cores(self) -> int:
        return self.layout.total_cores


def _derive_seed(base: int, rank: int, phase: int) -> int:
    return (base * 1_000_003 + rank * 8191 + phase * 131) % (2 ** 31)


def _thread_phase_seconds(leaf_seconds: np.ndarray, nthreads: int,
                          cost: CostModel, *, cache_factor: float,
                          seed: int, hybrid: bool,
                          numa_factor: float = 1.0) -> tuple[float, int]:
    """Simulated wall time of one compute phase on one rank.

    Single-threaded ranks execute their leaves serially; multi-threaded
    ranks run the work-stealing schedule over the per-leaf costs with the
    cilk inflation factor, plus the cilk<->MPI interface overhead when the
    rank is part of a hybrid MPI run.
    """
    if nthreads <= 1:
        return float(leaf_seconds.sum()) * cache_factor, 0
    inflated = leaf_seconds * cost.cilk_inflation * numa_factor
    sched = simulate_work_stealing(inflated, nthreads, seed=seed)
    dt = sched.makespan * cache_factor
    if hybrid:
        dt += cost.hybrid_interface_overhead
    return dt, sched.steals


def _data_bytes(calc: PolarizationEnergyCalculator) -> int:
    """Bytes one process replica holds: molecule + surface + both trees."""
    surface = calc.prepare_surface()
    atoms = calc.atom_tree()
    quad = calc.quad_tree()
    return (calc.molecule.nbytes() + surface.nbytes()
            + atoms.tree.nbytes() + quad.tree.nbytes())


def _hot_bytes(calc: PolarizationEnergyCalculator, nranks: int) -> float:
    """Active working set of one rank during a compute phase: its data
    segment plus the tree-node arrays every traversal touches."""
    atoms = calc.atom_tree()
    quad = calc.quad_tree()
    node_bytes = (atoms.tree.nbytes() - atoms.tree.points.nbytes
                  + quad.tree.nbytes() - quad.tree.points.nbytes)
    return _data_bytes(calc) / nranks + node_bytes


@dataclass
class _Prepared:
    """Shared state assembled once per run."""

    cost: CostModel
    cache_factor: float
    build_seconds: float
    q_bounds: list[tuple[int, int]]
    v_bounds: list[tuple[int, int]]
    atom_ranges: list[tuple[int, int]]
    n_atoms: int
    n_nodes: int
    max_radius: float


def _prepare(calc: PolarizationEnergyCalculator, layout: RankLayout,
             config: ParallelRunConfig) -> _Prepared:
    cost = (config.cost_model.with_approx_math()
            if config.approximate_math else config.cost_model)
    atoms = calc.atom_tree()
    quad = calc.quad_tree()
    P = layout.nranks
    replicas_per_socket = max(1, layout.ranks_per_node // cost.machine.sockets)
    cache_factor = cost.cache_factor(_hot_bytes(calc, P) * replicas_per_socket)
    build_seconds = 0.0
    if config.include_tree_build:
        build = WorkCounters(
            tree_points=(atoms.tree.npoints * max(atoms.tree.depth, 1)
                         + quad.tree.npoints * max(quad.tree.depth, 1)))
        build_seconds = cost.compute_seconds(build)
    return _Prepared(
        cost=cost,
        cache_factor=cache_factor,
        build_seconds=build_seconds,
        q_bounds=segment_leaf_bounds(quad.tree, P, balance="points"),
        v_bounds=segment_leaf_bounds(atoms.tree, P, balance="points"),
        atom_ranges=segment_range(atoms.tree.npoints, P),
        n_atoms=atoms.tree.npoints,
        n_nodes=atoms.tree.nnodes,
        max_radius=2.0 * calc.molecule.bounding_radius,
    )


def run_parallel(calc: PolarizationEnergyCalculator, layout: RankLayout,
                 config: ParallelRunConfig | None = None, *,
                 numerics: str = "cached",
                 engine: str = "sim") -> ParallelRunResult:
    """Run OCT_MPI (``threads_per_rank == 1``) or OCT_MPI+CILK (> 1) on the
    simulated cluster, following Fig. 4 step by step.

    ``engine="real"`` executes the same rank program on
    :mod:`repro.parallel.procpool` -- ``layout.nranks`` actual OS processes
    on this machine -- and reports *measured* wall-clock seconds in both
    ``sim_seconds`` and ``wall_seconds``.  Threads-per-rank is not
    meaningful there (one process per rank), and modelled quantities
    (comm stats, steals, jitter) are absent.
    """
    if numerics not in ("cached", "full"):
        raise ValueError("numerics must be 'cached' or 'full'")
    if engine not in ("sim", "real"):
        raise ValueError("engine must be 'sim' or 'real'")
    config = config or ParallelRunConfig()
    if engine == "real":
        if layout.threads_per_rank != 1:
            raise ValueError("engine='real' runs one process per rank; use "
                             "threads_per_rank=1 layouts")
        res = calc.compute(backend="real", workers=layout.nranks)
        data_bytes = _data_bytes(calc)
        return ParallelRunResult(
            variant="OCT_PROC", layout=layout, energy=res.energy,
            born_radii=res.born_radii, sim_seconds=res.wall_seconds,
            phase_seconds=dict(res.phase_seconds), counters=res.counters,
            comm=None, data_bytes=data_bytes,
            node_bytes=config.memory_model.node_bytes(
                data_bytes, layout.ranks_per_node),
            steals=0, wall_seconds=res.wall_seconds)
    atoms = calc.atom_tree()
    quad = calc.quad_tree()
    params = calc.params
    p = layout.threads_per_rank
    P = layout.nranks
    hybrid = p > 1
    variant = "OCT_MPI+CILK" if hybrid else "OCT_MPI"

    data_bytes = _data_bytes(calc)
    node_bytes = config.memory_model.node_bytes(data_bytes,
                                                layout.ranks_per_node)
    if not config.memory_model.fits_on_node(data_bytes, layout.ranks_per_node):
        return ParallelRunResult(
            variant=variant, layout=layout, energy=float("nan"),
            born_radii=np.full(atoms.tree.npoints, np.nan),
            sim_seconds=float("inf"), phase_seconds={},
            counters=WorkCounters(), comm=None, data_bytes=data_bytes,
            node_bytes=node_bytes, steals=0, oom=True)

    prep = _prepare(calc, layout, config)
    cost = prep.cost
    profile: RunProfile | None = calc.profile() if numerics == "cached" else None
    plans = None
    if profile is not None:
        born_secs_all = np.array([cost.compute_seconds(c)
                                  for c in profile.born_per_leaf])
        energy_secs_all = np.array([cost.compute_seconds(c)
                                    for c in profile.energy_per_leaf])
        # With profiled costs in hand, "divide the work as evenly as
        # possible" (Fig. 4) means cost-even contiguous segments, not
        # merely point-count-even ones.
        prep.q_bounds = segment_by_weight(born_secs_all, P)
        prep.v_bounds = segment_by_weight(energy_secs_all, P)
    else:
        # Full numerics executes slices of the calculator's cached plans,
        # divided by exact per-row pair counts -- the same bounds the real
        # process backend cuts (rank_program), so sim and real agree.
        plans = calc.plans()
        prep.q_bounds = segment_by_weight(plans.born.row_pair_weights(), P)

    def program(ctx: RankContext) -> Generator[Any, Any, dict[str, Any]]:
        rank = ctx.rank
        rng = (np.random.default_rng([config.seed, rank])
               if config.jitter_sigma > 0 else None)

        def jitter(dt: float, *, factor: float = 1.0) -> float:
            """OS noise; hybrid compute phases draw with a wider sigma
            (steal-schedule + thread-migration variance on top of OS
            noise -- the paper's hybrid max-time envelope is always the
            widest, Fig. 6)."""
            if rng is None:
                return dt
            return dt * float(rng.lognormal(
                0.0, factor * config.jitter_sigma))

        steals = 0
        counters = WorkCounters()
        phase_t: dict[str, float] = {}
        if prep.build_seconds:
            ctx.advance(jitter(prep.build_seconds))
            phase_t["build"] = prep.build_seconds

        # -- Step 2: Born integrals over this rank's Q-leaf segment.
        qs, qe = prep.q_bounds[rank]
        if profile is None:
            per_leaf: list[WorkCounters] = []
            partial = execute_born_plan(plans.born, atoms, quad,
                                        row_range=(qs, qe),
                                        per_leaf=per_leaf)
            counters.add(partial.counters)
            leaf_secs = np.array([cost.compute_seconds(c) for c in per_leaf])
        else:
            partial = None
            for c in profile.born_per_leaf[qs:qe]:
                counters.add(c)
            leaf_secs = born_secs_all[qs:qe]
        dt, st = _thread_phase_seconds(
            leaf_secs, p, cost, cache_factor=prep.cache_factor,
            seed=_derive_seed(config.seed, rank, PHASE_BORN), hybrid=hybrid)
        steals += st
        dt = jitter(dt, factor=HYBRID_JITTER_FACTOR if hybrid else 1.0)
        phase_t["born_compute"] = dt
        ctx.advance(dt)

        # -- Step 3: Allreduce the (s_node, s_atom) partials.
        payload_bytes = 8 * (prep.n_nodes + prep.n_atoms)
        t0 = ctx.clock.now
        if partial is not None:
            combined_arr = yield ctx.allreduce(
                np.concatenate([partial.s_node, partial.s_atom]))
        else:
            combined_arr = yield ctx.allreduce(None, nbytes=payload_bytes)
        phase_t["born_comm"] = ctx.clock.now - t0

        # -- Step 4: push integrals for this rank's atom segment.
        push_work = WorkCounters(nodes_visited=prep.n_nodes // P + 1,
                                 exact_pairs=prep.n_atoms // P + 1)
        dt = jitter(cost.compute_seconds(push_work) / p)
        phase_t["push"] = dt
        ctx.advance(dt)
        lo, hi = prep.atom_ranges[rank]
        if partial is not None:
            combined = BornPartial(combined_arr[:prep.n_nodes],
                                   combined_arr[prep.n_nodes:], WorkCounters())
            radii_sorted = push_integrals_to_atoms(
                atoms, combined, max_radius=prep.max_radius,
                atom_range=(lo, hi))
            chunk = radii_sorted[lo:hi]
        else:
            chunk = None

        # -- Step 5: Allgather the Born-radius segments.
        t0 = ctx.clock.now
        chunk_bytes = 8 * max(hi - lo, 1)
        if partial is not None:
            chunks = yield ctx.allgather(chunk)
            born_sorted = np.concatenate(chunks)
        else:
            yield ctx.allgather(None, nbytes=chunk_bytes)
            born_sorted = None
        phase_t["radii_comm"] = ctx.clock.now - t0

        # -- Step 6: energy over this rank's atoms-leaf segment.
        if partial is not None:
            ectx = EnergyContext.build(atoms, born_sorted, params.eps_epol)
            # Same exact-count division rank_program cuts: a pure function
            # of the shared plan and the binning width, so every rank
            # (and the real backend) derives identical bounds.
            vs, ve = segment_by_weight(
                plans.epol.row_pair_weights(nbins=ectx.binning.nbins),
                P)[rank]
            per_leaf_e: list[WorkCounters] = []
            epartial = execute_epol_plan(plans.epol, ectx,
                                         row_range=(vs, ve),
                                         per_leaf=per_leaf_e)
            counters.add(epartial.counters)
            leaf_secs_e = np.array([cost.compute_seconds(c)
                                    for c in per_leaf_e])
            pair_sum = epartial.pair_sum
        else:
            vs, ve = prep.v_bounds[rank]
            for c in profile.energy_per_leaf[vs:ve]:
                counters.add(c)
            leaf_secs_e = energy_secs_all[vs:ve]
            pair_sum = None
        dt, st = _thread_phase_seconds(
            leaf_secs_e, p, cost, cache_factor=prep.cache_factor,
            seed=_derive_seed(config.seed, rank, PHASE_ENERGY), hybrid=hybrid)
        steals += st
        dt = jitter(dt, factor=HYBRID_JITTER_FACTOR if hybrid else 1.0)
        phase_t["energy_compute"] = dt
        ctx.advance(dt)

        # -- Step 7: master accumulates the partial energies.
        t0 = ctx.clock.now
        total_pair_sum = yield ctx.reduce(pair_sum, root=0, nbytes=8)
        phase_t["energy_comm"] = ctx.clock.now - t0

        return {
            "pair_sum": total_pair_sum,
            "born_sorted": born_sorted if rank == 0 else None,
            "steals": steals,
            "counters": counters,
            "phase_seconds": phase_t,
        }

    engine = SimMPI(layout=layout, network=config.network)
    run = engine.run(program)

    master = run.returns[0]
    if profile is None:
        energy = epol_from_pair_sum(master["pair_sum"],
                                    epsilon_solvent=params.epsilon_solvent)
        born_radii = atoms.to_original_order(master["born_sorted"])
    else:
        energy = profile.energy
        born_radii = atoms.to_original_order(profile.born_sorted)
    counters = WorkCounters.merged([r["counters"] for r in run.returns])
    # Phase breakdown reported for the critical (slowest-finishing) rank.
    slowest = int(np.argmax(run.finish_times))
    return ParallelRunResult(
        variant=variant, layout=layout, energy=energy, born_radii=born_radii,
        sim_seconds=run.makespan,
        phase_seconds=run.returns[slowest]["phase_seconds"],
        counters=counters, comm=run.stats, data_bytes=data_bytes,
        node_bytes=node_bytes,
        steals=sum(r["steals"] for r in run.returns))


def run_oct_cilk(calc: PolarizationEnergyCalculator, *, nthreads: int = 12,
                 config: ParallelRunConfig | None = None) -> ParallelRunResult:
    """OCT_CILK: one process, ``nthreads`` work-stealing threads, no MPI.

    The 12-thread configuration spans both sockets without affinity
    pinning, so compute pays the NUMA penalty (Section V.A).
    """
    config = config or ParallelRunConfig()
    cost = (config.cost_model.with_approx_math()
            if config.approximate_math else config.cost_model)
    params = calc.params
    atoms = calc.atom_tree()
    profile = calc.profile()
    n_atoms = atoms.tree.npoints
    layout = RankLayout(nodes=1, ranks_per_node=1, threads_per_rank=nthreads)
    data_bytes = _data_bytes(calc)
    spans_sockets = nthreads > cost.machine.cores_per_socket
    numa = config.numa_penalty if spans_sockets else 1.0
    cache_factor = cost.cache_factor(_hot_bytes(calc, 1))

    phase_t: dict[str, float] = {}
    steals = 0
    if config.include_tree_build:
        quad = calc.quad_tree()
        build = WorkCounters(
            tree_points=(atoms.tree.npoints * max(atoms.tree.depth, 1)
                         + quad.tree.npoints * max(quad.tree.depth, 1)))
        phase_t["build"] = cost.compute_seconds(build)

    leaf_secs = np.array([cost.compute_seconds(c)
                          for c in profile.born_per_leaf])
    dt, st = _thread_phase_seconds(
        leaf_secs, nthreads, cost, cache_factor=cache_factor,
        seed=_derive_seed(config.seed, 0, PHASE_BORN), hybrid=False,
        numa_factor=numa)
    phase_t["born_compute"] = dt
    steals += st

    push_work = WorkCounters(nodes_visited=atoms.tree.nnodes,
                             exact_pairs=n_atoms)
    phase_t["push"] = cost.compute_seconds(push_work) / nthreads

    leaf_secs_e = np.array([cost.compute_seconds(c)
                            for c in profile.energy_per_leaf])
    dt, st = _thread_phase_seconds(
        leaf_secs_e, nthreads, cost, cache_factor=cache_factor,
        seed=_derive_seed(config.seed, 0, PHASE_ENERGY), hybrid=False,
        numa_factor=numa)
    phase_t["energy_compute"] = dt
    steals += st

    if config.jitter_sigma > 0:
        rng = np.random.default_rng([config.seed, 0])
        phase_t = {k: v * float(rng.lognormal(0.0, config.jitter_sigma))
                   for k, v in phase_t.items()}

    counters = profile.born_counters.copy()
    counters.add(profile.energy_counters)
    return ParallelRunResult(
        variant="OCT_CILK", layout=layout, energy=profile.energy,
        born_radii=atoms.to_original_order(profile.born_sorted),
        # phase_t is built in fixed program order (insertion-ordered dict),
        # so this accumulation is deterministic.
        sim_seconds=sum(phase_t.values()),  # repro-lint: disable=REP001
        phase_seconds=phase_t,
        counters=counters, comm=None, data_bytes=data_bytes,
        node_bytes=config.memory_model.node_bytes(data_bytes, 1),
        steals=steals)


def simulate_layout_timing(born_leaf_seconds: np.ndarray,
                           energy_leaf_seconds: np.ndarray, *,
                           n_atoms: int, n_nodes: int, layout: RankLayout,
                           config: ParallelRunConfig | None = None,
                           cache_factor: float = 1.0) -> float:
    """Timing-only simulation of the Fig. 4 pipeline from per-leaf costs.

    Used where no :class:`PolarizationEnergyCalculator` exists -- e.g. the
    Fig. 11 harness times the paper's *full-size* CMV shell from
    counting-only work profiles (:mod:`repro.core.counting`), far beyond
    what the real kernels could execute in Python.

    Returns the simulated makespan (seconds).  Collective costs use
    size-only payloads; compute phases run through the same cost-balanced
    segmentation and work-stealing machinery as :func:`run_parallel`.
    """
    config = config or ParallelRunConfig()
    cost = (config.cost_model.with_approx_math()
            if config.approximate_math else config.cost_model)
    from .simmpi.collectives import collective_cost
    P = layout.nranks
    p = layout.threads_per_rank
    hybrid = p > 1
    q_bounds = segment_by_weight(born_leaf_seconds, P)
    v_bounds = segment_by_weight(energy_leaf_seconds, P)
    rank_times = []
    # Models each rank's *own* simulated span; not a cross-rank payload
    # reduction, so it does not belong in the collective modules.
    for rank in range(P):  # repro-lint: disable=REP002
        t = 0.0
        for bounds, secs, phase in ((q_bounds, born_leaf_seconds, PHASE_BORN),
                                    (v_bounds, energy_leaf_seconds,
                                     PHASE_ENERGY)):
            lo, hi = bounds[rank]
            dt, _ = _thread_phase_seconds(
                secs[lo:hi], p, cost, cache_factor=cache_factor,
                seed=_derive_seed(config.seed, rank, phase), hybrid=hybrid)
            t += dt
        push = WorkCounters(nodes_visited=n_nodes // P + 1,
                            exact_pairs=n_atoms // P + 1)
        t += cost.compute_seconds(push) / p
        rank_times.append(t)
    comm = (collective_cost("allreduce", config.network, layout,
                            8 * (n_nodes + n_atoms))
            + collective_cost("allgather", config.network, layout,
                              8 * (n_atoms // P + 1))
            + collective_cost("reduce", config.network, layout, 8))
    return max(rank_times) + comm


def run_variant(calc: PolarizationEnergyCalculator, variant: str, *,
                cores: int = 12, config: ParallelRunConfig | None = None,
                numerics: str = "cached") -> ParallelRunResult:
    """Dispatch by variant name on the paper's standard layouts."""
    if variant == "OCT_CILK":
        return run_oct_cilk(calc, nthreads=cores, config=config)
    if variant == "OCT_MPI":
        return run_parallel(calc, layout_for_cores(cores, hybrid=False),
                            config, numerics=numerics)
    if variant == "OCT_MPI+CILK":
        return run_parallel(calc, layout_for_cores(cores, hybrid=True),
                            config, numerics=numerics)
    raise ValueError(f"unknown variant {variant!r}")
