"""Work/span analysis helpers for the work-stealing simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scheduler import ScheduleResult
from .task import default_grain, range_tree_span


@dataclass(frozen=True)
class WorkSpan:
    """Work (T_1), span (T_inf) and parallelism of a task set."""

    work: float
    span: float

    @property
    def parallelism(self) -> float:
        """T_1 / T_inf: the maximum useful worker count."""
        return self.work / self.span if self.span > 0 else float("inf")

    def greedy_bound(self, nworkers: int) -> float:
        """The greedy-scheduler bound ``T_1/p + T_inf`` that randomized
        work stealing meets in expectation (Blumofe & Leiserson)."""
        return self.work / nworkers + self.span


def analyze(costs: np.ndarray, nworkers: int,
            grain: int | None = None) -> WorkSpan:
    """Work/span of the balanced range tree over ``costs``."""
    costs = np.asarray(costs, dtype=np.float64)
    if grain is None:
        grain = default_grain(max(len(costs), 1), nworkers)
    from .task import T_TASK  # local import avoids a cycle at module load
    work = float(costs.sum()) + len(costs) * T_TASK
    return WorkSpan(work=work, span=range_tree_span(costs, grain))


def within_steal_bound(result: ScheduleResult, ws: WorkSpan, *,
                       slack: float = 4.0) -> bool:
    """Whether a simulated schedule respects ``T_p <= T_1/p + slack*T_inf``
    (the randomized-work-stealing guarantee up to a constant)."""
    return result.makespan <= ws.work / result.workers + slack * ws.span
