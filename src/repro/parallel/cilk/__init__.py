"""Simulated cilk++ randomized work stealing."""

from .deque import WorkDeque
from .metrics import WorkSpan, analyze, within_steal_bound
from .scheduler import ScheduleResult, simulate_work_stealing
from .task import RangeTask, T_SPAWN, T_STEAL, T_TASK, default_grain, range_tree_span

__all__ = [
    "RangeTask",
    "ScheduleResult",
    "T_SPAWN",
    "T_STEAL",
    "T_TASK",
    "WorkDeque",
    "WorkSpan",
    "analyze",
    "default_grain",
    "range_tree_span",
    "simulate_work_stealing",
    "within_steal_bound",
]
