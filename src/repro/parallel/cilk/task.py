"""Task representation for the simulated scheduler.

The paper's kernels are ``cilk_for`` loops over octree leaves; their spawn
structure is the balanced binary range subdivision cilk++ generates.  A
*task* here is a contiguous range ``[lo, hi)`` of leaf indices; ranges at
or below the grain execute serially, larger ranges split in half with the
right half exposed for stealing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Modelled cost of one spawn (deque push + frame setup), seconds.
T_SPAWN = 8.0e-8
#: Modelled fixed overhead per executed leaf task, seconds.
T_TASK = 5.0e-8
#: Modelled cost of one successful steal (sync + cold cache), seconds.
T_STEAL = 1.5e-6


@dataclass(frozen=True)
class RangeTask:
    """A contiguous range of leaf indices ``[lo, hi)``."""

    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def split(self) -> tuple["RangeTask", "RangeTask"]:
        """Halve the range (left, right); only valid for size >= 2."""
        if self.size < 2:
            raise ValueError("cannot split a unit range")
        mid = (self.lo + self.hi) // 2
        return RangeTask(self.lo, mid), RangeTask(mid, self.hi)


def default_grain(ntasks: int, nworkers: int) -> int:
    """cilk_for's automatic grain heuristic: ~8 chunks per worker,
    clamped to [1, 512]."""
    if ntasks < 1 or nworkers < 1:
        raise ValueError("ntasks and nworkers must be positive")
    return max(1, min(512, ntasks // (8 * nworkers) or 1))


def range_tree_span(costs: np.ndarray, grain: int) -> float:
    """The critical-path length (span, T_inf) of the balanced range tree.

    Span = spawn overhead down the deepest path + the heaviest single
    chunk.  Used to check the simulated makespan against the
    Blumofe-Leiserson bound ``T_p <= T_1/p + O(T_inf)``.
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = len(costs)
    if n == 0:
        return 0.0
    depth = 0
    size = n
    while size > grain:
        size = (size + 1) // 2
        depth += 1
    # Heaviest chunk: max over contiguous grain-sized windows; bounded by
    # grain * max cost which is enough for the test bound.
    prefix = np.concatenate([[0.0], np.cumsum(costs)])
    heaviest = max(float(prefix[min(i + grain, n)] - prefix[i])
                   for i in range(0, n, grain))
    return depth * T_SPAWN + heaviest + T_TASK
