"""Discrete-event simulation of cilk++'s randomized work stealing.

``p`` workers execute a balanced binary range tree over per-leaf task
costs.  A worker descends a range leftward, pushing right halves onto its
deque (each push costs :data:`~repro.parallel.cilk.task.T_SPAWN`); it then
executes the grain-sized chunk it bottomed out on, pops its own deque
bottom, and when the deque is empty steals from the *top* of a uniformly
random victim's deque (cost :data:`~repro.parallel.cilk.task.T_STEAL`) --
exactly the protocol the paper describes in Section IV.A ("Dynamic load
balancing among threads").

The simulation is event-driven on worker-finish times, so steals observe
deque states at chunk granularity.  Identical seeds give identical
schedules; varying the seed across repetitions is how Fig. 6's min/max
running-time envelopes are generated.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ...runtime.trace import Trace
from .deque import WorkDeque
from .task import RangeTask, T_SPAWN, T_STEAL, T_TASK, default_grain

#: Initial retry interval for a worker that found every deque empty.
T_RETRY = 2.0e-7
#: Retry backoff cap.
T_RETRY_MAX = 1.0e-4


@dataclass
class ScheduleResult:
    """Outcome of one work-stealing simulation.

    Attributes
    ----------
    makespan:
        Simulated parallel time T_p (seconds).
    work:
        Serial work T_1 (sum of costs plus per-task overhead).
    steals:
        Number of successful steals.
    failed_steals:
        Steal attempts that found every deque empty.
    worker_busy:
        ``(p,)`` per-worker busy seconds (utilisation diagnostics).
    """

    makespan: float
    work: float
    steals: int
    failed_steals: int
    worker_busy: np.ndarray

    @property
    def workers(self) -> int:
        return len(self.worker_busy)

    @property
    def speedup(self) -> float:
        """T_1 / T_p."""
        return self.work / self.makespan if self.makespan > 0 else 1.0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across workers."""
        if self.makespan <= 0:
            return 1.0
        return float(self.worker_busy.mean() / self.makespan)


def simulate_work_stealing(costs: np.ndarray, nworkers: int, *,
                           seed: int = 0, grain: int | None = None,
                           trace: Trace | None = None) -> ScheduleResult:
    """Simulate ``nworkers`` work-stealing workers over per-leaf ``costs``.

    Parameters
    ----------
    costs:
        ``(n,)`` seconds of work per leaf task, in leaf order.
    nworkers:
        Threads inside the process (``p`` in the paper).
    seed:
        Victim-selection RNG seed (the only nondeterminism cilk++ has).
    grain:
        Serial chunk size; defaults to the cilk_for heuristic.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 1:
        raise ValueError("costs must be 1-D")
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    n = len(costs)
    if nworkers < 1:
        raise ValueError("nworkers must be >= 1")
    work = float(costs.sum()) + n * T_TASK
    if n == 0:
        return ScheduleResult(0.0, 0.0, 0, 0, np.zeros(nworkers))
    if grain is None:
        grain = default_grain(n, nworkers)
    prefix = np.concatenate([[0.0], np.cumsum(costs)])

    rng = np.random.default_rng(seed)
    deques: list[WorkDeque[RangeTask]] = [WorkDeque() for _ in range(nworkers)]
    busy = np.zeros(nworkers)
    remaining = n
    steals = 0
    failed = 0
    retry_interval = [T_RETRY] * nworkers

    # Worker 0 owns the root range at t=0; the rest start stealing.
    events: list[tuple[float, int, int, RangeTask | None]] = []
    seq = 0

    def push_event(t: float, w: int, task: RangeTask | None) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, w, task))
        seq += 1

    push_event(0.0, 0, RangeTask(0, n))
    for w in range(1, nworkers):
        push_event(0.0, w, None)

    makespan = 0.0
    while events:
        t, _, w, task = heapq.heappop(events)
        if task is None:
            # Worker needs work: own deque first, then a random victim.
            own = deques[w].pop_bottom()
            if own is not None:
                push_event(t, w, own)
                continue
            if remaining == 0:
                continue
            victims = [v for v in range(nworkers) if v != w and deques[v]]
            if victims:
                victim = victims[int(rng.integers(len(victims)))]
                stolen = deques[victim].steal_top()
                if stolen is not None:
                    steals += 1
                    retry_interval[w] = T_RETRY
                    if trace is not None:
                        trace.record(t, "steal", w,
                                     {"victim": victim, "task": stolen})
                    busy[w] += T_STEAL
                    push_event(t + T_STEAL, w, stolen)
                    continue
            failed += 1
            push_event(t + retry_interval[w], w, None)
            retry_interval[w] = min(retry_interval[w] * 2.0, T_RETRY_MAX)
            continue
        # Descend leftward, exposing right halves for thieves.
        now = t
        while task.size > grain:
            left, right = task.split()
            deques[w].push_bottom(right)
            busy[w] += T_SPAWN
            now += T_SPAWN
            task = left
        chunk_cost = float(prefix[task.hi] - prefix[task.lo]) \
            + task.size * T_TASK
        if trace is not None:
            trace.record(now, "task_start", w, task)
        busy[w] += chunk_cost
        now += chunk_cost
        remaining -= task.size
        makespan = max(makespan, now)
        push_event(now, w, None)

    return ScheduleResult(makespan=makespan, work=work, steals=steals,
                          failed_steals=failed, worker_busy=busy)
