"""Work-stealing deques (the cilk++ THE-protocol data structure, modelled).

Owners push and pop at the *bottom* (LIFO -- hot, cache-resident work);
thieves steal from the *top* (FIFO -- the oldest, largest outstanding
subcomputation).  Stealing the oldest entry is what the paper credits for
cilk++'s cache behaviour: the thief takes the work whose data the victim
touched longest ago.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class WorkDeque(Generic[T]):
    """A double-ended work queue."""

    def __init__(self) -> None:
        self._items: deque[T] = deque()

    def push_bottom(self, item: T) -> None:
        """Owner adds newly spawned work."""
        self._items.append(item)

    def pop_bottom(self) -> T | None:
        """Owner takes its most recent work; None when empty."""
        if self._items:
            return self._items.pop()
        return None

    def steal_top(self) -> T | None:
        """Thief takes the oldest work; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
