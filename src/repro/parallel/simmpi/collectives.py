"""Collective algorithms: value semantics and (t_s, t_w) cost formulas.

Costs follow the textbook models the paper cites (Grama et al., Table 4.1)
with a hierarchical refinement: rounds inside a node use the shared-memory
transport, rounds across nodes use the interconnect.  This is what makes
the simulated OCT_MPI (12 ranks/node) pay visibly more for its collectives
than OCT_MPI+CILK (2 ranks/node) at equal core counts -- the effect behind
the crossover in the paper's Fig. 6.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from ..machine import NetworkSpec, RankLayout


def _log2ceil(n: int) -> int:
    return int(math.ceil(math.log2(n))) if n > 1 else 0


def reduce_values(values: Sequence[Any], op: str) -> Any:
    """Apply a reduction across per-rank payloads (NumPy-aware)."""
    if not values:
        raise ValueError("no values to reduce")
    first = values[0]
    if first is None:
        # Size-only collectives (cached-numerics mode) carry no payload.
        return None
    if isinstance(first, np.ndarray):
        stack = np.stack([np.asarray(v) for v in values])
        if op == "sum":
            return stack.sum(axis=0)
        if op == "min":
            return stack.min(axis=0)
        if op == "max":
            return stack.max(axis=0)
    else:
        if op == "sum":
            return sum(values)
        if op == "min":
            return min(values)
        if op == "max":
            return max(values)
    raise ValueError(f"unknown reduction op {op!r}")


def _rounds_cost(net: NetworkSpec, layout: RankLayout, nbytes: int) -> float:
    """Cost of a log-round exchange (recursive doubling): intra-node rounds
    at shared-memory cost plus inter-node rounds at interconnect cost."""
    intra_rounds = _log2ceil(layout.ranks_per_node)
    inter_rounds = _log2ceil(layout.nodes)
    return (intra_rounds * (net.ts_intra + net.tw_intra * nbytes)
            + inter_rounds * (net.ts_inter + net.tw_inter * nbytes))


def collective_cost(kind: str, net: NetworkSpec, layout: RankLayout,
                    nbytes: int) -> float:
    """Simulated wall time of one collective with ``nbytes`` per-rank
    payload on the given layout."""
    p = layout.nranks
    if p == 1:
        return 0.0
    base = net.dispatch_overhead * _log2ceil(p)
    if kind == "barrier":
        return base + _rounds_cost(net, layout, 0)
    if kind in ("bcast", "reduce"):
        return base + _rounds_cost(net, layout, nbytes)
    if kind == "allreduce":
        # Reduce-then-broadcast (two log-round sweeps).
        return base + 2.0 * _rounds_cost(net, layout, nbytes)
    if kind == "allgather":
        # Ring: p-1 steps, each moving one per-rank block; steps that cross
        # node boundaries pay interconnect cost.
        inter_steps = p - layout.ranks_per_node if layout.nodes > 1 else 0
        intra_steps = (p - 1) - inter_steps
        return (base + intra_steps * (net.ts_intra + net.tw_intra * nbytes)
                + inter_steps * (net.ts_inter + net.tw_inter * nbytes))
    if kind == "gather":
        # Tree gather; payload grows toward the root, approximate with the
        # bandwidth term of the full concatenation across inter rounds.
        return (base + _rounds_cost(net, layout, nbytes)
                + net.tw_inter * nbytes * max(layout.nodes - 1, 0))
    raise ValueError(f"unknown collective kind {kind!r}")


def collective_results(kind: str, values: list[Any], op: str,
                       root: int) -> list[Any]:
    """Per-rank results of a collective over the per-rank inputs."""
    p = len(values)
    if kind == "barrier":
        return [None] * p
    if kind == "allreduce":
        result = reduce_values(values, op)
        return [result] * p
    if kind == "allgather":
        return [list(values)] * p
    if kind == "bcast":
        return [values[root]] * p
    if kind == "gather":
        return [list(values) if r == root else None for r in range(p)]
    if kind == "reduce":
        result = reduce_values(values, op)
        return [result if r == root else None for r in range(p)]
    raise ValueError(f"unknown collective kind {kind!r}")
