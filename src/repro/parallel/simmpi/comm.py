"""Convenience facade over the SPMD engine."""

from __future__ import annotations

from typing import Any, Callable, Generator

from ...runtime.trace import Trace
from ..machine import LONESTAR4_NETWORK, NetworkSpec, RankLayout
from .engine import RankContext, RunResult, SimMPI


def run_spmd(program: Callable[..., Generator], *, nranks: int | None = None,
             layout: RankLayout | None = None,
             network: NetworkSpec = LONESTAR4_NETWORK,
             trace: Trace | None = None,
             args: tuple[Any, ...] = ()) -> RunResult:
    """Run ``program`` across ranks and return the :class:`RunResult`.

    Provide either ``nranks`` (all ranks on one node) or a full
    ``layout``.  This is the one-liner used by tests and examples::

        def hello(ctx):
            total = yield ctx.allreduce(ctx.rank)
            return total

        result = run_spmd(hello, nranks=4)
        assert result.returns == [6, 6, 6, 6]
    """
    if (nranks is None) == (layout is None):
        raise ValueError("provide exactly one of nranks or layout")
    if layout is None:
        layout = RankLayout(nodes=1, ranks_per_node=int(nranks))
    return SimMPI(layout=layout, network=network, trace=trace).run(
        program, *args)


__all__ = ["RankContext", "RunResult", "SimMPI", "run_spmd"]
