"""The discrete-event SPMD engine.

Rank programs are generator functions ``program(ctx, *args)``.  They do
real (NumPy) computation inline, account for modelled work via
``ctx.advance(seconds)``, and yield request objects for communication::

    def program(ctx):
        part = my_share_of_work(ctx.rank, ctx.size)
        ctx.advance(model.phase_seconds(part.counters))
        total = yield ctx.allreduce(part.array)
        return finish(total)

The engine interleaves ranks deterministically, matches collectives by
call order (all live ranks must issue the same collective -- a mismatch is
a :class:`DeadlockError`, like real MPI hanging), matches sends with
receives, and charges every operation simulated time from the network
model.  Determinism: identical programs and inputs give bit-identical
results and times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from ...analysis_static.checks import checks_enabled
from ...analysis_static.ordering import CollectiveLog, diff_collective_logs
from ...runtime.clock import SimClock
from ...runtime.trace import Trace
from ..machine import LONESTAR4_NETWORK, NetworkSpec, RankLayout
from .collectives import collective_cost, collective_results
from .requests import Collective, DeadlockError, Recv, Send


@dataclass
class CommStats:
    """Aggregate communication accounting for one run."""

    collective_calls: int = 0
    p2p_messages: int = 0
    bytes_moved: int = 0
    comm_seconds: float = 0.0


@dataclass
class RankContext:
    """Per-rank handle passed to programs.

    Only :meth:`advance` acts immediately; every other method builds a
    request that the program must ``yield``.
    """

    rank: int
    size: int
    clock: SimClock
    layout: RankLayout

    def advance(self, seconds: float) -> None:
        """Charge local (modelled) compute time."""
        self.clock.advance(seconds)

    # -- request builders ------------------------------------------------
    def send(self, dest: int, data: Any, *, tag: int = 0) -> Send:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if dest == self.rank:
            raise ValueError("cannot send to self")
        return Send(dest=dest, data=data, tag=tag)

    def recv(self, source: int, *, tag: int = 0) -> Recv:
        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range")
        return Recv(source=source, tag=tag)

    def allreduce(self, data: Any, *, op: str = "sum",
                  nbytes: int | None = None) -> Collective:
        return Collective("allreduce", data=data, op=op,
                          nbytes=-1 if nbytes is None else nbytes)

    def allgather(self, data: Any, *, nbytes: int | None = None) -> Collective:
        return Collective("allgather", data=data,
                          nbytes=-1 if nbytes is None else nbytes)

    def bcast(self, data: Any, *, root: int = 0,
              nbytes: int | None = None) -> Collective:
        return Collective("bcast", data=data, root=root,
                          nbytes=-1 if nbytes is None else nbytes)

    def gather(self, data: Any, *, root: int = 0,
               nbytes: int | None = None) -> Collective:
        return Collective("gather", data=data, root=root,
                          nbytes=-1 if nbytes is None else nbytes)

    def reduce(self, data: Any, *, op: str = "sum", root: int = 0,
               nbytes: int | None = None) -> Collective:
        return Collective("reduce", data=data, op=op, root=root,
                          nbytes=-1 if nbytes is None else nbytes)

    def barrier(self) -> Collective:
        return Collective("barrier")


@dataclass
class RunResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    returns:
        Per-rank program return values.
    finish_times:
        Per-rank simulated completion times (seconds).
    makespan:
        ``max(finish_times)`` -- the simulated parallel running time.
    stats:
        Communication accounting.
    """

    returns: list[Any]
    finish_times: list[float]
    stats: CommStats

    @property
    def makespan(self) -> float:
        return max(self.finish_times)


@dataclass
class _RankState:
    gen: Generator
    ctx: RankContext
    pending: Any = None          # request awaiting matching
    resume: Any = None           # value to feed back on next step
    has_resume: bool = True      # first step primes the generator
    finished: bool = False
    result: Any = None


@dataclass
class SimMPI:
    """The SPMD simulator.

    Attributes
    ----------
    layout:
        Rank/node layout (drives intra- vs inter-node costs).
    network:
        Point-to-point and collective timing parameters.
    trace:
        Optional event trace (collective phases, messages).
    """

    layout: RankLayout
    network: NetworkSpec = LONESTAR4_NETWORK
    trace: Trace | None = None
    _mailbox: dict[tuple[int, int, int], list[tuple[float, Any, int]]] = \
        field(default_factory=dict, repr=False)

    def run(self, program: Callable[..., Generator], *args: Any,
            **kwargs: Any) -> RunResult:
        """Execute ``program`` on every rank and return the results."""
        p = self.layout.nranks
        stats = CommStats()
        states: list[_RankState] = []
        for r in range(p):
            ctx = RankContext(rank=r, size=p, clock=SimClock(), layout=self.layout)
            gen = program(ctx, *args, **kwargs)
            if not isinstance(gen, Generator):
                raise TypeError("rank program must be a generator function "
                                "(use 'yield' for communication, or "
                                "'return x; yield' for pure-compute ranks)")
            states.append(_RankState(gen=gen, ctx=ctx))
        self._mailbox.clear()
        # REPRO_CHECKS=1: keep per-rank collective sequences so a
        # mismatch deadlock carries a structured ordering report.
        logs = ([CollectiveLog(r) for r in range(p)]
                if checks_enabled() else None)

        while True:
            progressed = self._step_unblocked(states)
            if all(s.finished for s in states):
                break
            matched = self._match(states, stats, logs)
            if not progressed and not matched:
                live = [i for i, s in enumerate(states) if not s.finished]
                kinds = {i: type(states[i].pending).__name__ for i in live}
                raise DeadlockError(
                    f"no rank can progress; pending requests: {kinds}")

        return RunResult(
            returns=[s.result for s in states],
            finish_times=[s.ctx.clock.now for s in states],
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _step_unblocked(self, states: list[_RankState]) -> bool:
        """Advance every rank that has a resume value; returns whether any
        rank made progress."""
        progressed = False
        for s in states:
            while not s.finished and s.pending is None and s.has_resume:
                progressed = True
                value, s.resume, s.has_resume = s.resume, None, False
                try:
                    request = s.gen.send(value)
                except StopIteration as stop:
                    s.finished = True
                    s.result = stop.value
                    break
                if not isinstance(request, (Send, Recv, Collective)):
                    raise TypeError(f"rank {s.ctx.rank} yielded "
                                    f"{type(request).__name__}; expected a "
                                    "Send/Recv/Collective request")
                s.pending = request
        return progressed

    def _match(self, states: list[_RankState], stats: CommStats,
               logs: list[CollectiveLog] | None = None) -> bool:
        matched = False
        live = [s for s in states if not s.finished]
        # -- collectives: every live rank must present the same signature.
        if live and all(isinstance(s.pending, Collective) for s in live):
            if logs is not None:
                for s in live:
                    req = s.pending
                    logs[s.ctx.rank].record(req.kind, op=req.op,
                                            root=req.root, data=req.data)
            sigs = {s.pending.signature() for s in live}
            if len(sigs) > 1:
                msg = f"mismatched collectives: {sorted(sigs)}"
                if logs is not None:
                    msg += "\n" + diff_collective_logs(
                        [logs[s.ctx.rank] for s in live]).format()
                raise DeadlockError(msg)
            if len(live) < len(states):
                finished = [s.ctx.rank for s in states if s.finished]
                raise DeadlockError(
                    f"ranks {finished} exited before a collective that "
                    f"ranks {[s.ctx.rank for s in live]} are waiting in")
            kind, op, root = live[0].pending.signature()
            values = [s.pending.data for s in states]
            nbytes = max(s.pending.nbytes for s in states)
            cost = collective_cost(kind, self.network, self.layout, nbytes)
            t_sync = max(s.ctx.clock.now for s in states)
            results = collective_results(kind, values, op, root)
            for s, res in zip(states, results):
                s.ctx.clock.advance_to(t_sync + cost)
                s.pending = None
                s.resume, s.has_resume = res, True
            stats.collective_calls += 1
            stats.bytes_moved += nbytes * len(states)
            stats.comm_seconds += cost
            if self.trace is not None:
                self.trace.record(t_sync + cost, "collective", -1,
                                  {"kind": kind, "nbytes": nbytes})
            return True
        # -- point-to-point: post sends, complete receives.
        for s in states:
            if isinstance(s.pending, Send):
                req = s.pending
                src = s.ctx.rank
                same = self.layout.same_node(src, req.dest)
                cost = self.network.p2p_cost(req.nbytes, same_node=same)
                arrive = s.ctx.clock.now + cost
                self._mailbox.setdefault((src, req.dest, req.tag), []).append(
                    (arrive, req.data, req.nbytes))
                # Eager send: local completion after injection overhead.
                s.ctx.clock.advance(
                    self.network.ts_intra if same else self.network.ts_inter)
                s.pending = None
                s.resume, s.has_resume = None, True
                stats.p2p_messages += 1
                stats.bytes_moved += req.nbytes
                matched = True
        for s in states:
            if isinstance(s.pending, Recv):
                req = s.pending
                queue = self._mailbox.get((req.source, s.ctx.rank, req.tag))
                if queue:
                    arrive, data, nbytes = queue.pop(0)
                    s.ctx.clock.advance_to(arrive)
                    s.pending = None
                    s.resume, s.has_resume = data, True
                    matched = True
        return matched
