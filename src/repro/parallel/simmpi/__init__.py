"""Simulated MPI: deterministic discrete-event SPMD engine."""

from .collectives import collective_cost, collective_results, reduce_values
from .comm import run_spmd
from .engine import CommStats, RankContext, RunResult, SimMPI
from .requests import Collective, DeadlockError, Recv, Send, payload_nbytes

__all__ = [
    "Collective",
    "CommStats",
    "DeadlockError",
    "RankContext",
    "Recv",
    "RunResult",
    "Send",
    "SimMPI",
    "collective_cost",
    "collective_results",
    "payload_nbytes",
    "reduce_values",
    "run_spmd",
]
