"""Request descriptors yielded by simulated rank programs.

A rank program is a Python generator: it performs real computation inline,
advances its simulated clock for modelled work, and *yields* one of these
request objects whenever it needs the communication substrate.  The engine
resumes the generator with the communication result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Collective kinds understood by the engine.
COLLECTIVE_KINDS = ("allreduce", "allgather", "bcast", "gather", "reduce",
                    "barrier")


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a payload.

    NumPy arrays are exact; scalars count as one word; containers sum
    their elements; everything else is charged a conservative 64 bytes.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (int, float, np.integer, np.floating, bool)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (str, bytes)):
        return len(obj)
    return 64


@dataclass
class Send:
    """Blocking eager send to ``dest``."""

    dest: int
    data: Any
    tag: int = 0
    nbytes: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            self.nbytes = payload_nbytes(self.data)


@dataclass
class Recv:
    """Blocking receive from ``source``."""

    source: int
    tag: int = 0


@dataclass
class Collective:
    """A collective operation; all ranks must yield a matching one.

    ``op`` applies to reductions (``"sum"``, ``"min"``, ``"max"``);
    ``root`` applies to rooted collectives (bcast/gather/reduce).
    """

    kind: str
    data: Any = None
    op: str = "sum"
    root: int = 0
    nbytes: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.kind not in COLLECTIVE_KINDS:
            raise ValueError(f"unknown collective kind {self.kind!r}")
        if self.op not in ("sum", "min", "max"):
            raise ValueError(f"unknown reduction op {self.op!r}")
        if self.nbytes < 0:
            self.nbytes = payload_nbytes(self.data)

    def signature(self) -> tuple[str, str, int]:
        """Ranks must agree on this to match a collective call."""
        return (self.kind, self.op, self.root)


class DeadlockError(RuntimeError):
    """No rank can make progress: mismatched collectives or unmatched
    point-to-point operations."""
