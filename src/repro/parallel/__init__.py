"""Parallel substrates: machine models, simulated MPI, simulated cilk++
work stealing, and the hybrid runners of the paper's Fig. 4."""

from .cost import CostModel, MemoryModel
from .datadist import (DataDistribution, HaloPlan, analyze_distribution,
                       born_partial_from_halo, plan_halos)
from .hybrid import (ParallelRunConfig, ParallelRunResult, run_oct_cilk,
                     run_parallel, run_variant, simulate_layout_timing)
from .machine import (LONESTAR4, LONESTAR4_NETWORK, MachineSpec, NetworkSpec,
                      RankLayout, layout_for_cores)

__all__ = [
    "CostModel",
    "DataDistribution",
    "HaloPlan",
    "analyze_distribution",
    "born_partial_from_halo",
    "plan_halos",
    "LONESTAR4",
    "LONESTAR4_NETWORK",
    "MachineSpec",
    "MemoryModel",
    "NetworkSpec",
    "ParallelRunConfig",
    "ParallelRunResult",
    "RankLayout",
    "layout_for_cores",
    "run_oct_cilk",
    "run_parallel",
    "run_variant",
    "simulate_layout_timing",
]
