"""Shared-memory array plumbing for the process-parallel backend.

The paper's design replicates *data* and divides *work*: every process
holds the full molecule and surface.  On one shared-memory node we can do
better than P pickled copies -- the parent publishes each array once into a
POSIX shared-memory block and every worker maps views into the same pages.
Nothing molecule-sized ever crosses a pipe.

:class:`SharedArrayBundle` packs a named dict of float64 arrays into one
block; its :attr:`layout` (name -> offset/shape) is the only thing pickled
to workers.  :class:`ScratchBuffer` is the collective-exchange area used by
:class:`~repro.parallel.procpool.backend.ProcessBackend`: one header slot
and one payload slot per rank.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ...analysis_static.model.annotations import protocol_event
from ...analysis_static.races import WriteIntentTracker, tracked_view
from ...analysis_static.verify.annotations import declares_effects


@declares_effects("SHM_CLOSE", "SHM_UNLINK")
def _reap_segment(shm: shared_memory.SharedMemory) -> None:
    """Best-effort unlink+close of an *owned* segment at finalization.

    Runs from a ``weakref.finalize`` when an owner is garbage-collected
    (or the interpreter exits) without having called ``unlink()`` -- e.g.
    a serving fleet torn down mid-run.  Every failure mode here means the
    segment is already gone or still has exported views; either way the
    goal is "no ``/dev/shm`` litter", not an error.
    """
    try:
        # repro-verify: allow=RV205(finalizer backstop: name must die even if close fails)
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass
    try:
        shm.close()
    except (BufferError, OSError):
        pass


def _keep_mapped(shm: shared_memory.SharedMemory) -> None:
    """Leave an attached segment mapped for the life of this process.

    A worker hands NumPy views of the buffer to long-lived objects
    (molecule arrays, reports), so ``close()`` -- including the one
    ``__del__`` runs at interpreter shutdown -- would raise
    ``BufferError: cannot close exported pointers exist``.  The OS reclaims
    the mapping at process death regardless, so the exit path simply
    disarms ``close`` instead of chasing every exported view.
    """
    shm.close = lambda: None  # type: ignore[method-assign]


@declares_effects("SHM_ATTACH")
def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    Until Python 3.13 grew ``track=False``, ``SharedMemory(name=...)``
    registers the segment with the attaching process's resource tracker
    (bpo-38119).  That is wrong for both persistent-worker layouts: a
    worker with its *own* tracker (spawn, or fork before any tracker
    start) "cleans up" -- warns about and tries to unlink -- segments the
    owning parent already unlinked, while unregister-after-attach on a
    *shared* tracker (fork) deletes the creator's registration out from
    under it.  Ownership here is explicit (the creator unlinks, with a
    finalizer backstop), so attaches must simply never register.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class _ArraySpec:
    offset: int
    shape: tuple[int, ...]
    #: NumPy dtype name; float64 for the numeric payloads, int64 for the
    #: interaction-plan index arrays.
    dtype: str = "float64"


class SharedArrayBundle:
    """A dict of arrays (float64/int64) living in one shared-memory block."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 layout: dict[str, _ArraySpec], *, owner: bool) -> None:
        self._shm = shm
        self.layout = layout
        self._owner = owner
        self._unlinked = False
        self._closed = False
        self._tracker: WriteIntentTracker | None = None
        # Owners reap their segment even when nobody calls unlink() --
        # a fleet dropped mid-run must not leave /dev/shm litter.
        self._finalizer = (weakref.finalize(self, _reap_segment, shm)
                           if owner else None)

    def enable_tracking(self, tracker: WriteIntentTracker) -> None:
        """Arm the race detector: subsequent :meth:`view` results record
        write intents against ``tracker`` (opt-in; plain views otherwise)."""
        self._tracker = tracker

    # -- lifecycle -----------------------------------------------------
    @classmethod
    @declares_effects("SHM_CREATE", "MUTATES_SHARED")
    @protocol_event("shm", "publish")
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayBundle":
        """Publish ``arrays`` (copied once) into a new shared block."""
        layout: dict[str, _ArraySpec] = {}
        offset = 0
        prepared: dict[str, np.ndarray] = {}
        for key, arr in arrays.items():
            # Integer arrays (plan indices) keep their exact dtype; every
            # other payload is normalised to float64 as before.
            dtype = np.int64 if np.issubdtype(np.asarray(arr).dtype,
                                              np.integer) else np.float64
            a = np.ascontiguousarray(arr, dtype=dtype)
            layout[key] = _ArraySpec(offset=offset, shape=a.shape,
                                     dtype=a.dtype.name)
            prepared[key] = a
            offset += a.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        bundle = cls(shm, layout, owner=True)
        for key, a in prepared.items():
            bundle.view(key)[...] = a
        return bundle

    @classmethod
    @declares_effects("SHM_ATTACH")
    def attach(cls, name: str, layout: dict[str, _ArraySpec], *,
               pin: bool = True) -> "SharedArrayBundle":
        """Map an existing block (worker side).

        ``pin=True`` (the default, used by the one-shot pipeline workers)
        disarms ``close`` so exported views stay valid for the process's
        life.  Long-lived serving workers that cache and *evict* attached
        molecules pass ``pin=False`` and close the mapping themselves once
        their views are dropped.
        """
        shm = _attach_untracked(name)
        if pin:
            _keep_mapped(shm)
        return cls(shm, layout, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def view(self, key: str) -> np.ndarray:
        """Zero-copy view of one array in the block (the spec's dtype)."""
        spec = self.layout[key]
        count = int(np.prod(spec.shape, dtype=np.int64)) if spec.shape else 1
        flat = np.frombuffer(self._shm.buf, dtype=np.dtype(spec.dtype),
                             count=count, offset=spec.offset)
        arr = flat.reshape(spec.shape)
        if self._tracker is not None:
            return tracked_view(arr, f"bundle:{key}", self._tracker)
        return arr

    @declares_effects("SHM_CLOSE")
    @protocol_event("shm", "close")
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # An exported view escaped; the mapping lives until process
            # death anyway, so disarm the __del__-time retry and let the
            # OS reclaim it quietly.
            _keep_mapped(self._shm)

    @declares_effects("SHM_UNLINK")
    @protocol_event("shm", "unlink")
    def unlink(self) -> None:
        if self._owner and not self._unlinked:
            self._unlinked = True
            if self._finalizer is not None:
                self._finalizer.detach()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                # A dying attacher's resource tracker can reap the segment
                # first; the owner's unlink is then already satisfied.
                pass


class ScratchBuffer:
    """Per-rank exchange slots backing the collectives.

    Layout: ``int64[size]`` header (per-rank payload lengths) followed by
    ``float64[size, slot_floats]`` payload slots.  Ranks only ever write
    their own slot; barriers order the writes against the reads.
    """

    HEADER_ITEM = 8  # one int64 per rank

    def __init__(self, shm: shared_memory.SharedMemory, size: int,
                 slot_floats: int, *, owner: bool) -> None:
        self._shm = shm
        self.size = size
        self.slot_floats = slot_floats
        self._owner = owner
        self._unlinked = False
        self._closed = False
        self._finalizer = (weakref.finalize(self, _reap_segment, shm)
                           if owner else None)
        header_bytes = self.HEADER_ITEM * size
        self.lengths = np.frombuffer(shm.buf, dtype=np.int64, count=size)
        self.slots = np.frombuffer(
            shm.buf, dtype=np.float64, count=size * slot_floats,
            offset=header_bytes).reshape(size, slot_floats)

    @classmethod
    @declares_effects("SHM_CREATE", "MUTATES_SHARED")
    def create(cls, size: int, slot_floats: int) -> "ScratchBuffer":
        slot_floats = max(int(slot_floats), 1)
        nbytes = cls.HEADER_ITEM * size + 8 * size * slot_floats
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        buf = cls(shm, size, slot_floats, owner=True)
        buf.lengths[:] = 0
        return buf

    @classmethod
    @declares_effects("SHM_ATTACH")
    def attach(cls, name: str, size: int, slot_floats: int) -> "ScratchBuffer":
        shm = _attach_untracked(name)
        _keep_mapped(shm)
        return cls(shm, size, max(int(slot_floats), 1), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def enable_tracking(self, tracker: WriteIntentTracker) -> None:
        """Arm the race detector: writes through :attr:`lengths` /
        :attr:`slots` record intents against ``tracker``."""
        self.lengths = tracked_view(self.lengths, "scratch:lengths", tracker)
        self.slots = tracked_view(self.slots, "scratch:slots", tracker)

    @declares_effects("SHM_CLOSE")
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Views into the buffer must be dropped before closing the mmap.
        self.lengths = None  # type: ignore[assignment]
        self.slots = None  # type: ignore[assignment]
        self._shm.close()

    @declares_effects("SHM_UNLINK")
    def unlink(self) -> None:
        if self._owner and not self._unlinked:
            self._unlinked = True
            if self._finalizer is not None:
                self._finalizer.detach()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass  # reaped by an attacher's resource tracker already
