"""The real process-parallel runner for the paper's Fig. 4 pipeline.

:func:`rank_program` is the backend-agnostic SPMD program: the same
Born-integral / push / energy sequence the simulated engine's generator
runs, expressed against :class:`~.backend.ExecutionBackend` so it executes
identically on :class:`~.backend.SerialBackend` (inline, one rank) and
:class:`~.backend.ProcessBackend` (real OS processes).

:func:`run_real` is the pool driver: it publishes the molecule and surface
arrays into shared memory once (see :mod:`.shm`), forks/spawns ``P``
workers that each rebuild the (deterministic) octrees from the shared
coordinates, runs the rank program with real collectives, and collects
wall-clock phase timings, :class:`~repro.runtime.instrument.WorkCounters`
and :class:`~repro.runtime.trace.Trace` events back to the parent.  Only
scalars, counters and trace summaries cross the result queue; Born radii
and the energy come back through a shared result block.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable

import numpy as np

from ...analysis_static.checks import DeterminismReport, checks_enabled
from ...analysis_static.flow.contracts import array_contract
from ...analysis_static.ordering import CollectiveLog, diff_collective_logs
from ...analysis_static.races import (WriteIntentTracker, find_races,
                                      intents_from_payload)
from ...analysis_static.verify.annotations import declares_effects
from ...core.born import (AtomTreeData, BornPartial, QuadTreeData,
                          push_integrals_to_atoms)
from ...core.energy import EnergyContext
from ...core.params import ApproximationParams
from ...molecule.molecule import Molecule
from ...octree.partition import segment_by_weight, segment_range
from ...plan import (InteractionPlan, PlanSet, build_born_plan,
                     build_epol_plan, execute_born_plan, execute_epol_plan)
from ...plan.schema import PLAN_ARRAY_FIELDS
from ...runtime.instrument import WorkCounters
from ...runtime.trace import Trace
from ...surface.sas import SurfaceQuadrature
from .backend import ExecutionBackend, ProcessBackend
from .shm import ScratchBuffer, SharedArrayBundle

#: Environment override for the multiprocessing start method ("fork",
#: "spawn", "forkserver"); unset uses the platform default.
START_METHOD_ENV = "REPRO_PROCPOOL_START"

#: Seconds a worker may sit in one collective before the pool is declared
#: wedged (a peer died or deadlocked) and every barrier breaks.
DEFAULT_BARRIER_TIMEOUT = 300.0


@dataclass
class RankReport:
    """What one rank hands back to the parent (small, picklable)."""

    rank: int
    phase_seconds: dict[str, float]
    span_seconds: float
    counters: WorkCounters
    events: list[tuple[str, dict[str, Any]]]
    #: Race-detector write intents (``REPRO_CHECKS=1`` only; flat tuples).
    intents: list[tuple] = field(default_factory=list)
    #: Collective-ordering log (``REPRO_CHECKS=1`` only; flat tuples).
    collectives: list[tuple] = field(default_factory=list)


@declares_effects("CLOCK", "COLLECTIVE(allreduce)", "COLLECTIVE(allgather)",
                  "COLLECTIVE(reduce)", "COLLECTIVE(barrier)")
def rank_program(backend: ExecutionBackend, atoms: AtomTreeData,
                 quad: QuadTreeData, params: ApproximationParams, *,
                 max_radius: float,
                 timer: Callable[[], float] = time.perf_counter,
                 plans: PlanSet | None = None) -> RankReport:
    """One rank's share of Fig. 4, with wall-clock phase hooks.

    Plan-driven: every rank executes its row slice of the *same*
    interaction plans (built locally when not supplied -- the process pool
    publishes the parent's plans through shared memory instead).  Work
    division uses the plans' exact per-row near/far pair counts, not the
    point-count proxy: contiguous plan-row segments with near-equal
    interaction totals for the two compute phases, equal atom ranges for
    the push.  The division is a pure function of the plan, so all ranks
    (and the simulated engine) cut identical bounds without communicating.
    The returned report carries the rank's pair-sum partial result via
    ``events`` metadata-free channels: ``born_sorted`` and the reduced
    pair sum are attached to the report as dynamic attributes by the
    caller's contract (see below) -- kept out of the dataclass so the
    cross-process pickle stays small.
    """
    P, rank = backend.size, backend.rank
    span_t0 = timer()
    phase_t: dict[str, float] = {}
    events: list[tuple[str, dict[str, Any]]] = []
    counters = WorkCounters()

    def mark(phase: str, dt: float, **extra: Any) -> None:
        phase_t[phase] = dt
        events.append(("phase", {"phase": phase, "seconds": dt, **extra}))

    # -- Step 1b: interaction plans (local build unless published).
    if plans is None:
        t0 = timer()
        plans = PlanSet(
            born=build_born_plan(atoms, quad, params.eps_born,
                                 mac_variant=params.born_mac_variant,
                                 timer=timer),
            epol=build_epol_plan(atoms, params.eps_epol, timer=timer))
        mark("plan_build", timer() - t0,
             born_rows=plans.born.nrows, epol_rows=plans.epol.nrows,
             far_pairs=int(plans.born.far_counts.sum()
                           + plans.epol.far_counts.sum()))

    # -- Step 2: Born integrals over this rank's plan-row segment.
    qs, qe = segment_by_weight(plans.born.row_pair_weights(), P)[rank]
    t0 = timer()
    partial = execute_born_plan(plans.born, atoms, quad, row_range=(qs, qe))
    counters.add(partial.counters)
    mark("born_compute", timer() - t0, leaves=int(qe - qs))

    # -- Step 3: allreduce the (s_node, s_atom) partials.
    t0 = timer()
    combined_arr = backend.allreduce(
        np.concatenate([partial.s_node, partial.s_atom]))
    mark("born_comm", timer() - t0)
    events.append(("collective", {"kind": "allreduce",
                                  "nbytes": 8 * combined_arr.size}))
    n_nodes = atoms.tree.nnodes
    combined = BornPartial(combined_arr[:n_nodes], combined_arr[n_nodes:],
                           WorkCounters())

    # -- Step 4: push integrals for this rank's atom segment.
    t0 = timer()
    lo, hi = segment_range(atoms.tree.npoints, P)[rank]
    radii_sorted = push_integrals_to_atoms(atoms, combined,
                                           max_radius=max_radius,
                                           atom_range=(lo, hi))
    chunk = radii_sorted[lo:hi]
    mark("push", timer() - t0, atoms=int(hi - lo))

    # -- Step 5: allgather the Born-radius segments.
    t0 = timer()
    born_sorted = np.concatenate(backend.allgather(chunk))
    mark("radii_comm", timer() - t0)
    events.append(("collective", {"kind": "allgather",
                                  "nbytes": 8 * max(hi - lo, 1)}))

    # -- Step 6: energy over this rank's plan-row segment.
    t0 = timer()
    ectx = EnergyContext.build(atoms, born_sorted, params.eps_epol)
    vs, ve = segment_by_weight(
        plans.epol.row_pair_weights(nbins=ectx.binning.nbins), P)[rank]
    epartial = execute_epol_plan(plans.epol, ectx, row_range=(vs, ve))
    counters.add(epartial.counters)
    mark("energy_compute", timer() - t0, leaves=int(ve - vs))

    # -- Step 7: root accumulates the partial pair sums.
    t0 = timer()
    pair_sum = backend.reduce(epartial.pair_sum, root=0)
    mark("energy_comm", timer() - t0)
    events.append(("collective", {"kind": "reduce", "nbytes": 8}))

    report = RankReport(rank=rank, phase_seconds=phase_t,
                        span_seconds=timer() - span_t0,
                        counters=counters, events=events)
    # Large/rank-local results travel out-of-band (shared result block in
    # the process pool, direct attributes inline).
    report.born_sorted = born_sorted  # type: ignore[attr-defined]
    report.pair_sum = pair_sum  # type: ignore[attr-defined]
    return report


@dataclass
class BackendRunResult:
    """Outcome of one *measured* (wall-clock) pipeline execution.

    Unlike :class:`~repro.parallel.hybrid.ParallelRunResult` the times here
    are real seconds observed on this machine, not modelled ones.
    """

    backend: str
    nworkers: int
    energy: float
    born_radii: np.ndarray
    wall_seconds: float
    setup_seconds: float
    phase_seconds: dict[str, float]
    rank_seconds: list[float]
    counters: WorkCounters
    trace: Trace = field(default_factory=Trace)
    #: Determinism-checker outcome (``REPRO_CHECKS=1`` runs only).
    checks: DeterminismReport | None = None

    @property
    def pipeline_seconds(self) -> float:
        """Slowest rank's program span (excludes pool start-up/teardown)."""
        return max(self.rank_seconds) if self.rank_seconds else 0.0


def _merge_reports(reports: list[RankReport], trace: Trace,
                   offset: float) -> tuple[WorkCounters, dict[str, float]]:
    """Fold per-rank reports into a trace + merged counters; the returned
    phase dict is the slowest rank's breakdown (as in the simulated
    runner's critical-rank convention)."""
    counters = WorkCounters.merged([r.counters for r in reports])
    for r in reports:
        t = offset
        for kind, detail in r.events:
            if kind == "phase":
                t += detail.get("seconds", 0.0)
            trace.record(t, kind, r.rank, detail)
    slowest = max(reports, key=lambda r: r.span_seconds)
    return counters, dict(slowest.phase_seconds)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(rank: int, size: int, bundle_name: str, layout: dict,
                 scratch_name: str, slot_floats: int, result_name: str,
                 params: ApproximationParams, mol_name: str,
                 max_radius: float, plan_meta: dict, checks: bool,
                 barrier, queue) -> None:
    """Entry point of one pool worker (module-level for spawn support)."""
    bundle = None
    scratch = None
    try:
        tracker = WriteIntentTracker(rank) if checks else None
        coll_log = CollectiveLog(rank) if checks else None
        bundle = SharedArrayBundle.attach(bundle_name, layout)
        if tracker is not None:
            bundle.enable_tracking(tracker)
        molecule = Molecule(bundle.view("positions"), bundle.view("radii"),
                            bundle.view("charges"), name=mol_name)
        surface = SurfaceQuadrature(bundle.view("q_points"),
                                    bundle.view("q_normals"),
                                    bundle.view("q_weights"))
        # Octree construction is deterministic in the input coordinates, so
        # every worker rebuilds the identical trees from the shared arrays
        # (the paper's replicated-data design) with zero pickling.
        atoms = AtomTreeData.build(molecule, leaf_cap=params.leaf_cap,
                                   sfc=params.tree_sfc,
                                   compress=params.tree_compress)
        quad = QuadTreeData.build(surface, leaf_cap=params.quad_leaf_cap,
                                  sfc=params.tree_sfc,
                                  compress=params.tree_compress)
        # The parent's plans were published once into the bundle; every
        # worker maps zero-copy views of the same rows (plan ids refer to
        # the deterministic tree rebuild above, so they are valid here).
        plans = PlanSet(
            born=InteractionPlan.from_arrays(
                plan_meta["born"],
                {f: bundle.view(f"plan_born_{f}")
                 for f in PLAN_ARRAY_FIELDS}),
            epol=InteractionPlan.from_arrays(
                plan_meta["epol"],
                {f: bundle.view(f"plan_epol_{f}")
                 for f in PLAN_ARRAY_FIELDS}))
        scratch = ScratchBuffer.attach(scratch_name, size, slot_floats)
        backend = ProcessBackend(rank, size, barrier, scratch,
                                 tracker=tracker, collective_log=coll_log)
        report = rank_program(backend, atoms, quad, params,
                              max_radius=max_radius, plans=plans)
        if tracker is not None:
            report.intents = tracker.payload()
        if coll_log is not None:
            report.collectives = coll_log.payload()
        if rank == 0:
            from multiprocessing import shared_memory

            from .shm import _keep_mapped
            res = shared_memory.SharedMemory(name=result_name)
            _keep_mapped(res)
            out = np.frombuffer(res.buf, dtype=np.float64)
            out[0] = report.pair_sum  # type: ignore[attr-defined]
            out[1:] = report.born_sorted  # type: ignore[attr-defined]
            del out
            res.close()
        # The molecule-sized results left via the shared block; drop them
        # so the queued report pickles to a few hundred bytes.
        del report.born_sorted  # type: ignore[attr-defined]
        del report.pair_sum  # type: ignore[attr-defined]
        queue.put(("ok", rank, report))
    except BaseException:
        try:
            barrier.abort()  # wake peers stuck in a collective
        except Exception:
            pass
        queue.put(("error", rank, traceback.format_exc()))
    # Shared blocks are unmapped at process exit; closing explicitly here
    # would raise while NumPy views are still exported.


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@array_contract(
    positions="(natoms, 3) float64 C",
    radii="(natoms,) float64 C",
    charges="(natoms,) float64 C",
    q_points="(nquad, 3) float64 C",
    q_normals="(nquad, 3) float64 C",
    q_weights="(nquad,) float64 C",
    plan_born="plan",
    plan_epol="plan",
)
def run_real(calc, nworkers: int, *, trace: Trace | None = None,
             start_method: str | None = None,
             timeout: float = DEFAULT_BARRIER_TIMEOUT) -> BackendRunResult:
    """Execute the pipeline on ``nworkers`` real OS processes.

    ``calc`` is a :class:`~repro.core.driver.PolarizationEnergyCalculator`;
    its prepared surface/trees are reused for sizing and for mapping
    results back to the original atom order.

    The returned :attr:`~BackendRunResult.wall_seconds` spans worker
    start-up through join -- the honest end-to-end cost a user of this
    backend pays; :attr:`~BackendRunResult.pipeline_seconds` is the slowest
    rank's compute span for overhead-free scaling analysis.
    """
    import multiprocessing as mp

    if nworkers < 1:
        raise ValueError("nworkers must be >= 1")
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    ctx = mp.get_context(method)
    trace = trace if trace is not None else Trace()
    checks = checks_enabled()

    setup_t0 = time.perf_counter()
    surface = calc.prepare_surface()
    atoms = calc.atom_tree()
    molecule = calc.molecule
    # Exact upper bound on any collective payload: the Born allreduce of
    # (s_node, s_atom).  The parent's tree is structurally identical to the
    # workers' rebuilds, so this sizing is exact, not an estimate.
    slot_floats = atoms.tree.nnodes + atoms.tree.npoints
    max_radius = 2.0 * molecule.bounding_radius

    # Build (or reuse) the interaction plans once in the parent and
    # publish their flat arrays alongside the molecule: workers execute
    # slices of the same plan instead of re-planning P times.
    plans = calc.plans()
    shared_arrays = {
        "positions": molecule.positions,
        "radii": molecule.radii,
        "charges": molecule.charges,
        "q_points": surface.points,
        "q_normals": surface.normals,
        "q_weights": surface.weights,
    }
    for prefix, plan in (("plan_born", plans.born), ("plan_epol", plans.epol)):
        for fname, arr in plan.as_arrays().items():
            shared_arrays[f"{prefix}_{fname}"] = arr
    plan_meta = {"born": plans.born.meta(), "epol": plans.epol.meta()}
    bundle = SharedArrayBundle.create(shared_arrays)
    scratch = ScratchBuffer.create(nworkers, slot_floats)
    from multiprocessing import shared_memory
    result_blk = shared_memory.SharedMemory(
        create=True, size=8 * (1 + atoms.tree.npoints))
    barrier = ctx.Barrier(nworkers, timeout=timeout)
    queue = ctx.Queue()
    setup_seconds = time.perf_counter() - setup_t0

    procs = [ctx.Process(
        target=_worker_main,
        args=(r, nworkers, bundle.name, bundle.layout, scratch.name,
              slot_floats, result_blk.name, calc.params, molecule.name,
              max_radius, plan_meta, checks, barrier, queue),
        daemon=True) for r in range(nworkers)]
    reports: list[RankReport] = []
    try:
        wall_t0 = time.perf_counter()
        for p in procs:
            p.start()
        deadline = time.monotonic() + timeout
        pending = nworkers
        while pending:
            try:
                kind, rank, payload = queue.get(timeout=0.25)
            except Empty:
                dead = [p for p in procs if p.exitcode not in (None, 0)]
                if dead:
                    raise RuntimeError(
                        "procpool worker(s) died without reporting, exit "
                        f"codes {[p.exitcode for p in dead]}")
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"procpool stalled for {timeout:.0f}s waiting on "
                        f"{pending} worker report(s)")
                continue
            if kind == "error":
                raise RuntimeError(f"procpool worker {rank} failed:\n{payload}")
            reports.append(payload)
            pending -= 1
        for p in procs:
            p.join(timeout=timeout)
        wall_seconds = time.perf_counter() - wall_t0

        out = np.frombuffer(result_blk.buf, dtype=np.float64)
        pair_sum = float(out[0])
        born_sorted = out[1:].copy()
        del out
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)
        bundle.close()
        bundle.unlink()
        scratch.close()
        scratch.unlink()
        result_blk.close()
        result_blk.unlink()

    from ...core.energy import epol_from_pair_sum
    energy = epol_from_pair_sum(pair_sum,
                                epsilon_solvent=calc.params.epsilon_solvent)
    reports.sort(key=lambda r: r.rank)
    checks_report = None
    if checks:
        intents = [i for r in reports
                   for i in intents_from_payload(r.intents)]
        logs = [CollectiveLog.from_payload(r.rank, r.collectives)
                for r in reports]
        checks_report = DeterminismReport(
            nranks=nworkers, races=find_races(intents),
            ordering=diff_collective_logs(logs),
            intents_recorded=len(intents))
        # A checked run must fail loudly, not return tainted numbers.
        checks_report.raise_if_failed()
    counters, phase_seconds = _merge_reports(reports, trace, 0.0)
    trace.record(0.0, "plan", -1,
                 {"born_rows": plans.born.nrows,
                  "epol_rows": plans.epol.nrows,
                  "build_seconds": (plans.born.build_seconds
                                    + plans.epol.build_seconds)})
    trace.record(wall_seconds, "pool", -1,
                 {"nworkers": nworkers, "start_method": method or "default",
                  "wall_seconds": wall_seconds})
    return BackendRunResult(
        backend="real", nworkers=nworkers, energy=energy,
        born_radii=atoms.to_original_order(born_sorted),
        wall_seconds=wall_seconds, setup_seconds=setup_seconds,
        phase_seconds=phase_seconds,
        rank_seconds=[r.span_seconds for r in reports],
        counters=counters, trace=trace, checks=checks_report)
