"""Real shared-memory process-parallel execution backend.

Where :mod:`repro.parallel.simmpi` *models* the paper's cluster, this
package *measures*: the same Fig. 4 rank program runs across actual OS
processes with the molecule published once in POSIX shared memory and
collectives built from process-safe primitives.  See
``docs/ALGORITHMS.md`` ("Simulated vs. real execution") for when each
substrate is authoritative.
"""

from .backend import ExecutionBackend, ProcessBackend, SerialBackend
from .pool import PersistentWorkerPool, PoolError
from .runner import (BackendRunResult, RankReport, rank_program, run_real)
from .shm import ScratchBuffer, SharedArrayBundle

__all__ = [
    "BackendRunResult",
    "ExecutionBackend",
    "PersistentWorkerPool",
    "PoolError",
    "ProcessBackend",
    "RankReport",
    "ScratchBuffer",
    "SerialBackend",
    "SharedArrayBundle",
    "rank_program",
    "run_real",
]
