"""Execution backends: the collective interface rank programs run against.

:class:`ExecutionBackend` is the protocol shared by every substrate the
pipeline can execute on:

* :class:`SerialBackend` -- the degenerate single-rank backend; collectives
  are identities.  Running the rank program on it reproduces the serial
  driver bit for bit.
* :class:`ProcessBackend` -- real OS processes on one node; collectives go
  through a shared-memory scratch buffer ordered by a
  ``multiprocessing.Barrier``.
* the simulated engine (:mod:`repro.parallel.simmpi`) implements the same
  operations with modelled time; :mod:`repro.parallel.hybrid` bridges it.

Reduction-order contract
------------------------
Floating-point reduction is not associative, so *reduction order is part of
the backend contract*.  Every backend must combine per-rank payloads the
way :func:`repro.parallel.simmpi.collectives.reduce_values` does: arrays
via ``np.stack([...rank order...]).sum(axis=0)``, scalars via builtin
``sum`` in rank order.  That is what makes energies agree across substrates
to the last bit rather than merely to rounding noise, and what keeps a
backend deterministic run-to-run regardless of OS scheduling.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from ...analysis_static.ordering import CollectiveLog
from ...analysis_static.races import WriteIntentTracker
from ...analysis_static.verify.annotations import declares_effects
from .shm import ScratchBuffer


@runtime_checkable
class ExecutionBackend(Protocol):
    """What a rank program may ask of its substrate."""

    rank: int
    size: int

    @declares_effects("COLLECTIVE(allreduce)")
    def allreduce(self, arr: np.ndarray) -> np.ndarray:
        """Elementwise sum of every rank's array; all ranks get the result."""
        ...

    @declares_effects("COLLECTIVE(allgather)")
    def allgather(self, arr: np.ndarray) -> list[np.ndarray]:
        """Every rank's array, as a list in rank order, on all ranks."""
        ...

    @declares_effects("COLLECTIVE(reduce)")
    def reduce(self, value: float, *, root: int = 0) -> float | None:
        """Sum of every rank's scalar on ``root`` (None elsewhere)."""
        ...

    @declares_effects("COLLECTIVE(barrier)")
    def barrier(self) -> None:
        """Block until every rank arrives."""
        ...


class SerialBackend:
    """The one-rank backend: collectives over a single participant.

    The degenerate collectives are written exactly like the multi-rank
    ones (stack-and-sum over one slot, builtin ``sum`` over one value) so
    the single-worker real backend and the serial driver stay bit-identical
    by construction rather than by accident.
    """

    rank = 0
    size = 1

    def allreduce(self, arr: np.ndarray) -> np.ndarray:
        return np.stack([np.asarray(arr, dtype=np.float64)]).sum(axis=0)

    def allgather(self, arr: np.ndarray) -> list[np.ndarray]:
        return [np.asarray(arr, dtype=np.float64)]

    def reduce(self, value: float, *, root: int = 0) -> float | None:
        return sum([float(value)]) if root == 0 else None

    def barrier(self) -> None:
        pass


# repro-verify: allow=RV206(scratch is a pinned process-lifetime mapping; the pool unlinks it)
class ProcessBackend:
    """Collectives across real processes via shared memory + a barrier.

    Each collective is two barrier phases: every rank writes its payload
    into its own scratch slot and waits (*publish*), then every rank reads
    all slots, combines them in rank order, and waits again (*drain*) so
    the slots may be reused.  Reads and writes never race: the publish
    barrier orders writes before reads, the drain barrier orders reads
    before the next round's writes.

    The combine step runs redundantly on every rank (an ``allreduce`` does
    P small sums instead of log P rounds); for the payload sizes of this
    pipeline -- one float per tree node/atom -- latency is barrier-bound
    and the redundancy is free, while keeping the reduction order identical
    on every rank.
    """

    def __init__(self, rank: int, size: int, barrier: Any,
                 scratch: ScratchBuffer, *,
                 tracker: WriteIntentTracker | None = None,
                 collective_log: CollectiveLog | None = None) -> None:
        if scratch.size != size:
            raise ValueError("scratch buffer sized for a different pool")
        self.rank = rank
        self.size = size
        self._barrier = barrier
        self._scratch = scratch
        self._tracker = tracker
        self._log = collective_log
        if tracker is not None:
            scratch.enable_tracking(tracker)

    # -- internals -----------------------------------------------------
    def _wait(self) -> None:
        """One barrier arrival; a tracked rank's race-detector epoch
        advances here (writes on opposite sides of a barrier cannot
        race)."""
        self._barrier.wait()
        if self._tracker is not None:
            self._tracker.advance_epoch()

    def _record(self, kind: str, data: Any, *, op: str | None = None,
                root: int | None = None) -> None:
        if self._log is not None:
            self._log.record(kind, op=op, root=root, data=data)

    def _publish(self, arr: np.ndarray) -> None:
        a = np.ascontiguousarray(arr, dtype=np.float64).ravel()
        if a.size > self._scratch.slot_floats:
            raise ValueError(
                f"payload of {a.size} floats exceeds scratch slot "
                f"({self._scratch.slot_floats})")
        self._scratch.lengths[self.rank] = a.size
        self._scratch.slots[self.rank, :a.size] = a
        self._wait()

    def _drain(self) -> None:
        self._wait()

    # -- collectives ---------------------------------------------------
    @declares_effects("COLLECTIVE(allreduce)", "MUTATES_SHARED")
    def allreduce(self, arr: np.ndarray) -> np.ndarray:
        self._record("allreduce", arr, op="sum")
        self._publish(arr)
        n = int(self._scratch.lengths[0])
        out = np.stack([self._scratch.slots[r, :n]
                        for r in range(self.size)]).sum(axis=0)
        self._drain()
        return out.reshape(np.asarray(arr).shape)

    @declares_effects("COLLECTIVE(allgather)", "MUTATES_SHARED")
    def allgather(self, arr: np.ndarray) -> list[np.ndarray]:
        self._record("allgather", arr)
        self._publish(arr)
        sizes = [int(self._scratch.lengths[r]) for r in range(self.size)]
        out = [self._scratch.slots[r, :sizes[r]].copy()
               for r in range(self.size)]
        self._drain()
        return out

    @declares_effects("COLLECTIVE(reduce)", "MUTATES_SHARED")
    def reduce(self, value: float, *, root: int = 0) -> float | None:
        self._record("reduce", float(value), op="sum", root=root)
        self._publish(np.array([float(value)]))
        result = None
        if self.rank == root:
            result = sum(float(self._scratch.slots[r, 0])
                         for r in range(self.size))
        self._drain()
        return result

    @declares_effects("COLLECTIVE(barrier)")
    def barrier(self) -> None:
        self._record("barrier", None)
        self._wait()
