"""Execution backends: the collective interface rank programs run against.

:class:`ExecutionBackend` is the protocol shared by every substrate the
pipeline can execute on:

* :class:`SerialBackend` -- the degenerate single-rank backend; collectives
  are identities.  Running the rank program on it reproduces the serial
  driver bit for bit.
* :class:`ProcessBackend` -- real OS processes on one node; collectives go
  through a shared-memory scratch buffer ordered by a
  ``multiprocessing.Barrier``.
* the simulated engine (:mod:`repro.parallel.simmpi`) implements the same
  operations with modelled time; :mod:`repro.parallel.hybrid` bridges it.

Reduction-order contract
------------------------
Floating-point reduction is not associative, so *reduction order is part of
the backend contract*.  Every backend must combine per-rank payloads the
way :func:`repro.parallel.simmpi.collectives.reduce_values` does: arrays
via ``np.stack([...rank order...]).sum(axis=0)``, scalars via builtin
``sum`` in rank order.  That is what makes energies agree across substrates
to the last bit rather than merely to rounding noise, and what keeps a
backend deterministic run-to-run regardless of OS scheduling.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .shm import ScratchBuffer


@runtime_checkable
class ExecutionBackend(Protocol):
    """What a rank program may ask of its substrate."""

    rank: int
    size: int

    def allreduce(self, arr: np.ndarray) -> np.ndarray:
        """Elementwise sum of every rank's array; all ranks get the result."""
        ...

    def allgather(self, arr: np.ndarray) -> list[np.ndarray]:
        """Every rank's array, as a list in rank order, on all ranks."""
        ...

    def reduce(self, value: float, *, root: int = 0) -> float | None:
        """Sum of every rank's scalar on ``root`` (None elsewhere)."""
        ...

    def barrier(self) -> None:
        """Block until every rank arrives."""
        ...


class SerialBackend:
    """The one-rank backend: collectives over a single participant.

    The degenerate collectives are written exactly like the multi-rank
    ones (stack-and-sum over one slot, builtin ``sum`` over one value) so
    the single-worker real backend and the serial driver stay bit-identical
    by construction rather than by accident.
    """

    rank = 0
    size = 1

    def allreduce(self, arr: np.ndarray) -> np.ndarray:
        return np.stack([np.asarray(arr, dtype=np.float64)]).sum(axis=0)

    def allgather(self, arr: np.ndarray) -> list[np.ndarray]:
        return [np.asarray(arr, dtype=np.float64)]

    def reduce(self, value: float, *, root: int = 0) -> float | None:
        return sum([float(value)]) if root == 0 else None

    def barrier(self) -> None:
        pass


class ProcessBackend:
    """Collectives across real processes via shared memory + a barrier.

    Each collective is two barrier phases: every rank writes its payload
    into its own scratch slot and waits (*publish*), then every rank reads
    all slots, combines them in rank order, and waits again (*drain*) so
    the slots may be reused.  Reads and writes never race: the publish
    barrier orders writes before reads, the drain barrier orders reads
    before the next round's writes.

    The combine step runs redundantly on every rank (an ``allreduce`` does
    P small sums instead of log P rounds); for the payload sizes of this
    pipeline -- one float per tree node/atom -- latency is barrier-bound
    and the redundancy is free, while keeping the reduction order identical
    on every rank.
    """

    def __init__(self, rank: int, size: int, barrier,
                 scratch: ScratchBuffer) -> None:
        if scratch.size != size:
            raise ValueError("scratch buffer sized for a different pool")
        self.rank = rank
        self.size = size
        self._barrier = barrier
        self._scratch = scratch

    # -- internals -----------------------------------------------------
    def _publish(self, arr: np.ndarray) -> None:
        a = np.ascontiguousarray(arr, dtype=np.float64).ravel()
        if a.size > self._scratch.slot_floats:
            raise ValueError(
                f"payload of {a.size} floats exceeds scratch slot "
                f"({self._scratch.slot_floats})")
        self._scratch.lengths[self.rank] = a.size
        self._scratch.slots[self.rank, :a.size] = a
        self._barrier.wait()

    def _drain(self) -> None:
        self._barrier.wait()

    # -- collectives ---------------------------------------------------
    def allreduce(self, arr: np.ndarray) -> np.ndarray:
        self._publish(arr)
        n = int(self._scratch.lengths[0])
        out = np.stack([self._scratch.slots[r, :n]
                        for r in range(self.size)]).sum(axis=0)
        self._drain()
        return out.reshape(np.asarray(arr).shape)

    def allgather(self, arr: np.ndarray) -> list[np.ndarray]:
        self._publish(arr)
        sizes = [int(self._scratch.lengths[r]) for r in range(self.size)]
        out = [self._scratch.slots[r, :sizes[r]].copy()
               for r in range(self.size)]
        self._drain()
        return out

    def reduce(self, value: float, *, root: int = 0) -> float | None:
        self._publish(np.array([float(value)]))
        result = None
        if self.rank == root:
            result = sum(float(self._scratch.slots[r, 0])
                         for r in range(self.size))
        self._drain()
        return result

    def barrier(self) -> None:
        self._barrier.wait()
