"""A warm, persistent worker pool over real OS processes.

:func:`~repro.parallel.procpool.runner.run_real` forks a fresh pool for
every pipeline execution -- the right shape for one measured run, and the
wrong one for a serving workload where thousands of small requests must
amortise process start-up, tree builds and plan publication.
:class:`PersistentWorkerPool` keeps ``P`` workers alive across requests:
the parent pushes small picklable tasks down one queue, workers push
results back up another, and molecule-sized state travels exclusively
through :class:`~repro.parallel.procpool.shm.SharedArrayBundle` segments
the workers attach to and cache.

The pool is deliberately generic (it knows nothing about energies); the
serving fleet in :mod:`repro.serve.fleet` supplies the worker loop.  Like
the rest of this package it is the *only* sanctioned home for raw
``multiprocessing`` use (repro-lint REP004).

Lifecycle contract (ISSUE 4 fleet hygiene):

* :meth:`shutdown` is idempotent -- every path (explicit close, context
  manager exit, error unwinding) may call it, in any order, any number
  of times;
* a pool dropped without shutdown is reaped by a ``weakref.finalize``
  that terminates the workers, so a garbage-collected fleet mid-run does
  not strand processes (shared segments carry their own finalizers, see
  :mod:`.shm`).
"""

from __future__ import annotations

import time
import weakref
from queue import Empty
from typing import Any, Callable

from ...analysis_static.model.annotations import protocol_event
from .runner import START_METHOD_ENV

#: Seconds the parent waits in :meth:`PersistentWorkerPool.next_result`
#: before declaring the pool wedged.
DEFAULT_RESULT_TIMEOUT = 300.0

#: Task queue sentinel telling a worker to exit its loop.
SHUTDOWN = None

#: A worker loop: ``fn(rank, task_queue, result_queue)``; must be a
#: module-level callable so it survives the spawn start method.
WorkerLoop = Callable[[int, Any, Any], None]


class PoolError(RuntimeError):
    """A worker died, reported an error, or the pool timed out."""


def _terminate_procs(procs: list) -> None:
    """Finalizer: kill any still-running workers of an abandoned pool."""
    for p in procs:
        try:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)
        except Exception:
            pass


class PersistentWorkerPool:
    """``P`` long-lived worker processes draining one shared task queue.

    Parameters
    ----------
    nworkers:
        Pool width.  Workers race for tasks, so independent tasks load
        balance themselves.
    worker_loop:
        Module-level ``fn(rank, task_queue, result_queue)`` each worker
        runs until it dequeues :data:`SHUTDOWN`.
    start_method:
        ``fork``/``spawn``/``forkserver``; defaults to the
        ``REPRO_PROCPOOL_START`` environment override, then the platform
        default (same contract as :func:`~.runner.run_real`).
    """

    def __init__(self, nworkers: int, worker_loop: WorkerLoop, *,
                 start_method: str | None = None) -> None:
        import multiprocessing as mp
        import os

        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        method = start_method or os.environ.get(START_METHOD_ENV) or None
        ctx = mp.get_context(method)
        self.nworkers = nworkers
        self.start_method = method or "default"
        self._ctx = ctx
        self._worker_loop = worker_loop
        self.respawns = 0
        self.tasks = ctx.Queue()
        self.results = ctx.Queue()
        self._procs = [ctx.Process(target=worker_loop,
                                   args=(rank, self.tasks, self.results),
                                   daemon=True)
                       for rank in range(nworkers)]
        self._closed = False
        for p in self._procs:
            p.start()
        self._finalizer = weakref.finalize(self, _terminate_procs,
                                           list(self._procs))

    # -- submission ----------------------------------------------------
    @protocol_event("pool", "submit")
    def submit(self, task: Any) -> None:
        """Enqueue one picklable task for whichever worker is free next."""
        if self._closed:
            raise PoolError("pool is shut down")
        self.tasks.put(task)

    def broadcast(self, task: Any) -> None:
        """Enqueue one copy of ``task`` per worker (control messages --
        e.g. cache-forget notices -- that every worker must see; relies
        on workers pausing between tasks, so only best-effort ordering)."""
        for _ in range(self.nworkers):
            self.submit(task)

    # -- collection ----------------------------------------------------
    @protocol_event("pool", "next_result")
    def next_result(self, *,
                    timeout: float = DEFAULT_RESULT_TIMEOUT) -> Any:
        """Dequeue one worker result, polling for worker death.

        Raises :class:`PoolError` when a worker exits abnormally or no
        result arrives within ``timeout`` -- the pool never deadlocks on
        a dead peer.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.results.get(timeout=0.25)
            except Empty:
                dead = [p for p in self._procs
                        if p.exitcode not in (None, 0)]
                if dead:
                    raise PoolError(
                        "pool worker(s) died without reporting, exit codes "
                        f"{[p.exitcode for p in dead]}")
                if time.monotonic() > deadline:
                    raise PoolError(
                        f"pool stalled for {timeout:.0f}s waiting on a "
                        "worker result")

    def alive(self) -> int:
        """Number of workers currently running."""
        return sum(1 for p in self._procs if p.is_alive())

    @protocol_event("pool", "respawn")
    def respawn(self) -> int:
        """Replace every exited worker with a fresh process at the same
        rank; returns how many were replaced.

        This is the fleet's degraded-mode recovery: a worker killed
        mid-task (OOM, segfault, crash injection) loses *that* task, but
        the pool keeps its queues -- later tasks land on the replacement.
        The replacement starts with a cold cache (worker state died with
        the process); correctness is unaffected because all shared state
        lives in parent-owned segments.
        """
        if self._closed:
            raise PoolError("pool is shut down")
        replaced = 0
        for rank, proc in enumerate(self._procs):
            if proc.exitcode is None:
                continue
            proc.join(timeout=5)
            fresh = self._ctx.Process(
                target=self._worker_loop,
                args=(rank, self.tasks, self.results), daemon=True)
            fresh.start()
            self._procs[rank] = fresh
            replaced += 1
        if replaced:
            self.respawns += replaced
            # Re-arm the abandoned-pool finalizer over the live set.
            self._finalizer.detach()
            self._finalizer = weakref.finalize(self, _terminate_procs,
                                               list(self._procs))
        return replaced

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @protocol_event("pool", "shutdown")
    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Stop every worker and reap the queues.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self.tasks.put(SHUTDOWN)
            except (ValueError, OSError):
                break  # queue already torn down
        for p in self._procs:
            p.join(timeout=timeout)
        _terminate_procs(self._procs)
        self._finalizer.detach()
        for q in (self.tasks, self.results):
            try:
                q.close()
                q.cancel_join_thread()
            except (ValueError, OSError):
                pass

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
