"""Machine and cluster models.

The paper's testbed (Table I) is Lonestar4 at TACC: 12-core dual-socket
3.33 GHz Intel Westmere nodes (12 MB L3 per socket, 24 GB RAM) on a 40 Gb/s
InfiniBand fat tree, MVAPICH2 + cilk-4.5.4.  :data:`LONESTAR4` mirrors it.

These specs drive the *timing* side of the simulation only; all numerics
run for real.  Calibration constants (per-operation costs) live in
:mod:`repro.parallel.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """One compute node.

    Attributes
    ----------
    cores_per_node / sockets:
        Core topology (cores are split evenly across sockets).
    clock_ghz:
        Core clock.
    l1_kb / l2_kb:
        Private cache sizes per core.
    l3_mb:
        Shared L3 per socket.
    ram_gb:
        Node memory -- the paper's baselines OOM against this.
    """

    name: str
    cores_per_node: int
    sockets: int
    clock_ghz: float
    l1_kb: int
    l2_kb: int
    l3_mb: int
    ram_gb: float

    @property
    def cores_per_socket(self) -> int:
        return self.cores_per_node // self.sockets

    @property
    def l3_bytes_per_socket(self) -> int:
        return self.l3_mb * 1024 * 1024

    @property
    def ram_bytes(self) -> int:
        return int(self.ram_gb * 1024 ** 3)


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point communication parameters (the ``t_s``/``t_w`` model
    of Grama et al. that the paper's Section IV.C analysis uses).

    Attributes
    ----------
    ts_inter / tw_inter:
        Startup latency (s) and per-byte time (s) between nodes.
    ts_intra / tw_intra:
        Same for two ranks on one node (shared-memory transport).
    """

    ts_inter: float
    tw_inter: float
    ts_intra: float
    tw_intra: float
    #: Per-collective software/synchronisation overhead, charged once per
    #: collective times log2(nranks).  This models what end-to-end MPI
    #: phase timings actually contain beyond the wire: stack dispatch,
    #: arrival skew of unpinned processes, progress-engine polling.  It is
    #: the calibrated term behind the paper's "for small molecules the
    #: communication cost dominated computation cost" (Section V.C).
    dispatch_overhead: float = 3.0e-4

    def p2p_cost(self, nbytes: int, *, same_node: bool) -> float:
        """Cost of one point-to-point message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if same_node:
            return self.ts_intra + self.tw_intra * nbytes
        return self.ts_inter + self.tw_inter * nbytes


@dataclass(frozen=True)
class RankLayout:
    """How MPI ranks and threads are laid out on a cluster.

    The paper's two configurations on an N-node run:
    ``OCT_MPI``        -> ``RankLayout(nodes=N, ranks_per_node=12, threads_per_rank=1)``
    ``OCT_MPI+CILK``   -> ``RankLayout(nodes=N, ranks_per_node=2,  threads_per_rank=6)``
    (one hybrid rank per socket, which is what ``tacc_affinity`` pinning
    achieves).
    """

    nodes: int
    ranks_per_node: int
    threads_per_rank: int = 1

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.ranks_per_node < 1 or self.threads_per_rank < 1:
            raise ValueError("layout dimensions must be positive")

    @property
    def nranks(self) -> int:
        return self.nodes * self.ranks_per_node

    @property
    def total_cores(self) -> int:
        return self.nranks * self.threads_per_rank

    def node_of(self, rank: int) -> int:
        """Which node hosts ``rank`` (block distribution, as mpirun does)."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        return rank // self.ranks_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)


#: The paper's Table I machine.
LONESTAR4 = MachineSpec(
    name="Lonestar4 (Westmere)",
    cores_per_node=12,
    sockets=2,
    clock_ghz=3.33,
    l1_kb=64,
    l2_kb=256,
    l3_mb=12,
    ram_gb=24.0,
)

#: QDR InfiniBand fat tree (40 Gb/s) with MVAPICH2-era latencies, plus
#: shared-memory transport inside a node.
LONESTAR4_NETWORK = NetworkSpec(
    # Effective per-step latency of collective stages across nodes: wire
    # latency plus the per-rank software cost a ring/tree stage pays.  This
    # is the term that makes many-rank (P-1)-stage collectives visibly more
    # expensive for OCT_MPI than for the hybrid layout at equal cores.
    ts_inter=1.0e-5,
    tw_inter=3.0e-10,   # ~3.3 GB/s effective per-rank stream
    ts_intra=6.0e-7,
    tw_intra=1.0e-10,   # ~10 GB/s through shared memory
)


def layout_for_cores(cores: int, *, hybrid: bool,
                     machine: MachineSpec = LONESTAR4) -> RankLayout:
    """The paper's standard layouts for a given total core count.

    ``hybrid=False`` gives OCT_MPI (one rank per core); ``hybrid=True``
    gives OCT_MPI+CILK (one rank per socket, one thread per core).
    ``cores`` must be a multiple of the node size.
    """
    cpn = machine.cores_per_node
    if cores % cpn != 0:
        raise ValueError(f"cores must be a multiple of {cpn}")
    nodes = cores // cpn
    if hybrid:
        return RankLayout(nodes=nodes, ranks_per_node=machine.sockets,
                          threads_per_rank=cpn // machine.sockets)
    return RankLayout(nodes=nodes, ranks_per_node=cpn, threads_per_rank=1)
