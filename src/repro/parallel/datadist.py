"""Data distribution: the paper's stated future work, implemented.

The paper's Section IV.A names two load-balancing designs and evaluates
only the first:

* distribute only the work (each process holds *all* the data) -- what the
  paper ships and what :mod:`repro.parallel.hybrid` reproduces;
* "distribute both the data and work evenly among the processes (each
  process gets only a part of the data)" -- deferred in the conclusion as
  "an interesting approach to explore".

This module explores it.  Each rank *owns* a contiguous segment of octree
leaves (the same cost-balanced segments the work division uses) and holds
only its own points plus the shared node skeleton.  Before the Born phase,
ranks exchange exactly the remote leaf payloads their traversals touch --
the near-field *halo* -- via simulated point-to-point messages.  The far
field needs no point data at all (per-node aggregates live in the
skeleton), which is what makes distribution attractive for this algorithm.

What the experiment shows (``python -m repro run ablE``):

* per-rank memory drops from one full replica to ``skeleton + own segment
  + halo`` -- the 1/P scaling the paper hoped for, plus a halo that grows
  with surface area, not volume;
* the price is the halo exchange: point-to-point traffic that the
  replicated design never pays;
* energies match the replicated runs to addition-reordering rounding (the
  decomposition is still exactly additive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.born import AtomTreeData, BornPartial, QuadTreeData
from ..core.driver import PolarizationEnergyCalculator
from ..octree.partition import (coarsen_keys, segment_by_key_range,
                                segment_by_weight, segment_leaf_bounds)
from ..plan import InteractionPlan, build_born_plan, execute_born_plan

#: Ownership schemes :func:`plan_halos` implements.  ``"row-weight"`` is
#: the exact greedy balancer over per-row pair counts (the executing
#: backends' cuts); ``"key-range"`` snaps the same cuts to coarse SFC key
#: blocks (:func:`~repro.octree.partition.coarsen_keys` +
#: :func:`~repro.octree.partition.segment_by_key_range`), so each rank's
#: ownership is a contiguous curve-key interval.
HALO_SCHEMES = ("row-weight", "key-range")

#: Bytes per quadrature point (position + normal + weight) and per atom
#: (position + radius + charge) in the exchanged payloads.
BYTES_PER_QPOINT = 7 * 8
BYTES_PER_ATOM = 5 * 8


@dataclass(frozen=True)
class HaloPlan:
    """Which remote data each rank needs for its Born-phase traversals.

    Attributes
    ----------
    owner_of_atom_leaf / owner_of_q_leaf:
        Rank owning each leaf (by the plan-weighted segment bounds).
    needed_atom_leaves:
        Per rank, the sorted ids of *atom-tree* leaves its assigned
        Q-leaf traversals touch in the near field (its halo, including
        the leaves it owns itself).
    q_bounds:
        The Q-leaf (plan-row) segment bounds the ownership derives from
        -- under the default ``"row-weight"`` scheme these are exact
        per-row pair-count cuts, the same the executing backends use, so
        halo accounting and work division agree; under ``"key-range"``
        they are the same cuts snapped to coarse SFC key blocks.
    scheme:
        Which of :data:`HALO_SCHEMES` produced the bounds.
    """

    owner_of_atom_leaf: np.ndarray
    owner_of_q_leaf: np.ndarray
    needed_atom_leaves: list[np.ndarray]
    q_bounds: tuple[tuple[int, int], ...]
    scheme: str = "row-weight"


@dataclass(frozen=True)
class DataDistribution:
    """Memory and traffic accounting of one distributed-data layout.

    All byte figures are per rank unless stated otherwise.
    """

    nranks: int
    replicated_bytes: int          # what the paper's design stores per rank
    skeleton_bytes: int            # shared node arrays every rank keeps
    owned_bytes: np.ndarray        # (P,) own-segment payload
    halo_bytes: np.ndarray         # (P,) remote payload fetched
    halo_messages: int             # point-to-point messages exchanged
    halo_traffic_bytes: int        # total bytes moved in the exchange

    @property
    def distributed_bytes(self) -> np.ndarray:
        """(P,) resident bytes per rank under data distribution."""
        return self.skeleton_bytes + self.owned_bytes + self.halo_bytes

    @property
    def memory_reduction(self) -> float:
        """Replicated bytes over the *worst* rank's distributed bytes."""
        return float(self.replicated_bytes / self.distributed_bytes.max())


def _leaf_owner(bounds: list[tuple[int, int]], nleaves: int) -> np.ndarray:
    owner = np.empty(nleaves, dtype=np.int64)
    for rank, (lo, hi) in enumerate(bounds):
        owner[lo:hi] = rank
    return owner


def plan_halos(atoms: AtomTreeData, quad: QuadTreeData, eps: float, *,
               nranks: int, mac_variant: str = "practical",
               scheme: str = "row-weight",
               plan: InteractionPlan | None = None) -> HaloPlan:
    """Record which atom leaves each rank's near field touches.

    The near-leaf lists come straight from the interaction plan's CSR
    rows (no re-traversal): a rank's halo is the union of ``near_leaves``
    over its plan-row segment.  Pass ``plan`` to reuse a cached one.
    ``scheme`` picks the ownership cuts (:data:`HALO_SCHEMES`): the exact
    row-weight balancer, or key-range ownership aligned to coarse SFC
    blocks (plan rows are in canonical leaf-key order, so the snapped
    cuts stay contiguous).
    """
    a_tree = atoms.tree
    q_tree = quad.tree
    if plan is None:
        plan = build_born_plan(atoms, quad, eps, mac_variant=mac_variant)
    row_weights = plan.row_pair_weights()
    if scheme == "row-weight":
        q_bounds = segment_by_weight(row_weights, nranks)
        a_bounds = segment_leaf_bounds(a_tree, nranks)
    elif scheme == "key-range":
        if q_tree.node_key is None or a_tree.node_key is None:
            raise ValueError("key-range ownership needs trees with SFC "
                             "node keys (build_octree always sets them)")
        q_keys = q_tree.node_key[plan.target_leaves]
        q_bounds = segment_by_key_range(coarsen_keys(q_keys, nranks),
                                        nranks, weights=row_weights)
        a_sizes = (a_tree.point_end[a_tree.leaves]
                   - a_tree.point_start[a_tree.leaves]).astype(np.float64)
        a_bounds = segment_by_key_range(
            coarsen_keys(a_tree.leaf_keys, nranks), nranks, weights=a_sizes)
    else:
        raise ValueError(f"unknown halo scheme {scheme!r}; "
                         f"expected one of {HALO_SCHEMES}")
    # Leaf node id -> position in the leaf list (halo sets use positions).
    pos_of_node = np.full(a_tree.nnodes, -1, dtype=np.int64)
    pos_of_node[a_tree.leaves] = np.arange(len(a_tree.leaves),
                                           dtype=np.int64)
    needed: list[np.ndarray] = []
    for lo, hi in q_bounds:
        row_leaves = plan.near_leaves[plan.near_leaf_start[lo]:
                                      plan.near_leaf_start[hi]]
        needed.append(np.unique(pos_of_node[row_leaves]))
    return HaloPlan(
        owner_of_atom_leaf=_leaf_owner(a_bounds, len(a_tree.leaves)),
        owner_of_q_leaf=_leaf_owner(q_bounds, len(q_tree.leaves)),
        needed_atom_leaves=needed,
        q_bounds=tuple((int(lo), int(hi)) for lo, hi in q_bounds),
        scheme=scheme,
    )


def analyze_distribution(calc: PolarizationEnergyCalculator, *,
                         nranks: int,
                         scheme: str = "row-weight") -> DataDistribution:
    """Account memory and halo traffic for distributing the data of
    ``calc``'s molecule across ``nranks`` ranks under the given
    ownership ``scheme`` (:data:`HALO_SCHEMES`)."""
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    atoms = calc.atom_tree()
    quad = calc.quad_tree()
    surface = calc.prepare_surface()
    plan = plan_halos(atoms, quad, calc.params.eps_born, nranks=nranks,
                      mac_variant=calc.params.born_mac_variant,
                      scheme=scheme, plan=calc.born_plan())

    a_tree = atoms.tree
    q_tree = quad.tree
    leaf_sizes = (a_tree.point_end[a_tree.leaves]
                  - a_tree.point_start[a_tree.leaves])
    replicated = (calc.molecule.nbytes() + surface.nbytes()
                  + a_tree.nbytes() + q_tree.nbytes())
    skeleton = int((a_tree.nbytes() - a_tree.points.nbytes)
                   + (q_tree.nbytes() - q_tree.points.nbytes))

    q_bounds = plan.q_bounds
    owned = np.zeros(nranks)
    halo = np.zeros(nranks)
    messages = 0
    traffic = 0
    # Integer byte/message *accounting* per rank, not a numeric reduction
    # that must share the collective modules' float ordering.
    for rank in range(nranks):  # repro-lint: disable=REP002
        lo, hi = q_bounds[rank]
        q_points = int(q_tree.point_end[q_tree.leaves[hi - 1]]
                       - q_tree.point_start[q_tree.leaves[lo]]) if hi > lo else 0
        own_atom_leaves = np.flatnonzero(plan.owner_of_atom_leaf == rank)
        owned[rank] = (q_points * BYTES_PER_QPOINT
                       + int(leaf_sizes[own_atom_leaves].sum())
                       * BYTES_PER_ATOM)
        needed = plan.needed_atom_leaves[rank]
        remote = needed[plan.owner_of_atom_leaf[needed] != rank]
        halo[rank] = int(leaf_sizes[remote].sum()) * BYTES_PER_ATOM
        # One message per (requesting rank, owning rank) pair with data.
        owners = np.unique(plan.owner_of_atom_leaf[remote])
        messages += len(owners)
        traffic += int(halo[rank])
    return DataDistribution(
        nranks=nranks, replicated_bytes=int(replicated),
        skeleton_bytes=skeleton, owned_bytes=owned, halo_bytes=halo,
        halo_messages=messages, halo_traffic_bytes=traffic)


def born_partial_from_halo(atoms: AtomTreeData, quad: QuadTreeData,
                           eps: float, rank: int, nranks: int, *,
                           mac_variant: str = "practical",
                           plan: InteractionPlan | None = None
                           ) -> BornPartial:
    """One rank's Born partial computed *as if* only its segment + halo
    were resident.

    The kernels index the same arrays (Python has no address-space
    boundary to enforce), but execution is restricted to exactly the
    plan rows the halo plan grants -- so a mismatch between halo and need
    would fail loudly in tests rather than silently touching "remote"
    memory.  Energies match the replicated run to rounding, which is the
    invariant that makes data distribution a pure memory/traffic trade.
    """
    if plan is None:
        plan = build_born_plan(atoms, quad, eps, mac_variant=mac_variant)
    lo, hi = segment_by_weight(plan.row_pair_weights(), nranks)[rank]
    return execute_born_plan(plan, atoms, quad, row_range=(lo, hi))
