"""Operation-count -> simulated-seconds conversion, plus cache and memory
effects.

One :class:`CostModel` instance converts the :class:`WorkCounters` a kernel
produced into the time a Lonestar4 core would have needed.  The per-op
rates are *calibration constants*: they were chosen once so the CMV-scale
anchor rows of the paper's Fig. 11 roughly hold (OCT on 12 cores in
seconds, Amber in tens of minutes; see DESIGN.md Section 6), and are then
held fixed across every experiment -- relative behaviour between
algorithms, sizes and core counts emerges from the counted work, not from
per-experiment tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..runtime.instrument import WorkCounters
from .machine import LONESTAR4, MachineSpec


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs (seconds) on one core, plus cache thresholds.

    Attributes
    ----------
    t_exact_pair:
        One exact pairwise interaction (~15 flops incl. a sqrt/exp at
        throughput): 1.2e-8 s is ~83 M pairs/s/core, a realistic figure
        for compiled scalar code on a 3.33 GHz Westmere without
        vectorisation (the paper states "No vectorization was used").
    t_far_eval:
        One accepted far-field pseudo-point evaluation.
    t_hist_pair:
        One histogram-bin pair inside a far-field energy evaluation.
    t_node_visit:
        One octree node MAC test during traversal.
    t_tree_point:
        Per-point octree construction cost (only charged when an
        experiment includes build time; the paper amortises it away).
    approx_math_speedup:
        Divisor applied to pair/far costs when the paper's "approximate
        math" mode is on (measured 1.42x, Section V.E).
    cache_l3_penalty / ram_penalty:
        Multiplier on compute time when a worker's data segment exceeds
        its L3 share / when it spills far past L3 toward RAM.  This is the
        mechanism behind the paper's observation that more cores ->
        smaller segments -> fewer cache misses (Section V.B).
    """

    t_exact_pair: float = 1.2e-8
    t_far_eval: float = 2.4e-8
    t_hist_pair: float = 1.2e-8
    t_node_visit: float = 6.0e-9
    t_tree_point: float = 2.5e-7
    approx_math_speedup: float = 1.42
    cache_l3_penalty: float = 1.08
    ram_penalty: float = 1.30
    #: Fixed per-phase cost of crossing the cilk++ <-> MPI boundary in the
    #: hybrid code ("an additional overhead of interfacing cilk++ and MPI",
    #: Section V.C) -- prominent for small molecules, negligible for large.
    hybrid_interface_overhead: float = 2.0e-3
    #: Multiplier on thread-level compute under cilk++ relative to a pinned
    #: single-thread MPI rank ("MPI turns out to be more optimized ... and
    #: cilk++ does not maintain thread affinity", Section V.C).
    cilk_inflation: float = 1.02
    machine: MachineSpec = LONESTAR4

    def with_approx_math(self) -> "CostModel":
        """The cost model under the paper's approximate-math mode."""
        f = self.approx_math_speedup
        return replace(self, t_exact_pair=self.t_exact_pair / f,
                       t_far_eval=self.t_far_eval / f,
                       t_hist_pair=self.t_hist_pair / f)

    # ------------------------------------------------------------------
    # compute time
    # ------------------------------------------------------------------
    def compute_seconds(self, counters: WorkCounters) -> float:
        """Raw single-core compute time for the counted work (no cache
        effects)."""
        return (counters.exact_pairs * self.t_exact_pair
                + counters.far_evals * self.t_far_eval
                + counters.hist_pairs * self.t_hist_pair
                + counters.nodes_visited * self.t_node_visit
                + counters.tree_points * self.t_tree_point)

    def cache_factor(self, segment_bytes: float, *,
                     threads_sharing_cache: int = 1) -> float:
        """Multiplier for a worker whose active data segment is
        ``segment_bytes`` while ``threads_sharing_cache`` threads share one
        socket's L3.

        Piecewise: 1.0 while the per-thread share fits in L3, the L3
        penalty up to 8x L3, and the RAM penalty beyond.  Smooth enough to
        reproduce the paper's better-than-linear scaling region without
        pretending to be a cache simulator.
        """
        if segment_bytes < 0:
            raise ValueError("segment_bytes must be non-negative")
        share = self.machine.l3_bytes_per_socket / max(threads_sharing_cache, 1)
        if segment_bytes <= share:
            return 1.0
        if segment_bytes <= 8 * share:
            # Linear ramp from 1.0 to the L3 penalty across the overflow.
            frac = (segment_bytes - share) / (7 * share)
            return 1.0 + frac * (self.cache_l3_penalty - 1.0)
        return self.ram_penalty

    def phase_seconds(self, counters: WorkCounters, *, segment_bytes: float = 0.0,
                      threads_sharing_cache: int = 1,
                      approximate_math: bool = False) -> float:
        """Compute time for one phase on one worker, with cache effects."""
        model = self.with_approx_math() if approximate_math else self
        return (model.compute_seconds(counters)
                * model.cache_factor(segment_bytes,
                                     threads_sharing_cache=threads_sharing_cache))


@dataclass(frozen=True)
class MemoryModel:
    """Per-process memory accounting for the replicated-data design.

    The paper (Section V.B): on one 12-core node, BTV with 2x6 hybrid
    ranks took ~1.4 GB while 12x1 pure-MPI ranks took 8.2 GB (~5.86x) --
    data is replicated per *process*, shared across threads.
    """

    machine: MachineSpec = LONESTAR4
    #: Fixed per-process runtime overhead (MPI buffers, code, heap), bytes.
    process_overhead: int = 60 * 1024 * 1024

    def process_bytes(self, data_bytes: int) -> int:
        """Resident size of one process holding one copy of the data."""
        if data_bytes < 0:
            raise ValueError("data_bytes must be non-negative")
        return data_bytes + self.process_overhead

    def node_bytes(self, data_bytes: int, ranks_per_node: int) -> int:
        """Resident size on one node: one replica per rank."""
        return self.process_bytes(data_bytes) * ranks_per_node

    def fits_on_node(self, data_bytes: int, ranks_per_node: int) -> bool:
        """Whether the layout fits in node RAM (else the run OOMs, as
        Tinker/GBr6 did for >12k/>13k-atom molecules in Fig. 9)."""
        return self.node_bytes(data_bytes, ranks_per_node) <= self.machine.ram_bytes
