"""``python -m repro.verify`` -- run the repro-verify static pass.

Thin executable alias for :mod:`repro.analysis_static.verify.cli`; see
``docs/ANALYSIS.md`` for the check catalogue (effect inference,
shared-memory typestate, static collective-matching).
"""

from .analysis_static.verify.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
