"""Space-filling-curve keys: Morton and Hilbert behind one interface.

The octree builder addresses every node by a 63-bit space-filling-curve
key (21 bits per axis), and the leaf list -- the unit every downstream
layer divides -- is canonically ordered along that curve.  Two curves are
provided:

* **Morton** (Z-order): the bit-interleaving of :mod:`repro.octree.morton`.
  Cheap to compute, but adjacent keys can jump across the whole cube
  (the "Z" seams), which costs cache locality and halo compactness.
* **Hilbert**: the 3-D Hilbert curve via Skilling's transpose algorithm
  ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004),
  vectorised over NumPy arrays.  Consecutive keys are always
  face-adjacent lattice cells, so contiguous key ranges are spatially
  compact -- the property the SFC load-balancing literature cited by the
  paper (Campbell et al.) relies on, and the one
  :func:`repro.octree.partition.segment_by_key_range` turns into
  contiguous per-rank ownership intervals.

Both curves are *hierarchical*: the cells of an octree node at any level
occupy one contiguous key interval, and sibling subtrees' intervals are
disjoint.  That is what makes the leaf-key order identical to depth-first
(curve) traversal order and lets :func:`child_curve_order` decide the
builder's child visitation order from integer cell anchors alone.

All lattice math is exact ``uint64`` arithmetic on the octree's own cell
anchors (no float quantisation in the build path), so workers rebuilding
a tree from shared coordinates derive bit-identical keys.
"""

from __future__ import annotations

import numpy as np

from .morton import BITS_PER_AXIS, _compact_bits, _spread_bits, quantize

__all__ = [
    "SFCKey", "MortonKey", "HilbertKey", "SFC_KEYS", "get_sfc",
    "hilbert_encode", "hilbert_decode",
    "hilbert_encode_lattice", "hilbert_decode_key", "node_keys",
]

_U = np.uint64
_ONE = _U(1)


def _pack_transpose(x0: np.ndarray, x1: np.ndarray, x2: np.ndarray
                    ) -> np.ndarray:
    """Interleave three <=21-bit coordinate arrays MSB-first with ``x0``
    most significant within each bit triple (Skilling's transpose
    convention)."""
    return (_spread_bits(x2)
            | (_spread_bits(x1) << _ONE)
            | (_spread_bits(x0) << _U(2)))


def _unpack_transpose(keys: np.ndarray) -> list[np.ndarray]:
    k = np.asarray(keys, dtype=np.uint64)
    return [_compact_bits(k >> _U(2)),
            _compact_bits(k >> _ONE),
            _compact_bits(k)]


def _axes_to_transpose(coords: np.ndarray, order: int) -> list[np.ndarray]:
    """Skilling's AxesToTranspose, vectorised: lattice coordinates ->
    transpose-form Hilbert coordinates (``order`` bit planes)."""
    x = [np.array(coords[:, i], dtype=np.uint64) for i in range(3)]
    q = _ONE << _U(order - 1)
    while q > _ONE:
        p = q - _ONE
        for i in range(3):
            hi = (x[i] & q) != 0
            if i == 0:
                x[0] = np.where(hi, x[0] ^ p, x[0])
            else:
                t = np.where(hi, _U(0), (x[0] ^ x[i]) & p)
                x[0] = np.where(hi, x[0] ^ p, x[0] ^ t)
                x[i] = x[i] ^ t
        q >>= _ONE
    # Gray encode.
    x[1] ^= x[0]
    x[2] ^= x[1]
    t = np.zeros_like(x[2])
    q = _ONE << _U(order - 1)
    while q > _ONE:
        t = np.where((x[2] & q) != 0, t ^ (q - _ONE), t)
        q >>= _ONE
    return [xi ^ t for xi in x]


def _transpose_to_axes(x: list[np.ndarray], order: int) -> np.ndarray:
    """Inverse of :func:`_axes_to_transpose`."""
    x = [np.array(xi, dtype=np.uint64) for xi in x]
    # Gray decode.
    t = x[2] >> _ONE
    x[2] ^= x[1]
    x[1] ^= x[0]
    x[0] ^= t
    q = _U(2)
    top = _U(2) << _U(order - 1)
    while q != top:
        p = q - _ONE
        for i in (2, 1, 0):
            hi = (x[i] & q) != 0
            if i == 0:
                x[0] = np.where(hi, x[0] ^ p, x[0])
            else:
                t = np.where(hi, _U(0), (x[0] ^ x[i]) & p)
                x[0] = np.where(hi, x[0] ^ p, x[0] ^ t)
                x[i] = x[i] ^ t
        q <<= _ONE
    return np.column_stack(x)


def hilbert_encode_lattice(coords: np.ndarray,
                           order: int = BITS_PER_AXIS) -> np.ndarray:
    """Hilbert keys of integer lattice coordinates.

    Parameters
    ----------
    coords:
        ``(N, 3)`` unsigned integers, each ``< 2**order``.
    order:
        Curve order (bit planes per axis), ``1 <= order <= 21``.

    Returns
    -------
    ``(N,)`` uint64 keys in ``[0, 8**order)`` -- a bijection on the
    ``order``-level lattice, with consecutive keys mapping to
    face-adjacent cells.
    """
    if not 1 <= order <= BITS_PER_AXIS:
        raise ValueError(f"order must be in [1, {BITS_PER_AXIS}]")
    c = np.asarray(coords, dtype=np.uint64)
    if c.ndim != 2 or c.shape[1] != 3:
        raise ValueError("coords must be (N, 3)")
    if c.shape[0] == 0:
        return np.empty(0, dtype=np.uint64)
    if order == 1:
        # A single bit plane: transpose form is the Gray-coded octant.
        x = [c[:, 0] & _ONE, c[:, 1] & _ONE, c[:, 2] & _ONE]
        x[1] = x[1] ^ x[0]
        x[2] = x[2] ^ x[1]
        return (x[0] << _U(2)) | (x[1] << _ONE) | x[2]
    return _pack_transpose(*_axes_to_transpose(c, order))


def hilbert_decode_key(keys: np.ndarray,
                       order: int = BITS_PER_AXIS) -> np.ndarray:
    """Lattice coordinates of Hilbert ``keys`` (inverse of
    :func:`hilbert_encode_lattice`), shape ``(N, 3)`` uint64."""
    if not 1 <= order <= BITS_PER_AXIS:
        raise ValueError(f"order must be in [1, {BITS_PER_AXIS}]")
    k = np.asarray(keys, dtype=np.uint64)
    if k.size == 0:
        return np.empty((0, 3), dtype=np.uint64)
    if order == 1:
        x = [(k >> _U(2)) & _ONE, (k >> _ONE) & _ONE, k & _ONE]
        x[2] = x[2] ^ x[1]
        x[1] = x[1] ^ x[0]
        return np.column_stack(x)
    return _transpose_to_axes(_unpack_transpose(k), order)


def hilbert_encode(points: np.ndarray, origin: np.ndarray | None = None,
                   extent: float | None = None) -> np.ndarray:
    """Hilbert keys for 3-D float points, shape ``(N,)`` uint64.

    ``origin``/``extent`` default to the points' bounding cube, exactly
    like :func:`repro.octree.morton.encode`.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError("points must be (N, 3)")
    if len(pts) == 0:
        return np.empty(0, dtype=np.uint64)
    if origin is None:
        origin = pts.min(axis=0)
    if extent is None:
        extent = float(max((pts.max(axis=0) - origin).max(), 1e-12))
    return hilbert_encode_lattice(quantize(pts, np.asarray(origin), extent))


def hilbert_decode(codes: np.ndarray) -> np.ndarray:
    """Quantised lattice coordinates of full-order Hilbert ``codes``."""
    return hilbert_decode_key(codes, BITS_PER_AXIS)


class SFCKey:
    """One space-filling curve: float-point and lattice key functions.

    ``name`` identifies the curve in :data:`SFC_KEYS`,
    :class:`~repro.core.params.ApproximationParams` and plan/registry
    fingerprints.  Lattice methods are exact integer maps; the float
    ``encode`` quantises onto the 21-bit lattice first.
    """

    name: str = ""

    def encode(self, points: np.ndarray, origin: np.ndarray | None = None,
               extent: float | None = None) -> np.ndarray:
        raise NotImplementedError

    def encode_lattice(self, coords: np.ndarray,
                       order: int = BITS_PER_AXIS) -> np.ndarray:
        raise NotImplementedError

    def decode_lattice(self, keys: np.ndarray,
                       order: int = BITS_PER_AXIS) -> np.ndarray:
        raise NotImplementedError

    def sort_order(self, points: np.ndarray) -> np.ndarray:
        """Permutation ordering ``points`` along the curve."""
        return np.argsort(self.encode(points), kind="stable")

    def child_order(self, anchor: tuple[int, int, int],
                    level: int) -> np.ndarray:
        """Visitation order of the 8 octant codes of the node at integer
        cell ``anchor`` (its per-axis lattice index at ``level``).

        Octant codes follow the builder's convention (bit0 -> +x,
        bit1 -> +y, bit2 -> +z).  The returned permutation lists the
        codes in the order their child cells appear along the curve --
        hierarchy makes the node-local order equal to the full-depth
        order.  Beyond the key resolution (``level >= 21``) ties are
        broken by code order, which is deterministic and only affects
        sub-resolution cells.
        """
        bits = np.arange(8, dtype=np.uint64)
        child_level = min(level + 1, BITS_PER_AXIS)
        shift = _U(max(level + 1 - BITS_PER_AXIS, 0))
        cells = np.column_stack([
            (_U(2 * anchor[0]) + (bits & _ONE)) >> shift,
            (_U(2 * anchor[1]) + ((bits >> _ONE) & _ONE)) >> shift,
            (_U(2 * anchor[2]) + ((bits >> _U(2)) & _ONE)) >> shift,
        ])
        keys = self.encode_lattice(cells, child_level)
        return np.argsort(keys, kind="stable")


class MortonKey(SFCKey):
    """Z-order keys (delegates to :mod:`repro.octree.morton`)."""

    name = "morton"

    def encode(self, points, origin=None, extent=None):
        from . import morton
        return morton.encode(points, origin, extent)

    def encode_lattice(self, coords, order=BITS_PER_AXIS):
        c = np.asarray(coords, dtype=np.uint64)
        return (_spread_bits(c[:, 0])
                | (_spread_bits(c[:, 1]) << _ONE)
                | (_spread_bits(c[:, 2]) << _U(2)))

    def decode_lattice(self, keys, order=BITS_PER_AXIS):
        from . import morton
        return morton.decode(keys)

    def child_order(self, anchor, level):
        # Morton visits octants exactly in code order -- the identity the
        # seed builder hard-codes, preserved bit for bit.
        return np.arange(8, dtype=np.int64)


class HilbertKey(SFCKey):
    """Hilbert keys (Skilling transpose algorithm, vectorised)."""

    name = "hilbert"

    def encode(self, points, origin=None, extent=None):
        return hilbert_encode(points, origin, extent)

    def encode_lattice(self, coords, order=BITS_PER_AXIS):
        return hilbert_encode_lattice(coords, order)

    def decode_lattice(self, keys, order=BITS_PER_AXIS):
        return hilbert_decode_key(keys, order)


#: Registry of the supported curves, keyed by ``SFCKey.name``.
SFC_KEYS: dict[str, SFCKey] = {
    "morton": MortonKey(),
    "hilbert": HilbertKey(),
}


def node_keys(curve: SFCKey, anchors: np.ndarray,
              levels: np.ndarray) -> np.ndarray:
    """Full-order curve key of each node's cube, from integer anchors.

    ``anchors[v]`` is node ``v``'s per-axis lattice index at its own
    ``levels[v]`` (the builder maintains these exactly: child anchor =
    ``2 * parent_anchor + octant bits``).  The key is taken at the centre
    cell of the cube on the 21-bit lattice -- any fixed interior cell
    works, because distinct cubes at resolvable levels own disjoint key
    intervals; nodes deeper than 21 levels collapse onto their level-21
    ancestor cell (equal keys, which the key-range partitioner keeps
    together).
    """
    a = np.asarray(anchors, dtype=np.uint64)
    lv = np.asarray(levels, dtype=np.int64)
    up = np.maximum(BITS_PER_AXIS - lv, 0).astype(np.uint64)[:, None]
    down = np.maximum(lv - BITS_PER_AXIS, 0).astype(np.uint64)[:, None]
    half = (_ONE << up) >> _ONE
    cell = ((a << up) >> down) + half
    return curve.encode_lattice(cell, BITS_PER_AXIS)


def get_sfc(name: str) -> SFCKey:
    """The registered :class:`SFCKey` for ``name`` (raises on unknown)."""
    try:
        return SFC_KEYS[name]
    except KeyError:
        raise ValueError(
            f"unknown space-filling curve {name!r}; "
            f"expected one of {sorted(SFC_KEYS)}") from None
