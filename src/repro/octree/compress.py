"""Compressed octrees: splice out single-child chains.

Highly non-uniform inputs (the virus-shell molecules: a thin 2-D shell
embedded in a big empty cube) drive the adaptive builder through long
runs of nodes with exactly one non-empty octant.  Those chain nodes cost
traversal steps and memory but never change a classification outcome:
every node of a chain owns the *same* point slice, hence the same
enclosing ball, hence the same multipole-acceptance decision and the
same far-field distance bit pattern as the chain's deepest node.

:func:`compress` removes them.  The result keeps, for every maximal
single-child chain, only the deepest node (the tightest cube), re-linked
to the chain head's parent; node ids are renumbered in BFS order so the
container invariants every kernel relies on still hold (parents precede
children, children of a node are contiguous, levels are contiguous).
Leaf ids change but leaf *contents* -- the point slices, the permutation
and the canonical (curve) leaf order -- are identical, which is why a
compressed tree slots into plans, partitioning and serving unchanged,
differing from the plain tree only in floating-point summation order of
the far-field fold.

cf. pysph's ``CompressedOctree`` (SNIPPETS.md §1) and the linear
compressed-octree literature it follows.
"""

from __future__ import annotations

import numpy as np

from .octree import Octree


class CompressedOctree(Octree):
    """An :class:`Octree` with every single-child chain spliced out.

    Structurally a plain :class:`Octree` (same arrays, same kernels);
    the subclass exists so callers can assert the compression contract
    (``compressed`` is True and no node has exactly one child).
    """


def compress(tree: Octree) -> CompressedOctree:
    """Collapse single-child chains of ``tree`` into a
    :class:`CompressedOctree`.

    Guarantees, asserted by the property tests:

    * identical point set, permutation and sorted order (shared arrays);
    * identical leaf *contents* and canonical leaf order (leaf ids are
      renumbered);
    * no surviving node has exactly one child, and on chain-heavy trees
      the depth is strictly smaller;
    * per-node ball geometry and SFC keys of surviving nodes are carried
      over unchanged, so MAC decisions -- and far-field distance bit
      patterns -- match the plain tree's for every surviving node.
    """
    fc = tree.first_child
    cc = tree.child_count

    def chain_end(v: int) -> int:
        while cc[v] == 1:
            v = int(fc[v])
        return v

    # BFS over the spliced tree, renumbering as we go.
    old_ids: list[int] = [chain_end(0)]
    new_parent: list[int] = [-1]
    new_level: list[int] = [0]
    new_first_child: list[int] = []
    new_child_count: list[int] = []
    head = 0
    while head < len(old_ids):
        v = old_ids[head]
        head += 1
        k = int(cc[v])
        if k == 0:
            new_first_child.append(-1)
            new_child_count.append(0)
            continue
        new_first_child.append(len(old_ids))
        new_child_count.append(k)
        for c in range(int(fc[v]), int(fc[v]) + k):
            old_ids.append(chain_end(c))
            new_parent.append(head - 1)
            new_level.append(new_level[head - 1] + 1)

    sel = np.asarray(old_ids, dtype=np.int64)
    return CompressedOctree(
        points=tree.points,
        perm=tree.perm,
        cube_center=tree.cube_center[sel],
        cube_half=tree.cube_half[sel],
        ball_center=tree.ball_center[sel],
        ball_radius=tree.ball_radius[sel],
        first_child=np.asarray(new_first_child, dtype=np.int64),
        child_count=np.asarray(new_child_count, dtype=np.int64),
        parent=np.asarray(new_parent, dtype=np.int64),
        level=np.asarray(new_level, dtype=np.int64),
        point_start=tree.point_start[sel],
        point_end=tree.point_end[sel],
        leaf_cap=tree.leaf_cap,
        sfc=tree.sfc,
        compressed=True,
        node_key=None if tree.node_key is None else tree.node_key[sel],
        _sorted_points=tree._sorted_points,
    )
