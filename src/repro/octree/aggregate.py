"""Per-node aggregates (multipole-like moments) over octree slices.

Because every node owns a contiguous slice of the permuted point array,
any per-node sum of per-point values reduces to two gathers into a prefix
sum -- O(N) for the prefix plus O(M) for the nodes, with no Python-level
loop over nodes.  These aggregates are the "pseudo-atom" and
"pseudo-q-point" quantities of paper Fig. 2 and the per-node charge
histograms ``q_U[k]`` of Fig. 3.
"""

from __future__ import annotations

import numpy as np

from .octree import Octree


def node_sums(tree: Octree, values: np.ndarray) -> np.ndarray:
    """Sum ``values`` (per original point id) over every node.

    ``values`` may be ``(N,)`` or ``(N, d)``; the result is ``(M,)`` or
    ``(M, d)`` accordingly.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.shape[0] != tree.npoints:
        raise ValueError("values must have one row per point")
    sorted_vals = vals[tree.perm]
    if sorted_vals.ndim == 1:
        prefix = np.concatenate([[0.0], np.cumsum(sorted_vals)])
    else:
        prefix = np.vstack([np.zeros((1, sorted_vals.shape[1])),
                            np.cumsum(sorted_vals, axis=0)])
    return prefix[tree.point_end] - prefix[tree.point_start]


def node_counts(tree: Octree) -> np.ndarray:
    """Number of points under every node, shape ``(M,)``."""
    return tree.point_end - tree.point_start


def pseudo_normals(tree: Octree, normals: np.ndarray,
                   weights: np.ndarray) -> np.ndarray:
    """The per-node weighted normal sums ``ñ_Q = sum_q w_q n_q`` of Fig. 2,
    shape ``(M, 3)``."""
    return node_sums(tree, weights[:, None] * np.asarray(normals, dtype=np.float64))


def node_charges(tree: Octree, charges: np.ndarray) -> np.ndarray:
    """Total charge under every node, shape ``(M,)``."""
    return node_sums(tree, charges)


def node_histograms(tree: Octree, bin_index: np.ndarray, weights: np.ndarray,
                    nbins: int) -> np.ndarray:
    """Per-node weighted histograms, shape ``(M, nbins)``.

    ``bin_index`` assigns each point to a bin in ``[0, nbins)``; the result
    row for node ``v`` is ``sum of weights of v's points per bin`` -- the
    charge histogram ``q_U[k]`` used by the far-field energy rule.
    Implemented as a one-hot prefix sum: O(N * nbins) memory, no node loop.
    """
    bins = np.asarray(bin_index)
    if bins.shape != (tree.npoints,):
        raise ValueError("bin_index must be (N,)")
    if nbins < 1:
        raise ValueError("nbins must be >= 1")
    if bins.min(initial=0) < 0 or bins.max(initial=0) >= nbins:
        raise ValueError("bin_index out of range")
    w = np.asarray(weights, dtype=np.float64)
    onehot = np.zeros((tree.npoints + 1, nbins))
    onehot[np.arange(1, tree.npoints + 1), bins[tree.perm]] = w[tree.perm]
    prefix = np.cumsum(onehot, axis=0)
    return prefix[tree.point_end] - prefix[tree.point_start]
