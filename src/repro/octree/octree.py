"""The array-backed octree container.

Nodes live in flat NumPy arrays (structure-of-arrays), children of a node
are contiguous, and the underlying points are permuted so every node owns a
contiguous slice -- the Python analogue of the cache-friendly layout the
paper attributes to octrees.  All per-node quantities the traversal kernels
need (cube geometry, enclosing-ball centre/radius, point slices) are plain
arrays, so the kernels can evaluate the multipole acceptance criterion for
a whole frontier of nodes in one vectorised expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Octree:
    """An adaptive octree over a fixed set of 3-D points.

    Node 0 is the root.  Children of an internal node are stored
    contiguously starting at ``first_child``; leaves have ``child_count ==
    0``.  ``perm`` maps sorted-point positions back to original point ids:
    node ``v`` owns original points ``perm[point_start[v]:point_end[v]]``.

    Attributes
    ----------
    points:
        ``(N, 3)`` the original (un-permuted) points.
    perm:
        ``(N,)`` permutation described above.
    cube_center / cube_half:
        Geometry of each node's cube.
    ball_center:
        ``(M, 3)`` geometric centre of the points under each node (this is
        the "pseudo-atom"/"pseudo-q-point" centre of paper Fig. 2).
    ball_radius:
        ``(M,)`` radius of the smallest ball centred at ``ball_center``
        containing all points under the node.
    first_child / child_count / parent / level:
        Tree topology; ``parent[0] == -1``.
    point_start / point_end:
        ``(M,)`` slice bounds into ``perm``.
    sfc / node_key:
        The space-filling curve the builder ordered children by, and the
        exact integer curve key of every node's cube
        (:func:`repro.octree.sfc.node_keys`).  Keys of disjoint cubes
        fall in disjoint curve intervals, so sorting leaves by key equals
        sorting them by ``point_start`` -- the canonical leaf order.
    compressed:
        True for trees produced by :func:`repro.octree.compress.compress`
        (single-child chains spliced out; leaf contents identical).
    """

    points: np.ndarray
    perm: np.ndarray
    cube_center: np.ndarray
    cube_half: np.ndarray
    ball_center: np.ndarray
    ball_radius: np.ndarray
    first_child: np.ndarray
    child_count: np.ndarray
    parent: np.ndarray
    level: np.ndarray
    point_start: np.ndarray
    point_end: np.ndarray
    leaf_cap: int = 0
    sfc: str = "morton"
    compressed: bool = False
    node_key: np.ndarray | None = field(default=None, repr=False)
    _leaves: np.ndarray | None = field(default=None, repr=False)
    _sorted_points: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def nnodes(self) -> int:
        """Number of octree nodes."""
        return self.cube_center.shape[0]

    @property
    def npoints(self) -> int:
        """Number of points stored in the tree."""
        return self.points.shape[0]

    @property
    def depth(self) -> int:
        """Maximum node level (root is level 0)."""
        return int(self.level.max()) if self.nnodes else 0

    def is_leaf(self, v: int | np.ndarray) -> np.ndarray | bool:
        """Whether node(s) ``v`` are leaves."""
        return self.child_count[v] == 0

    @property
    def variant(self) -> str:
        """Tree-variant fingerprint, e.g. ``"morton"`` or
        ``"hilbert+compressed"`` -- what plan metadata, plan-cache keys
        and the serve registry record so artefacts never mix variants."""
        return self.sfc + ("+compressed" if self.compressed else "")

    @property
    def leaves(self) -> np.ndarray:
        """Ids of all leaf nodes, in **canonical** (curve) order.

        Canonical = ascending ``point_start``, which for a builder-
        produced tree equals depth-first traversal order equals ascending
        SFC leaf key.  Every downstream consumer -- plan rows, partition
        segments, serve slices, the ``PUSH-INTEGRALS`` leaf tiling --
        addresses leaves through this list, so the canonical order *is*
        the cross-layer row-order contract (docs/ALGORITHMS.md).
        """
        if self._leaves is None:
            leaf_ids = np.flatnonzero(self.child_count == 0)
            self._leaves = leaf_ids[np.argsort(self.point_start[leaf_ids],
                                               kind="stable")]
        return self._leaves

    @property
    def leaf_keys(self) -> np.ndarray:
        """SFC keys of the canonical leaf list (non-decreasing)."""
        if self.node_key is None:
            raise ValueError("this tree carries no SFC keys "
                             "(hand-constructed without node_key)")
        return self.node_key[self.leaves]

    def children(self, v: int) -> np.ndarray:
        """Ids of the children of node ``v`` (empty for leaves)."""
        fc = self.first_child[v]
        return np.arange(fc, fc + self.child_count[v])

    def node_point_count(self, v: int | np.ndarray) -> np.ndarray | int:
        """Number of points under node(s) ``v``."""
        return self.point_end[v] - self.point_start[v]

    def node_points(self, v: int) -> np.ndarray:
        """Original ids of the points under node ``v``."""
        return self.perm[self.point_start[v]:self.point_end[v]]

    @property
    def sorted_points(self) -> np.ndarray:
        """Points permuted into tree order (cached); ``sorted_points[i] ==
        points[perm[i]]``.  Kernels slice this contiguously per node."""
        if self._sorted_points is None:
            self._sorted_points = np.ascontiguousarray(self.points[self.perm])
        return self._sorted_points

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def nodes_by_level(self) -> list[np.ndarray]:
        """Node ids grouped by level, root first."""
        out = []
        for lvl in range(self.depth + 1):
            out.append(np.flatnonzero(self.level == lvl))
        return out

    def leaf_of_point(self) -> np.ndarray:
        """For every original point id, the id of the leaf that owns it."""
        owner = np.empty(self.npoints, dtype=np.int64)
        for v in self.leaves:
            owner[self.perm[self.point_start[v]:self.point_end[v]]] = v
        return owner

    def ancestors(self, v: int) -> list[int]:
        """Ancestors of ``v`` from its parent up to the root."""
        out = []
        p = int(self.parent[v])
        while p != -1:
            out.append(p)
            p = int(self.parent[p])
        return out

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes of array payload -- the paper's space argument: linear in
        the point count, independent of any approximation parameter."""
        total = self.points.nbytes + self.perm.nbytes
        for arr in (self.cube_center, self.cube_half, self.ball_center,
                    self.ball_radius, self.first_child, self.child_count,
                    self.parent, self.level, self.point_start, self.point_end):
            total += arr.nbytes
        if self.node_key is not None:
            total += self.node_key.nbytes
        return int(total)

    def validate(self) -> None:
        """Structural invariants; raises AssertionError on violation.

        Used by tests and safe to call on any built tree: every node's
        slice is the concatenation of its children's slices, points lie
        inside their node's cube (within epsilon) and within the enclosing
        ball, and leaf sizes respect the cap.
        """
        assert self.point_start[0] == 0 and self.point_end[0] == self.npoints
        lv = self.leaves
        # Canonical leaves tile the sorted positions [0, N) in order --
        # the invariant PUSH-INTEGRALS' leaf-repeat and the halo
        # contiguity accounting rely on.
        assert self.point_start[lv[0]] == 0
        assert self.point_end[lv[-1]] == self.npoints
        assert np.all(self.point_end[lv[:-1]] == self.point_start[lv[1:]])
        if self.node_key is not None:
            assert np.all(np.diff(self.node_key[lv].astype(np.int64)) >= 0), \
                "leaf keys must be non-decreasing in canonical order"
        if self.compressed:
            assert not np.any(self.child_count == 1), \
                "a compressed octree has no single-child chains"
        sp = self.sorted_points
        for v in range(self.nnodes):
            s, e = self.point_start[v], self.point_end[v]
            assert s <= e
            if self.child_count[v]:
                ch = self.children(v)
                assert self.point_start[ch[0]] == s
                assert self.point_end[ch[-1]] == e
                assert np.all(self.point_end[ch[:-1]] == self.point_start[ch[1:]])
                assert np.all(self.parent[ch] == v)
            elif self.leaf_cap and e - s > self.leaf_cap:
                # Leaves may exceed the cap only at max depth (coincident
                # points); flag the common error of not splitting at all.
                assert self.level[v] > 0, "oversized root leaf"
            if e > s:
                pts = sp[s:e]
                d = np.linalg.norm(pts - self.ball_center[v], axis=1)
                assert np.all(d <= self.ball_radius[v] + 1e-9)
                assert np.all(np.abs(pts - self.cube_center[v])
                              <= self.cube_half[v] + 1e-9)
