"""Octree traversal engines.

The hot pattern shared by both of the paper's kernels (Figs. 2 and 3) is:
*for one target ball (a leaf of the other tree), walk this tree from the
root, emitting far nodes where the MAC accepts and near leaves where it
does not.*  :func:`classify_against_ball` implements that walk with a
vectorised frontier -- the whole frontier is tested against the MAC in one
NumPy expression per level, and children of rejected internal nodes are
expanded without a Python loop.

:func:`expand_children` is the shared child-expansion primitive, and
:func:`dual_tree_pairs` is a reference (slow, recursive) dual-tree
traversal used by tests to validate the vectorised engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .octree import Octree


@dataclass
class Classification:
    """Result of classifying one target ball against a tree.

    Attributes
    ----------
    far_nodes:
        Ids of maximal nodes accepted by the MAC.
    far_dist:
        Centre distances for those nodes (reused by the far-field kernels,
        saving a recomputation).
    near_leaves:
        Ids of leaves that must be handled exactly.
    nodes_visited:
        Total number of nodes the walk touched (for cost accounting).
    """

    far_nodes: np.ndarray
    far_dist: np.ndarray
    near_leaves: np.ndarray
    nodes_visited: int


def expand_children(tree: Octree, nodes: np.ndarray) -> np.ndarray:
    """All children of the given internal nodes, vectorised.

    ``nodes`` must contain only internal nodes (child_count > 0); children
    of each node are contiguous so the expansion is a strided ramp.
    """
    if len(nodes) == 0:
        return np.empty(0, dtype=np.int64)
    fc = tree.first_child[nodes]
    cc = tree.child_count[nodes]
    total = int(cc.sum())
    starts = np.repeat(fc, cc)
    # position of each output within its node's child block
    block_starts = np.repeat(np.cumsum(cc) - cc, cc)
    offsets = np.arange(total, dtype=np.int64) - block_starts
    return starts + offsets


def classify_against_ball(tree: Octree, center: np.ndarray, radius: float,
                          multiplier: float) -> Classification:
    """Walk ``tree`` against the ball ``(center, radius)`` under the MAC
    ``dist > multiplier * (r_node + radius)``.

    Returns the maximal far nodes (walk stops there) and the near leaves
    (exact work).  Every point of the tree is covered exactly once by the
    union of far nodes and near leaves -- the partition property that makes
    the far/near decomposition an unbiased splitting of the sum.
    """
    c = np.asarray(center, dtype=np.float64)
    far_nodes: list[np.ndarray] = []
    far_dist: list[np.ndarray] = []
    near_leaves: list[np.ndarray] = []
    visited = 0
    frontier = np.zeros(1, dtype=np.int64)  # root
    finite_mult = np.isfinite(multiplier)
    while frontier.size:
        visited += frontier.size
        d = np.sqrt(np.sum((tree.ball_center[frontier] - c) ** 2, axis=1))
        if finite_mult:
            far = d > multiplier * (tree.ball_radius[frontier] + radius)
        else:
            # multiplier = inf disables the MAC entirely (exact mode); the
            # plain product would turn zero-radius pairs into inf*0 = nan.
            far = np.zeros(frontier.size, dtype=bool)
        if np.any(far):
            far_nodes.append(frontier[far])
            far_dist.append(d[far])
        near = frontier[~far]
        if near.size:
            leaf = tree.child_count[near] == 0
            if np.any(leaf):
                near_leaves.append(near[leaf])
            frontier = expand_children(tree, near[~leaf])
        else:
            frontier = np.empty(0, dtype=np.int64)
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    return Classification(
        far_nodes=np.concatenate(far_nodes) if far_nodes else empty_i,
        far_dist=np.concatenate(far_dist) if far_dist else empty_f,
        near_leaves=np.concatenate(near_leaves) if near_leaves else empty_i,
        nodes_visited=visited,
    )


@dataclass
class MultiClassification:
    """CSR result of classifying many target balls in one walk.

    Row ``t`` of each CSR pair describes target ``t``:
    ``far_nodes[far_start[t]:far_start[t+1]]`` (with matching ``far_dist``)
    and ``near_leaves[near_start[t]:near_start[t+1]]``.  Within a row the
    entries appear in the exact order :func:`classify_against_ball` emits
    them (BFS level-major), so a per-row consumer reproduces the
    single-target walk bit for bit.
    """

    far_start: np.ndarray      # (T + 1,) int64
    far_nodes: np.ndarray      # (sum F_t,) int64
    far_dist: np.ndarray       # (sum F_t,) float64
    near_start: np.ndarray     # (T + 1,) int64
    near_leaves: np.ndarray    # (sum N_t,) int64
    nodes_visited: np.ndarray  # (T,) int64

    def row(self, t: int) -> Classification:
        """The single-target :class:`Classification` of row ``t``."""
        fs, fe = int(self.far_start[t]), int(self.far_start[t + 1])
        ns, ne = int(self.near_start[t]), int(self.near_start[t + 1])
        return Classification(
            far_nodes=self.far_nodes[fs:fe], far_dist=self.far_dist[fs:fe],
            near_leaves=self.near_leaves[ns:ne],
            nodes_visited=int(self.nodes_visited[t]))


def _csr_from_pairs(targets: np.ndarray, ntargets: int,
                    *payloads: np.ndarray
                    ) -> tuple[np.ndarray, ...]:
    """Group (target, payload...) pairs into CSR rows, keeping each
    target's pairs in their original (level-major) relative order."""
    order = np.argsort(targets, kind="stable")
    counts = np.bincount(targets, minlength=ntargets)
    start = np.zeros(ntargets + 1, dtype=np.int64)
    np.cumsum(counts, out=start[1:])
    return (start,) + tuple(p[order] for p in payloads)


def classify_many(tree: Octree, centers: np.ndarray, radii: np.ndarray,
                  multiplier: float) -> MultiClassification:
    """Classify many target balls against ``tree`` in one vectorised walk.

    Semantically equivalent to calling :func:`classify_against_ball` once
    per ``(centers[t], radii[t])`` -- including the per-target entry
    *order* and the bit pattern of every ``far_dist`` (the distance
    expression is evaluated elementwise exactly as in the single-target
    walk) -- but the frontier spans all targets at once, so the whole
    batch costs O(depth) NumPy passes instead of O(targets) Python
    iterations.
    """
    centers = np.asarray(centers, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    ntargets = centers.shape[0]
    far_t: list[np.ndarray] = []
    far_n: list[np.ndarray] = []
    far_d: list[np.ndarray] = []
    near_t: list[np.ndarray] = []
    near_n: list[np.ndarray] = []
    visited = np.zeros(ntargets, dtype=np.int64)
    t_ids = np.arange(ntargets, dtype=np.int64)
    nodes = np.zeros(ntargets, dtype=np.int64)  # every target at the root
    finite_mult = np.isfinite(multiplier)
    while t_ids.size:
        visited += np.bincount(t_ids, minlength=ntargets)
        d = np.sqrt(np.sum((tree.ball_center[nodes] - centers[t_ids]) ** 2,
                           axis=1))
        if finite_mult:
            far = d > multiplier * (tree.ball_radius[nodes] + radii[t_ids])
        else:
            # inf disables the MAC (exact mode); see classify_against_ball.
            far = np.zeros(t_ids.size, dtype=bool)
        if np.any(far):
            far_t.append(t_ids[far])
            far_n.append(nodes[far])
            far_d.append(d[far])
        nt, nn = t_ids[~far], nodes[~far]
        leaf = tree.child_count[nn] == 0
        if np.any(leaf):
            near_t.append(nt[leaf])
            near_n.append(nn[leaf])
        parents = nn[~leaf]
        if parents.size:
            nodes = expand_children(tree, parents)
            t_ids = np.repeat(nt[~leaf], tree.child_count[parents])
        else:
            t_ids = np.empty(0, dtype=np.int64)
            nodes = t_ids
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    ft = np.concatenate(far_t) if far_t else empty_i
    far_start, fn, fd = _csr_from_pairs(
        ft, ntargets,
        np.concatenate(far_n) if far_n else empty_i,
        np.concatenate(far_d) if far_d else empty_f)
    nt_all = np.concatenate(near_t) if near_t else empty_i
    near_start, nl = _csr_from_pairs(
        nt_all, ntargets, np.concatenate(near_n) if near_n else empty_i)
    return MultiClassification(far_start=far_start, far_nodes=fn,
                               far_dist=fd, near_start=near_start,
                               near_leaves=nl, nodes_visited=visited)


def classify_reference(tree: Octree, center: np.ndarray, radius: float,
                       multiplier: float) -> Classification:
    """Recursive scalar reference for :func:`classify_against_ball`.

    Deliberately naive; tests assert both engines emit the same partition.
    """
    c = np.asarray(center, dtype=np.float64)
    far: list[int] = []
    fdist: list[float] = []
    leaves: list[int] = []
    visited = 0

    def visit(v: int) -> None:
        nonlocal visited
        visited += 1
        d = float(np.linalg.norm(tree.ball_center[v] - c))
        if d > multiplier * (tree.ball_radius[v] + radius):
            far.append(v)
            fdist.append(d)
        elif tree.child_count[v] == 0:
            leaves.append(v)
        else:
            for ch in tree.children(v):
                visit(int(ch))

    visit(0)
    return Classification(np.asarray(far, dtype=np.int64),
                          np.asarray(fdist), np.asarray(leaves, dtype=np.int64),
                          visited)


def dual_tree_pairs(tree_a: Octree, tree_b: Octree, multiplier: float
                    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Reference dual-tree traversal in the style of the prior work ([6])
    that the paper modified: recurse on *both* trees, emitting (A, B) far
    pairs and leaf-leaf near pairs.

    Used by tests to check that the paper's single-tree-per-leaf scheme
    covers exactly the same point pairs.  Not used by the production
    kernels.
    """
    far_pairs: list[tuple[int, int]] = []
    near_pairs: list[tuple[int, int]] = []

    def visit(a: int, b: int) -> None:
        d = float(np.linalg.norm(tree_a.ball_center[a] - tree_b.ball_center[b]))
        if d > multiplier * (tree_a.ball_radius[a] + tree_b.ball_radius[b]):
            far_pairs.append((a, b))
            return
        a_leaf = tree_a.child_count[a] == 0
        b_leaf = tree_b.child_count[b] == 0
        if a_leaf and b_leaf:
            near_pairs.append((a, b))
        elif a_leaf:
            for cb in tree_b.children(b):
                visit(a, int(cb))
        elif b_leaf:
            for ca in tree_a.children(a):
                visit(int(ca), b)
        else:
            # Split the larger node, the standard balanced strategy.
            if tree_a.ball_radius[a] >= tree_b.ball_radius[b]:
                for ca in tree_a.children(a):
                    visit(int(ca), b)
            else:
                for cb in tree_b.children(b):
                    visit(a, int(cb))

    visit(0, 0)
    return far_pairs, near_pairs
