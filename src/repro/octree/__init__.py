"""Cache-friendly array-backed octrees and traversal engines."""

from .aggregate import (node_charges, node_counts, node_histograms, node_sums,
                        pseudo_normals)
from .build import build_octree
from .compress import CompressedOctree, compress
from .mac import (born_error_bound, born_mac_multiplier, epol_mac_multiplier,
                  is_far)
from .morton import decode as morton_decode
from .morton import encode as morton_encode
from .morton import sort_order as morton_sort_order
from .octree import Octree
from .partition import (imbalance, segment_by_key_range, segment_by_weight,
                        segment_leaf_bounds, segment_leaves, segment_points,
                        segment_range)
from .sfc import (SFC_KEYS, HilbertKey, MortonKey, SFCKey, get_sfc,
                  hilbert_decode, hilbert_encode)
from .transform import transformed_octree
from .traversal import (Classification, classify_against_ball,
                        classify_reference, dual_tree_pairs, expand_children)

__all__ = [
    "Classification",
    "CompressedOctree",
    "HilbertKey",
    "MortonKey",
    "Octree",
    "SFCKey",
    "SFC_KEYS",
    "born_error_bound",
    "born_mac_multiplier",
    "build_octree",
    "classify_against_ball",
    "classify_reference",
    "compress",
    "dual_tree_pairs",
    "epol_mac_multiplier",
    "expand_children",
    "get_sfc",
    "hilbert_decode",
    "hilbert_encode",
    "imbalance",
    "is_far",
    "morton_decode",
    "morton_encode",
    "morton_sort_order",
    "node_charges",
    "node_counts",
    "node_histograms",
    "node_sums",
    "pseudo_normals",
    "segment_by_key_range",
    "segment_by_weight",
    "segment_leaf_bounds",
    "segment_leaves",
    "segment_points",
    "segment_range",
    "transformed_octree",
]
