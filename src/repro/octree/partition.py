"""Work-partitioning schemes over octrees and atom ranges.

The paper's Section IV.A compares several static work-division schemes.
This module implements the primitives they are built from:

* :func:`segment_range` -- split ``[0, n)`` into ``P`` near-equal ranges
  (ATOM-BASED-WORK-DIVISION);
* :func:`segment_leaves` -- split the leaf list of an octree into ``P``
  contiguous segments balanced by the number of points under the leaves
  (NODE-BASED-WORK-DIVISION).  Leaves are in depth-first order, which is
  also space-filling-curve order, so contiguous segments are spatially
  compact -- the property the SFC load-balancing literature cited by the
  paper relies on.
"""

from __future__ import annotations

import numpy as np

from .octree import Octree


def segment_range(n: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``nparts`` contiguous near-equal pieces.

    The first ``n % nparts`` pieces get one extra element; empty pieces are
    produced when ``nparts > n`` (callers must tolerate idle workers).
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    base, extra = divmod(n, nparts)
    bounds = []
    start = 0
    for i in range(nparts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def segment_by_weight(weights: np.ndarray, nparts: int) -> list[tuple[int, int]]:
    """Split items into ``nparts`` contiguous segments with near-equal
    total ``weights``.

    Greedy prefix cut: segment ``i`` ends at the first position where the
    cumulative weight reaches ``(i+1)/nparts`` of the total.  This is the
    classic 1-D balanced-partition heuristic used for SFC-ordered octree
    leaves.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    w = np.asarray(weights, dtype=np.float64)
    n = len(w)
    if n == 0:
        return [(0, 0)] * nparts
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    cum = np.cumsum(w)
    total = cum[-1]
    if total == 0:
        return segment_range(n, nparts)
    targets = total * (np.arange(1, nparts + 1) / nparts)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    cuts = np.minimum(cuts, n)
    cuts[-1] = n
    bounds = []
    start = 0
    for c in cuts:
        end = max(int(c), start)
        bounds.append((start, end))
        start = end
    return bounds


def segment_leaf_bounds(tree: Octree, nparts: int,
                        *, balance: str = "points") -> list[tuple[int, int]]:
    """Index bounds into ``tree.leaves`` for :func:`segment_leaves`' parts.

    Exposed separately so callers holding per-leaf side arrays (cost
    profiles) can slice them with the same boundaries.
    """
    leaves = tree.leaves
    if balance == "points":
        weights = (tree.point_end[leaves] - tree.point_start[leaves]).astype(float)
        return segment_by_weight(weights, nparts)
    if balance == "count":
        return segment_range(len(leaves), nparts)
    raise ValueError(f"unknown balance mode {balance!r}")


def segment_leaves(tree: Octree, nparts: int,
                   *, balance: str = "points") -> list[np.ndarray]:
    """Split the leaves of ``tree`` into ``nparts`` contiguous segments.

    Parameters
    ----------
    tree:
        The octree whose leaves are divided.
    nparts:
        Number of segments (MPI processes).
    balance:
        ``"points"`` balances the number of points under the leaves (the
        proxy for per-leaf work the paper's static scheme uses);
        ``"count"`` balances the number of leaves.

    Returns
    -------
    list of arrays of leaf node ids, one per part (possibly empty).
    """
    bounds = segment_leaf_bounds(tree, nparts, balance=balance)
    return [tree.leaves[s:e] for s, e in bounds]


def segment_points(tree: Octree, nparts: int) -> list[np.ndarray]:
    """Split original point ids into ``nparts`` equal ranges by id --
    the paper's ATOM-BASED division.  Unlike node-based division this can
    split a tree node across parts, which is why its error drifts with
    ``nparts`` (Section IV.A); tests assert exactly that contrast."""
    return [np.arange(s, e, dtype=np.int64)
            for s, e in segment_range(tree.npoints, nparts)]


def imbalance(loads: np.ndarray) -> float:
    """Load imbalance factor ``max/mean`` (1.0 is perfect)."""
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) == 0 or loads.mean() == 0:
        return 1.0
    return float(loads.max() / loads.mean())
