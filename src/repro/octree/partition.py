"""Work-partitioning schemes over octrees and atom ranges.

The paper's Section IV.A compares several static work-division schemes.
This module implements the primitives they are built from:

* :func:`segment_range` -- split ``[0, n)`` into ``P`` near-equal ranges
  (ATOM-BASED-WORK-DIVISION);
* :func:`segment_leaves` -- split the leaf list of an octree into ``P``
  contiguous segments balanced by the number of points under the leaves
  (NODE-BASED-WORK-DIVISION).  Leaves are in canonical depth-first order,
  which is space-filling-curve key order, so contiguous segments are
  spatially compact -- the property the SFC load-balancing literature
  cited by the paper relies on;
* :func:`segment_by_key_range` -- cut a sorted SFC key sequence into
  ``P`` contiguous *key intervals*, never splitting a key value across
  parts: each rank's ownership is describable as "keys in [a, b)", the
  contract the distributed-tree fabric needs.

Documented edge-case behaviour (tested in
``tests/test_partition_edges.py``):

* ``nparts`` larger than the item count -> trailing empty ``(n, n)``
  segments (callers must tolerate idle ranks);
* an all-zero / zero-tailed weight vector -> :func:`segment_by_weight`
  falls back to count balancing for the all-zero case, and otherwise
  assigns every zero-weight tail item to the last part (greedy prefix
  cuts place cut ``i`` at the first position reaching ``(i+1)/P`` of the
  total, so trailing zeros never start a new part);
* a single item (single-leaf tree) -> the first part owns it, the rest
  are empty, under every scheme.
"""

from __future__ import annotations

import numpy as np

from .morton import BITS_PER_AXIS
from .octree import Octree


def segment_range(n: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``nparts`` contiguous near-equal pieces.

    The first ``n % nparts`` pieces get one extra element; empty pieces are
    produced when ``nparts > n`` (callers must tolerate idle workers).
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    base, extra = divmod(n, nparts)
    bounds = []
    start = 0
    for i in range(nparts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def segment_by_weight(weights: np.ndarray, nparts: int) -> list[tuple[int, int]]:
    """Split items into ``nparts`` contiguous segments with near-equal
    total ``weights``.

    Greedy prefix cut: segment ``i`` ends at the first position where the
    cumulative weight reaches ``(i+1)/nparts`` of the total.  This is the
    classic 1-D balanced-partition heuristic used for SFC-ordered octree
    leaves.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    w = np.asarray(weights, dtype=np.float64)
    n = len(w)
    if n == 0:
        return [(0, 0)] * nparts
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    cum = np.cumsum(w)
    total = cum[-1]
    if total == 0:
        return segment_range(n, nparts)
    targets = total * (np.arange(1, nparts + 1) / nparts)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    cuts = np.minimum(cuts, n)
    cuts[-1] = n
    bounds = []
    start = 0
    for c in cuts:
        end = max(int(c), start)
        bounds.append((start, end))
        start = end
    return bounds


def segment_by_key_range(keys: np.ndarray, nparts: int, *,
                         weights: np.ndarray | None = None
                         ) -> list[tuple[int, int]]:
    """Split a non-decreasing key sequence into ``nparts`` contiguous
    segments that are each a *key interval*: items with equal keys are
    never split across parts, so every part's ownership can be published
    as a closed key range -- the prerequisite for contiguous,
    cache-friendly per-rank ownership of SFC-ordered octree leaves.

    Parameters
    ----------
    keys:
        ``(n,)`` non-decreasing (canonical-leaf-order) SFC keys.
    weights:
        Optional non-negative per-item work weights.  When given, cut
        positions come from the greedy weighted prefix cut
        (:func:`segment_by_weight`) and are then snapped *forward* to the
        next key change; without weights, items are count-balanced under
        the same snapping.  Snapping is what key-interval ownership costs
        relative to the exact row-weight balancer -- the benchmark
        ``benchmarks/test_sfc_partition.py`` measures exactly that gap.

    Returns
    -------
    ``nparts`` ``(start, end)`` index bounds covering ``[0, n)`` in
    order, possibly with empty trailing parts.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    k = np.asarray(keys)
    n = len(k)
    if n == 0:
        return [(0, 0)] * nparts
    if np.any(k[1:] < k[:-1]):
        raise ValueError("keys must be non-decreasing (canonical leaf order)")
    w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
    if len(w) != n:
        raise ValueError("weights must match keys in length")
    raw = segment_by_weight(w, nparts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for _, cut in raw:
        # Snap forward so equal keys stay together; the final cut is
        # already n and snaps to itself.
        end = int(np.searchsorted(k, k[cut - 1], side="right")) \
            if 0 < cut < n else cut
        end = max(end, start)
        bounds.append((start, end))
        start = end
    bounds[-1] = (bounds[-1][0], n)
    return bounds


def coarsen_keys(keys: np.ndarray, nparts: int, *,
                 blocks_per_part: int = 4) -> np.ndarray:
    """Coarsen full-depth SFC keys to the shallowest refinement level that
    still yields about ``blocks_per_part`` distinct key blocks per part.

    SFC keys are hierarchical: the top ``3 * level`` bits of a full-depth
    (63-bit) key identify the depth-``level`` curve cell containing the
    point, so a right shift groups items into aligned curve blocks.
    Cutting coarsened keys with :func:`segment_by_key_range` produces
    block-aligned ownership intervals -- each rank owns whole coarse
    cells, publishable as a short key range -- at the price of coarser
    cut granularity versus the exact weight balancer.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    k = np.asarray(keys, dtype=np.uint64)
    if len(k) == 0:
        return k
    target = min(len(np.unique(k)), blocks_per_part * nparts)
    for level in range(1, BITS_PER_AXIS + 1):
        blocks = k >> np.uint64(3 * (BITS_PER_AXIS - level))
        if len(np.unique(blocks)) >= target:
            return blocks
    return k


def segment_leaf_bounds(tree: Octree, nparts: int,
                        *, balance: str = "points") -> list[tuple[int, int]]:
    """Index bounds into ``tree.leaves`` for :func:`segment_leaves`' parts.

    Exposed separately so callers holding per-leaf side arrays (cost
    profiles) can slice them with the same boundaries.
    """
    leaves = tree.leaves
    if balance == "points":
        weights = (tree.point_end[leaves] - tree.point_start[leaves]).astype(float)
        return segment_by_weight(weights, nparts)
    if balance == "count":
        return segment_range(len(leaves), nparts)
    raise ValueError(f"unknown balance mode {balance!r}")


def segment_leaves(tree: Octree, nparts: int,
                   *, balance: str = "points") -> list[np.ndarray]:
    """Split the leaves of ``tree`` into ``nparts`` contiguous segments.

    Parameters
    ----------
    tree:
        The octree whose leaves are divided.
    nparts:
        Number of segments (MPI processes).
    balance:
        ``"points"`` balances the number of points under the leaves (the
        proxy for per-leaf work the paper's static scheme uses);
        ``"count"`` balances the number of leaves.

    Returns
    -------
    list of arrays of leaf node ids, one per part (possibly empty).
    """
    bounds = segment_leaf_bounds(tree, nparts, balance=balance)
    return [tree.leaves[s:e] for s, e in bounds]


def segment_points(tree: Octree, nparts: int) -> list[np.ndarray]:
    """Split original point ids into ``nparts`` equal ranges by id --
    the paper's ATOM-BASED division.  Unlike node-based division this can
    split a tree node across parts, which is why its error drifts with
    ``nparts`` (Section IV.A); tests assert exactly that contrast."""
    return [np.arange(s, e, dtype=np.int64)
            for s, e in segment_range(tree.npoints, nparts)]


def imbalance(loads: np.ndarray) -> float:
    """Load imbalance factor ``max/mean`` (1.0 is perfect)."""
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) == 0 or loads.mean() == 0:
        return 1.0
    return float(loads.max() / loads.mean())
