"""Rigid-body transforms of built octrees.

Paper Section IV.C: "for drug-design and docking where we need to place the
ligand at thousands of different positions w.r.t. the receptor, we can move
the same octree to different positions or rotate it as needed by
multiplying with proper transformation matrices" -- i.e. octree
construction is a pre-processing cost paid once per rigid body.

A rigid transform preserves everything the traversal kernels consume:
topology, point slices, enclosing-ball radii (rotation-invariant) and ball
centres (transformed along with the points).  The axis-aligned cube
geometry is only exact for pure translations; after a rotation the stored
cubes are bounding *approximations* (still valid balls-wise), which is fine
because the MAC only uses balls.

SFC addressing (``sfc``/``compressed``/``node_key`` and with them the
canonical leaf order) is copied through unchanged: the canonical order is
fixed at build time in the *build frame*, and since a rigid transform
permutes neither nodes nor point slices, the carried keys remain a valid
-- merely no longer geometry-aligned -- total order over the transformed
tree's leaves.  Plans and partitions keyed against the original tree
stay valid verbatim.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .octree import Octree


def transformed_octree(tree: Octree, *, rotation: np.ndarray | None = None,
                       translation: np.ndarray | None = None,
                       pivot: np.ndarray | None = None) -> Octree:
    """Return a copy of ``tree`` under ``x -> R (x - pivot) + pivot + t``.

    Parameters
    ----------
    tree:
        A built octree.
    rotation:
        Optional 3x3 orthogonal matrix ``R``.
    translation:
        Optional length-3 offset ``t``.
    pivot:
        Rotation pivot; defaults to the root's ball centre (so a pure
        rotation spins the molecule in place).
    """
    if rotation is None and translation is None:
        raise ValueError("provide a rotation and/or a translation")
    rot = None
    if rotation is not None:
        rot = np.asarray(rotation, dtype=np.float64)
        if rot.shape != (3, 3):
            raise ValueError("rotation must be 3x3")
        if not np.allclose(rot @ rot.T, np.eye(3), atol=1e-8):
            raise ValueError("rotation must be orthogonal")
    t = np.zeros(3) if translation is None else np.asarray(translation, dtype=np.float64)
    if t.shape != (3,):
        raise ValueError("translation must be length 3")
    p = tree.ball_center[0] if pivot is None else np.asarray(pivot, dtype=np.float64)

    def apply(x: np.ndarray) -> np.ndarray:
        if rot is not None:
            return (x - p) @ rot.T + p + t
        return x + t

    return replace(
        tree,
        points=apply(tree.points),
        cube_center=apply(tree.cube_center),
        ball_center=apply(tree.ball_center),
        perm=tree.perm.copy(),
        ball_radius=tree.ball_radius.copy(),
        _sorted_points=None,
        _leaves=None,
    )
