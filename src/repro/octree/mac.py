"""Multipole acceptance criteria (MAC) for the two traversals.

Both criteria come straight from the paper:

* **Born-radii MAC** (Section II / Fig. 2): nodes ``A`` (atoms) and ``Q``
  (quadrature points) are *far* when

  .. math:: r_{AQ} > (r_A + r_Q) \\cdot \\frac{\\kappa + 1}{\\kappa - 1},
            \\qquad \\kappa = (1 + \\epsilon)^{1/6}.

  Equivalently ``(r_AQ + s) / (r_AQ - s) <= kappa`` with ``s = r_A + r_Q``:
  the ratio of the largest to the smallest possible point-pair distance is
  at most ``kappa``, so every term ``1/d^6`` in the cell-cell sum is within
  a factor ``(1+eps)`` of the value at the centre distance.  (The poster's
  Fig. 2 pseudo-code prints the comparison with ``>``; the prose in
  Section II gives the distance form we implement, and only that direction
  yields a bounded-error far-field rule.)

* **Energy MAC** (Fig. 3): ``U`` and ``V`` are far when
  ``r_UV > (r_U + r_V) * (1 + 2/eps)``.

Larger ``eps`` accepts more node pairs as far, trading accuracy for speed
(paper Section V.E).
"""

from __future__ import annotations

import numpy as np


def born_mac_multiplier(eps: float, *, variant: str = "practical") -> float:
    """The separation multiplier of the Born MAC.

    Two variants are provided because the paper's prose and its measured
    performance point at different criteria:

    * ``"theory"`` -- the Section II formula with ``kappa = (1+eps)^(1/6)``:
      multiplier ``(kappa+1)/(kappa-1)`` (18.7 at eps = 0.9).  This bounds
      every far term's *worst-case* relative error by ``eps``, but it is so
      strict that on the 509,640-atom CMV shell it leaves ~220G exact pairs
      -- tens of minutes on 12 Westmere cores, irreconcilable with the
      paper's measured 12.5 s (Fig. 11).
    * ``"practical"`` (default) -- ``kappa = 1 + eps``: multiplier
      ``(2+eps)/eps`` (3.2 at eps = 0.9), the same form as Fig. 3's energy
      MAC ``1 + 2/eps``.  The per-term worst-case bound is looser, but the
      centroid (pseudo-point) approximation's *actual* error is O((s/d)^2)
      with heavy cancellation, and measured energies stay well under 1% --
      matching both the paper's accuracy and its speed.

    See DESIGN.md for the full argument.
    """
    if eps <= 0:
        raise ValueError("eps must be positive (eps -> 0 disables approximation)")
    if variant == "practical":
        kappa = 1.0 + eps
    elif variant == "theory":
        kappa = (1.0 + eps) ** (1.0 / 6.0)
    else:
        raise ValueError(f"unknown Born MAC variant {variant!r}")
    return (kappa + 1.0) / (kappa - 1.0)


def epol_mac_multiplier(eps: float) -> float:
    """The separation multiplier ``1 + 2/eps`` of the energy MAC."""
    if eps <= 0:
        raise ValueError("eps must be positive (eps -> 0 disables approximation)")
    return 1.0 + 2.0 / eps


def is_far(dist: np.ndarray, radius_a: np.ndarray, radius_b: np.ndarray,
           multiplier: float) -> np.ndarray:
    """Vectorised far test: ``dist > multiplier * (radius_a + radius_b)``.

    ``multiplier`` is always > 1 for valid ``eps``, so a far pair is also
    guaranteed non-overlapping (``dist > radius_a + radius_b``), which the
    pseudo-code checks separately.
    """
    return dist > multiplier * (radius_a + radius_b)


def born_error_bound(eps: float) -> float:
    """Worst-case relative error of one far-field ``1/d^6`` term under the
    Born MAC: the MAC guarantees ``(d_max/d_min)^6 <= 1 + eps``, so each
    term is within ``eps`` relative error of the truth."""
    return float(eps)
