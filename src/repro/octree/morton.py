"""3-D Morton (Z-order) codes.

Morton codes linearise 3-D space along a space-filling curve.  The package
uses them in two places: as an optional pre-sort that makes octree
construction touch memory sequentially, and as the basis of the
space-filling-curve partitioner cited by the paper's load-balancing
discussion (Campbell et al., "Dynamic octree load balancing using
space-filling curves").

Codes are 63-bit: 21 bits per axis, interleaved x-y-z with x in the lowest
bit of each triple.
"""

from __future__ import annotations

import numpy as np

#: Bits per axis; 3*21 = 63 bits fits a signed int64.
BITS_PER_AXIS = 21

_MASKS = (
    (0x1FFFFF, 0),
    (0x1F00000000FFFF, 32),
    (0x1F0000FF0000FF, 16),
    (0x100F00F00F00F00F, 8),
    (0x10C30C30C30C30C3, 4),
    (0x1249249249249249, 2),
)


def _spread_bits(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value so consecutive bits land three
    apart (the classic magic-mask dilation)."""
    x = v.astype(np.uint64)
    for mask, shift in zip(
        (m for m, _ in _MASKS[1:]), (s for _, s in _MASKS[1:])
    ):
        x = (x | (x << np.uint64(shift))) & np.uint64(mask)
    return x


def _compact_bits(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    x = v.astype(np.uint64) & np.uint64(_MASKS[-1][0])
    for (mask, _), (_, shift) in zip(reversed(_MASKS[:-1]), reversed(_MASKS[1:])):
        x = (x ^ (x >> np.uint64(shift))) & np.uint64(mask)
    return x


def quantize(points: np.ndarray, origin: np.ndarray, extent: float) -> np.ndarray:
    """Quantise points in the cube ``[origin, origin+extent]^3`` onto the
    21-bit integer lattice, shape ``(N, 3)`` uint64."""
    pts = np.asarray(points, dtype=np.float64)
    if extent <= 0:
        raise ValueError("extent must be positive")
    scale = (2 ** BITS_PER_AXIS - 1) / extent
    q = np.floor((pts - np.asarray(origin)) * scale)
    q = np.clip(q, 0, 2 ** BITS_PER_AXIS - 1)
    return q.astype(np.uint64)


def encode(points: np.ndarray, origin: np.ndarray | None = None,
           extent: float | None = None) -> np.ndarray:
    """Morton codes for ``points``, shape ``(N,)`` uint64.

    ``origin``/``extent`` default to the points' bounding cube.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError("points must be (N, 3)")
    if len(pts) == 0:
        return np.empty(0, dtype=np.uint64)
    if origin is None:
        origin = pts.min(axis=0)
    if extent is None:
        extent = float(max((pts.max(axis=0) - origin).max(), 1e-12))
    q = quantize(pts, np.asarray(origin), extent)
    return (_spread_bits(q[:, 0])
            | (_spread_bits(q[:, 1]) << np.uint64(1))
            | (_spread_bits(q[:, 2]) << np.uint64(2)))


def decode(codes: np.ndarray) -> np.ndarray:
    """Recover the quantised integer lattice coordinates from codes,
    shape ``(N, 3)`` uint64."""
    c = np.asarray(codes, dtype=np.uint64)
    return np.column_stack([
        _compact_bits(c),
        _compact_bits(c >> np.uint64(1)),
        _compact_bits(c >> np.uint64(2)),
    ])


def sort_order(points: np.ndarray) -> np.ndarray:
    """Permutation that orders ``points`` along the Morton curve."""
    return np.argsort(encode(points), kind="stable")
