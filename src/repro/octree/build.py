"""Top-down adaptive octree construction.

The builder partitions points octant-by-octant with vectorised NumPy
per-node work, maintaining a permutation so that every node owns a
contiguous slice of the point array.  Construction is O(N log N) -- the
pre-processing cost the paper's complexity analysis (Section IV.C) assigns
to Step 1 and then amortises away across docking poses.

Children are appended in *space-filling-curve order* (``sfc=``): Morton
order is the seed behaviour (octant code order, bit for bit), Hilbert
order visits octants along the Hilbert curve so that the leaf list -- and
with it every plan row, partition segment and serve slice downstream --
is contiguous in Hilbert key space.  Every node also carries its exact
integer curve key (``Octree.node_key``), derived from lattice anchors
with no float quantisation, so workers rebuilding the tree from shared
coordinates get identical keys.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_LEAF_CAP
from .octree import Octree
from .sfc import get_sfc, node_keys

#: Cube half-sizes below this are never split further (protects against
#: coincident points driving unbounded depth).
MIN_CUBE_HALF = 1e-8


def build_octree(points: np.ndarray, *, leaf_cap: int = DEFAULT_LEAF_CAP,
                 min_half: float = MIN_CUBE_HALF,
                 sfc: str = "morton") -> Octree:
    """Build an adaptive octree over ``points``.

    Parameters
    ----------
    points:
        ``(N, 3)`` point coordinates; at least one point.
    leaf_cap:
        Maximum number of points in a leaf (nodes at the minimum cube size
        may exceed it when points coincide).
    min_half:
        Minimum cube half-extent; smaller cubes are not subdivided.
    sfc:
        Space-filling curve ordering the children of every split
        (``"morton"`` or ``"hilbert"``; see :mod:`repro.octree.sfc`).
        ``"morton"`` reproduces the seed construction bit for bit.  The
        curve never changes *which* nodes exist or which points share a
        leaf -- only the order sibling subtrees (and the points under
        them) are laid out in.

    Returns
    -------
    Octree
        With per-node geometry, enclosing balls, contiguous point slices
        and exact integer curve keys (``node_key``).
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError("points must be (N, 3)")
    n = pts.shape[0]
    if n == 0:
        raise ValueError("cannot build an octree over zero points")
    if leaf_cap < 1:
        raise ValueError("leaf_cap must be >= 1")
    curve = get_sfc(sfc)

    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    root_center = 0.5 * (lo + hi)
    root_half = float(max(0.5 * (hi - lo).max(), min_half))

    perm = np.arange(n, dtype=np.int64)
    sorted_pts = pts.copy()

    cube_center: list[np.ndarray] = [root_center]
    cube_half: list[float] = [root_half]
    ball_center: list[np.ndarray] = []
    ball_radius: list[float] = []
    first_child: list[int] = [-1]
    child_count: list[int] = [0]
    parent: list[int] = [-1]
    level: list[int] = [0]
    point_start: list[int] = [0]
    point_end: list[int] = [n]
    #: Integer lattice anchor of each node's cube at its own level.
    anchor: list[tuple[int, int, int]] = [(0, 0, 0)]

    # Child cube centre offsets indexed by octant code bit pattern
    # (bit0 -> +x, bit1 -> +y, bit2 -> +z).
    octant_sign = np.array([[(1 if code & 1 else -1),
                             (1 if code & 2 else -1),
                             (1 if code & 4 else -1)] for code in range(8)],
                           dtype=np.float64)
    morton_order = sfc == "morton"

    head = 0  # next unprocessed node id (the work queue is the node list)
    while head < len(cube_center):
        v = head
        head += 1
        s, e = point_start[v], point_end[v]
        count = e - s
        slice_pts = sorted_pts[s:e]

        centroid = slice_pts.mean(axis=0)
        ball_center.append(centroid)
        ball_radius.append(float(np.sqrt(
            np.max(np.sum((slice_pts - centroid) ** 2, axis=1)))))

        half = cube_half[v]
        if count <= leaf_cap or half <= min_half:
            continue  # leaf

        center = cube_center[v]
        codes = ((slice_pts[:, 0] > center[0]).astype(np.int8)
                 | ((slice_pts[:, 1] > center[1]).astype(np.int8) << 1)
                 | ((slice_pts[:, 2] > center[2]).astype(np.int8) << 2))
        if morton_order:
            # Seed path, byte for byte: octant code order == Morton order.
            visit = range(8)
            order = np.argsort(codes, kind="stable")
        else:
            corder = curve.child_order(anchor[v], level[v])
            rank = np.empty(8, dtype=np.int8)
            rank[corder] = np.arange(8, dtype=np.int8)
            visit = [int(c) for c in corder]
            order = np.argsort(rank[codes], kind="stable")
        perm[s:e] = perm[s:e][order]
        sorted_pts[s:e] = slice_pts[order]
        counts = np.bincount(codes, minlength=8)

        first_child[v] = len(cube_center)
        offset = s
        nchildren = 0
        child_half = 0.5 * half
        ax, ay, az = anchor[v]
        for code in visit:
            c = int(counts[code])
            if c == 0:
                continue
            cube_center.append(center + child_half * octant_sign[code])
            cube_half.append(child_half)
            first_child.append(-1)
            child_count.append(0)
            parent.append(v)
            level.append(level[v] + 1)
            point_start.append(offset)
            point_end.append(offset + c)
            anchor.append((2 * ax + (code & 1), 2 * ay + ((code >> 1) & 1),
                           2 * az + ((code >> 2) & 1)))
            offset += c
            nchildren += 1
        child_count[v] = nchildren

    levels = np.asarray(level, dtype=np.int64)
    return Octree(
        points=pts,
        perm=perm,
        cube_center=np.asarray(cube_center),
        cube_half=np.asarray(cube_half, dtype=np.float64),
        ball_center=np.asarray(ball_center),
        ball_radius=np.asarray(ball_radius, dtype=np.float64),
        first_child=np.asarray(first_child, dtype=np.int64),
        child_count=np.asarray(child_count, dtype=np.int64),
        parent=np.asarray(parent, dtype=np.int64),
        level=levels,
        point_start=np.asarray(point_start, dtype=np.int64),
        point_end=np.asarray(point_end, dtype=np.int64),
        leaf_cap=leaf_cap,
        sfc=sfc,
        node_key=node_keys(curve, np.asarray(anchor, dtype=np.uint64),
                           levels),
        _sorted_points=sorted_pts,
    )
