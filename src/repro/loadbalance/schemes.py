"""Work-division schemes and their accuracy/imbalance behaviour.

Section IV.A of the paper compares dividing octree *leaf nodes* across
processes (node-based) with dividing *atoms* (or q-points) by index range
(atom-based), and reports two findings this module reproduces:

* atom-based division is slightly slower (split tree nodes are visited by
  two ranks), and
* atom-based division's **error changes with the number of processes**
  even at fixed approximation parameters, while node-based division's
  error is exactly constant.

The mechanism for the second point: when an index range splits a leaf,
each rank treats *its fragment* of the leaf as the traversal target, and a
fragment has its own enclosing ball -- so the MAC accepts different node
pairs at different ``P``, changing which interactions are approximated.
Node-based division always hands a whole leaf (a fixed ball) to exactly
one rank, so the set of MAC decisions -- and hence the approximation --
is ``P``-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.energy import EnergyContext, epol_from_pair_sum
from ..core.gbmodels import f_gb
from ..core.integrals import pair_distance_sq
from ..core.born import _slice_concat
from ..octree.mac import epol_mac_multiplier
from ..octree.partition import segment_range
from ..octree.traversal import classify_against_ball
from ..runtime.instrument import WorkCounters

#: Scheme identifiers of Section IV.A.
NODE_NODE = "node-node"
ATOM_ATOM = "atom-atom"
#: Plan-driven variant of node-based division: same whole-leaf targets,
#: but ranks cut cached interaction-plan rows by exact pair counts.
NODE_PLAN = "node-plan"
#: Key-interval variant of node-plan: the same weighted cuts, snapped to
#: coarse SFC key blocks so each rank owns a contiguous curve-key range.
KEY_RANGE = "key-range"


@dataclass
class DivisionRun:
    """Result of evaluating the energy under one division scheme."""

    scheme: str
    nparts: int
    energy: float
    counters: WorkCounters
    per_rank_pairs: np.ndarray  # exact pairs per rank (imbalance metric)


def epol_node_division(ctx: EnergyContext, nparts: int, eps: float,
                       epsilon_solvent: float) -> DivisionRun:
    """Node-based energy division (the paper's scheme; exact wrapper over
    :func:`repro.core.energy.approx_epol` per segment)."""
    from ..core.energy import approx_epol
    from ..octree.partition import segment_leaves

    total = 0.0
    counters = WorkCounters()
    per_rank = np.zeros(nparts)
    for rank, leaves in enumerate(segment_leaves(ctx.atoms.tree, nparts)):
        partial = approx_epol(ctx, leaves, eps)
        total += partial.pair_sum
        per_rank[rank] = partial.counters.exact_pairs
        counters.add(partial.counters)
    return DivisionRun(NODE_NODE, nparts,
                       epol_from_pair_sum(total, epsilon_solvent=epsilon_solvent),
                       counters, per_rank)


def epol_plan_division(ctx: EnergyContext, nparts: int, eps: float,
                       epsilon_solvent: float, *,
                       plan=None) -> DivisionRun:
    """Node-based division over cached interaction-plan rows.

    Same whole-leaf targets as :func:`epol_node_division` -- so the MAC
    decisions, and hence the energy, are exactly ``P``-independent -- but
    ranks are assigned contiguous *plan-row* segments cut by the plan's
    exact per-row pair counts instead of a point-count proxy, and each
    rank's work is a batched executor call over its row range.
    """
    from ..octree.partition import segment_by_weight
    from ..plan import build_epol_plan, execute_epol_plan

    if plan is None:
        plan = build_epol_plan(ctx.atoms, eps)
    bounds = segment_by_weight(
        plan.row_pair_weights(nbins=ctx.binning.nbins), nparts)
    total = 0.0
    counters = WorkCounters()
    per_rank = np.zeros(nparts)
    for rank, (lo, hi) in enumerate(bounds):
        partial = execute_epol_plan(plan, ctx, row_range=(lo, hi))
        total += partial.pair_sum
        per_rank[rank] = partial.counters.exact_pairs
        counters.add(partial.counters)
    return DivisionRun(NODE_PLAN, nparts,
                       epol_from_pair_sum(total, epsilon_solvent=epsilon_solvent),
                       counters, per_rank)


def epol_key_range_division(ctx: EnergyContext, nparts: int, eps: float,
                            epsilon_solvent: float, *,
                            plan=None) -> DivisionRun:
    """Node-based division with contiguous *SFC key-interval* ownership.

    Same whole-leaf plan rows as :func:`epol_plan_division` (so the MAC
    decisions and the energy stay exactly ``P``-independent), but the
    weighted cuts are snapped to coarse curve-key blocks
    (:func:`repro.octree.partition.coarsen_keys` +
    :func:`repro.octree.partition.segment_by_key_range`): every rank's
    ownership is publishable as one key range.  The imbalance gap versus
    :func:`epol_plan_division` is the price of that alignment --
    ``benchmarks/test_sfc_partition.py`` measures it per SFC variant.
    """
    from ..octree.partition import coarsen_keys, segment_by_key_range
    from ..plan import build_epol_plan, execute_epol_plan

    if plan is None:
        plan = build_epol_plan(ctx.atoms, eps)
    tree = ctx.atoms.tree
    if tree.node_key is None:
        raise ValueError("key-range division needs a tree with SFC node "
                         "keys (build_octree always sets them)")
    keys = coarsen_keys(tree.node_key[plan.target_leaves], nparts)
    bounds = segment_by_key_range(
        keys, nparts, weights=plan.row_pair_weights(nbins=ctx.binning.nbins))
    total = 0.0
    counters = WorkCounters()
    per_rank = np.zeros(nparts)
    for rank, (lo, hi) in enumerate(bounds):
        partial = execute_epol_plan(plan, ctx, row_range=(lo, hi))
        total += partial.pair_sum
        per_rank[rank] = partial.counters.exact_pairs
        counters.add(partial.counters)
    return DivisionRun(KEY_RANGE, nparts,
                       epol_from_pair_sum(total, epsilon_solvent=epsilon_solvent),
                       counters, per_rank)


def epol_atom_division(ctx: EnergyContext, nparts: int, eps: float,
                       epsilon_solvent: float) -> DivisionRun:
    """Atom-based energy division: rank ``i`` computes the interactions of
    the ``i``-th index range of (tree-sorted) atoms against the whole
    octree.

    Leaf fragments are the traversal targets; their balls -- and thus the
    MAC decisions -- depend on where the range boundaries fall, which is
    exactly why the paper found this scheme's error drifting with ``P``.
    """
    tree = ctx.atoms.tree
    mult = epol_mac_multiplier(eps)
    pos = tree.sorted_points
    charges = ctx.atoms.sorted_charges
    born = ctx.born_sorted
    nbins = ctx.binning.nbins
    bins_sorted = ctx.binning.bin_index  # built from sorted radii
    pair_r2 = ctx.pair_radius_sq
    leaves = tree.leaves
    leaf_start = tree.point_start[leaves]
    leaf_end = tree.point_end[leaves]

    total = 0.0
    counters = WorkCounters()
    per_rank = np.zeros(nparts)
    for rank, (lo, hi) in enumerate(segment_range(tree.npoints, nparts)):
        if hi <= lo:
            continue
        rank_pairs = 0
        # Leaves overlapping this rank's atom range.
        overlap = np.flatnonzero((leaf_start < hi) & (leaf_end > lo))
        for li in overlap:
            vs = max(int(leaf_start[li]), lo)
            ve = min(int(leaf_end[li]), hi)
            frag = pos[vs:ve]
            center = frag.mean(axis=0)
            radius = float(np.sqrt(np.max(np.sum((frag - center) ** 2,
                                                 axis=1))))
            cls = classify_against_ball(tree, center, radius, mult)
            counters.nodes_visited += cls.nodes_visited
            if cls.far_nodes.size:
                q_u = ctx.node_hist[cls.far_nodes]
                # Fragment histogram: only this rank's atoms of the leaf.
                q_v = np.bincount(bins_sorted[vs:ve],
                                  weights=charges[vs:ve],
                                  minlength=nbins)
                d2 = (cls.far_dist ** 2)[:, None, None]
                f = f_gb(d2, pair_r2[None, :, :])
                total += float(np.einsum("fi,j,fij->", q_u, q_v, 1.0 / f))
                counters.far_evals += cls.far_nodes.size
                counters.hist_pairs += cls.far_nodes.size * nbins * nbins
            if cls.near_leaves.size:
                idx = _slice_concat(tree, cls.near_leaves)
                r2, _, _ = pair_distance_sq(pos[idx], frag)
                f = f_gb(r2, born[idx][:, None] * born[vs:ve][None, :])
                total += float(np.sum(charges[idx][:, None]
                                      * charges[vs:ve][None, :] / f))
                counters.exact_pairs += idx.size * (ve - vs)
                rank_pairs += idx.size * (ve - vs)
        per_rank[rank] = rank_pairs
    return DivisionRun(ATOM_ATOM, nparts,
                       epol_from_pair_sum(total, epsilon_solvent=epsilon_solvent),
                       counters, per_rank)


def division_error_stability(ctx: EnergyContext, eps: float,
                             epsilon_solvent: float,
                             part_counts: list[int]) -> dict[str, list[float]]:
    """Energies of both schemes across ``part_counts`` -- the Section IV.A
    comparison.  Node-based values are all identical; atom-based values
    wander."""
    return {
        NODE_NODE: [epol_node_division(ctx, p, eps, epsilon_solvent).energy
                    for p in part_counts],
        ATOM_ATOM: [epol_atom_division(ctx, p, eps, epsilon_solvent).energy
                    for p in part_counts],
    }
