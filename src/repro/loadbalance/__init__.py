"""Work-division schemes of Section IV.A and their diagnostics."""

from .analysis import DivisionComparison, compare_runs, energy_spread
from .schemes import (ATOM_ATOM, KEY_RANGE, NODE_NODE, NODE_PLAN,
                      DivisionRun, division_error_stability,
                      epol_atom_division, epol_key_range_division,
                      epol_node_division, epol_plan_division)

__all__ = [
    "ATOM_ATOM",
    "DivisionComparison",
    "DivisionRun",
    "KEY_RANGE",
    "NODE_NODE",
    "NODE_PLAN",
    "compare_runs",
    "division_error_stability",
    "energy_spread",
    "epol_atom_division",
    "epol_key_range_division",
    "epol_node_division",
    "epol_plan_division",
]
