"""Imbalance and stability diagnostics for work-division schemes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..octree.partition import imbalance
from .schemes import DivisionRun


@dataclass(frozen=True)
class DivisionComparison:
    """Side-by-side diagnostics of two scheme runs on the same input."""

    scheme_a: str
    scheme_b: str
    imbalance_a: float
    imbalance_b: float
    pairs_a: int
    pairs_b: int

    @property
    def extra_work_fraction(self) -> float:
        """Fractional extra exact work of scheme B over scheme A (the
        paper: atom-based division 'takes slightly more time')."""
        if self.pairs_a == 0:
            return 0.0
        return (self.pairs_b - self.pairs_a) / self.pairs_a


def compare_runs(a: DivisionRun, b: DivisionRun) -> DivisionComparison:
    """Compare the load balance and total work of two division runs."""
    return DivisionComparison(
        scheme_a=a.scheme, scheme_b=b.scheme,
        imbalance_a=imbalance(a.per_rank_pairs),
        imbalance_b=imbalance(b.per_rank_pairs),
        pairs_a=int(a.counters.exact_pairs),
        pairs_b=int(b.counters.exact_pairs),
    )


def energy_spread(energies: list[float]) -> float:
    """Relative spread ``(max - min) / |mean|`` of energies across part
    counts: 0 for node-based division, > 0 for atom-based."""
    arr = np.asarray(energies, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no energies")
    mean = arr.mean()
    if mean == 0:
        raise ValueError("zero mean energy")
    return float((arr.max() - arr.min()) / abs(mean))
