"""Fixed-width table rendering for benchmark output.

The benchmark harness regenerates the paper's tables/figures as printed
rows; this renderer keeps them legible in pytest output and in the
EXPERIMENTS.md transcripts.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    """Human formatting: seconds with sensible precision, floats trimmed."""
    if isinstance(value, float):
        if value != value:  # nan
            return "--"
        if value == float("inf"):
            return "OOM"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str | None = None) -> str:
    """Render an aligned fixed-width text table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
