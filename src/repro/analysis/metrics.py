"""Speedup/efficiency summaries used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def speedup(reference_seconds: float, seconds: float) -> float:
    """``reference / measured`` (how many times faster than reference)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return reference_seconds / seconds


def parallel_efficiency(t1: float, tp: float, cores: int) -> float:
    """``T_1 / (p * T_p)``."""
    if tp <= 0 or cores < 1:
        raise ValueError("invalid inputs")
    return t1 / (cores * tp)


@dataclass(frozen=True)
class Series:
    """One labelled (x, y) series of an experiment figure."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have equal length")

    @classmethod
    def build(cls, label: str, x, y) -> "Series":
        return cls(label, tuple(float(v) for v in x),
                   tuple(float(v) for v in y))

    def min_y(self) -> float:
        return min(self.y)

    def max_y(self) -> float:
        return max(self.y)


def crossover_x(a: Series, b: Series) -> float | None:
    """The first x past which series ``a`` stays at or below ``b``
    (linear scan on the shared grid); None if never."""
    if a.x != b.x:
        raise ValueError("series must share an x grid")
    for i in range(len(a.x)):
        if all(ya <= yb for ya, yb in zip(a.y[i:], b.y[i:])):
            return a.x[i]
    return None


def geometric_mean(values) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        raise ValueError("values must be positive and non-empty")
    return float(np.exp(np.mean(np.log(arr))))
