"""Result analysis: speedups, series, crossovers, table rendering."""

from .metrics import (Series, crossover_x, geometric_mean,
                      parallel_efficiency, speedup)
from .tables import format_cell, render_table

__all__ = [
    "Series",
    "crossover_x",
    "format_cell",
    "geometric_mean",
    "parallel_efficiency",
    "render_table",
    "speedup",
]
