"""Serving metrics: latency, throughput, batching and cache accounting.

This module is the serving subsystem's **only** wall-clock reader.
repro-lint's REP003 gives every file under ``repro/serve/`` the
``service`` role, which bans direct ``time.*`` calls; ``serve/metrics.py``
is the single exempted clock home (see
:data:`repro.analysis_static.rules.CLOCK_HOME_FILES`).  Every other serve
module -- scheduler deadlines, worker evaluation spans, CLI wall time --
takes timestamps through :func:`now`, so all latency accounting flows
through one auditable door and none of it can leak into the deterministic
energy path.

:class:`ServeMetrics` is thread-safe: client threads record admissions,
the scheduler thread records batches and completions, and
:meth:`ServeMetrics.snapshot` may be read at any time.

The clock is *injectable* (``ServeMetrics(clock=...)``): a single-node
server defaults to :func:`now`, while the cluster fabric
(:mod:`repro.cluster`) hands every shard's metrics the same cluster
clock so per-shard spans are mutually coherent and
:meth:`ServeMetrics.merge` can aggregate them into one report
(counters summed, percentiles over the merged samples, span endpoints
min/max across shards).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..analysis_static.verify.annotations import declares_effects


@declares_effects("CLOCK")
def now() -> float:
    """Monotonic wall-clock seconds (the serving layer's latency clock)."""
    return time.perf_counter()


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 < q <= 100)."""
    if not ordered:
        return 0.0
    rank = max(int(-(-q * len(ordered) // 100)), 1)  # ceil, 1-based
    return ordered[rank - 1]


def latency_summary(latencies_seconds: list[float]) -> dict[str, float]:
    """p50/p95/p99/max/mean (milliseconds) of a latency sample -- the
    report shape used for overall, per-mode and per-class breakdowns."""
    ordered = sorted(latencies_seconds)
    return {
        "p50_ms": 1e3 * _percentile(ordered, 50),
        "p95_ms": 1e3 * _percentile(ordered, 95),
        "p99_ms": 1e3 * _percentile(ordered, 99),
        "max_ms": 1e3 * (ordered[-1] if ordered else 0.0),
        "mean_ms": 1e3 * (sum(ordered) / len(ordered)
                          if ordered else 0.0),
    }


class ServeMetrics:
    """Counters + latency/batch-size samples for one server lifetime.

    ``clock`` is the timestamp source every recording method reads
    (default :func:`now`); a cluster injects one shared clock into all
    of its shards' metrics so merged spans compare like with like.
    """

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else now
        self._lock = threading.Lock()
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self._latencies: list[float] = []
        self._batch_sizes: list[int] = []
        self._group_counts: list[int] = []
        # Per-request parallelism dimension: how each request executed
        # ("batched" rode a micro-batch, "sliced" fanned over the fleet).
        self._mode_done: dict[str, int] = {}
        self._mode_failed: dict[str, int] = {}
        self._mode_latencies: dict[str, list[float]] = {}
        self._slice_counts: list[int] = []
        self._started_at = self._clock()
        self._first_submit: float | None = None
        self._first_done: float | None = None
        self._last_done: float | None = None

    # -- recording (each from whichever thread observes the event) ------
    def record_admission(self, accepted: bool) -> None:
        t = self._clock()
        with self._lock:
            if self._first_submit is None:
                self._first_submit = t
            if accepted:
                self.accepted += 1
            else:
                self.rejected += 1

    def record_batch(self, nrequests: int, ngroups: int) -> None:
        with self._lock:
            self._batch_sizes.append(int(nrequests))
            self._group_counts.append(int(ngroups))

    def record_done(self, latency_seconds: float, *, ok: bool,
                    mode: str = "batched", nslices: int = 1) -> None:
        t = self._clock()
        with self._lock:
            if ok:
                self.completed += 1
                self._latencies.append(float(latency_seconds))
                self._mode_done[mode] = self._mode_done.get(mode, 0) + 1
                self._mode_latencies.setdefault(mode, []).append(
                    float(latency_seconds))
                if mode == "sliced":
                    self._slice_counts.append(int(nslices))
            else:
                self.failed += 1
                self._mode_failed[mode] = self._mode_failed.get(mode, 0) + 1
            if self._first_done is None:
                self._first_done = t
            self._last_done = t

    # -- aggregation (cluster fabric) ------------------------------------
    def merge(self, other: "ServeMetrics") -> "ServeMetrics":
        """Fold ``other``'s counters and samples into ``self``.

        Counters are summed, latency/batch/slice samples concatenated
        (so percentiles are computed over the merged sample, not an
        average of per-shard percentiles), and span endpoints widened
        (earliest submit/done, latest done).  Meaningful only when both
        objects share one clock -- the cluster injects a single
        ``clock`` into every shard's metrics for exactly this reason.
        Returns ``self`` so shards can be reduced with a left fold.
        """
        with other._lock:
            counters = (other.accepted, other.rejected,
                        other.completed, other.failed)
            latencies = list(other._latencies)
            batch_sizes = list(other._batch_sizes)
            group_counts = list(other._group_counts)
            mode_done = dict(other._mode_done)
            mode_failed = dict(other._mode_failed)
            mode_latencies = {m: list(v)
                              for m, v in other._mode_latencies.items()}
            slice_counts = list(other._slice_counts)
            started_at = other._started_at
            first_submit = other._first_submit
            first_done = other._first_done
            last_done = other._last_done
        with self._lock:
            self.accepted += counters[0]
            self.rejected += counters[1]
            self.completed += counters[2]
            self.failed += counters[3]
            self._latencies.extend(latencies)
            self._batch_sizes.extend(batch_sizes)
            self._group_counts.extend(group_counts)
            for mode, n in mode_done.items():
                self._mode_done[mode] = self._mode_done.get(mode, 0) + n
            for mode, n in mode_failed.items():
                self._mode_failed[mode] = (self._mode_failed.get(mode, 0)
                                           + n)
            for mode, sample in mode_latencies.items():
                self._mode_latencies.setdefault(mode, []).extend(sample)
            self._slice_counts.extend(slice_counts)
            self._started_at = min(self._started_at, started_at)
            if first_submit is not None:
                self._first_submit = (first_submit
                                      if self._first_submit is None
                                      else min(self._first_submit,
                                               first_submit))
            if first_done is not None:
                self._first_done = (first_done
                                    if self._first_done is None
                                    else min(self._first_done, first_done))
            if last_done is not None:
                self._last_done = (last_done
                                   if self._last_done is None
                                   else max(self._last_done, last_done))
        return self

    # -- derived views ---------------------------------------------------
    def latency_percentiles(self, mode: str | None = None
                            ) -> dict[str, float]:
        """Latency summary over all completions, or one mode's."""
        with self._lock:
            sample = (self._latencies if mode is None
                      else self._mode_latencies.get(mode, []))
            sample = list(sample)
        return latency_summary(sample)

    def mode_breakdown(self) -> dict[str, dict]:
        """Per-mode completion/failure counts and latency summaries, plus
        slice-count accounting for the sliced mode."""
        with self._lock:
            done = dict(self._mode_done)
            failed = dict(self._mode_failed)
            lats = {m: list(v) for m, v in self._mode_latencies.items()}
            slices = list(self._slice_counts)
        out: dict[str, dict] = {}
        for mode in sorted(set(done) | set(failed)):
            out[mode] = {
                "completed": done.get(mode, 0),
                "failed": failed.get(mode, 0),
                "latency": latency_summary(lats.get(mode, [])),
            }
        if "sliced" in out:
            out["sliced"]["slice_requests"] = len(slices)
            out["sliced"]["mean_slices"] = (sum(slices) / len(slices)
                                            if slices else 0.0)
            hist: dict[str, int] = {}
            for n in slices:
                hist[str(n)] = hist.get(str(n), 0) + 1
            out["sliced"]["slice_histogram"] = dict(
                sorted(hist.items(), key=lambda kv: int(kv[0])))
        return out

    def batch_histogram(self) -> dict[str, int]:
        """How many batches executed at each batch size (JSON-keyed)."""
        with self._lock:
            sizes = list(self._batch_sizes)
        hist: dict[str, int] = {}
        for s in sizes:
            hist[str(s)] = hist.get(str(s), 0) + 1
        return dict(sorted(hist.items(), key=lambda kv: int(kv[0])))

    def _span(self) -> float:
        """Serving span: first submission (or construction) to last
        completion.  Caller holds the lock."""
        if self._last_done is None:
            return 0.0
        t0 = (self._first_submit if self._first_submit is not None
              else self._started_at)
        return max(self._last_done - t0, 0.0)

    def throughput_rps(self) -> float:
        """Completed requests per second over the serving span."""
        with self._lock:
            span = self._span()
            return self.completed / span if span > 0 else 0.0

    def snapshot(self) -> dict:
        """One JSON-ready dict with everything above (BENCH_serve input)."""
        with self._lock:
            counts = {
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "batches": len(self._batch_sizes),
                "groups": sum(self._group_counts),
                "mean_batch_size": (sum(self._batch_sizes)
                                    / len(self._batch_sizes)
                                    if self._batch_sizes else 0.0),
            }
            span = self._span()
        return {
            **counts,
            "serving_span_seconds": span,
            "throughput_rps": self.throughput_rps(),
            "latency": self.latency_percentiles(),
            "batch_histogram": self.batch_histogram(),
            "modes": self.mode_breakdown(),
        }
