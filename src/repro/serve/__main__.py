"""Workload replay CLI: ``python -m repro.serve``.

Replays a decoy-scoring request stream through the serving layer and
writes ``BENCH_serve.json`` (throughput, p50/p95/p99 latency, batch-size
histogram, registry and plan-cache hit rates)::

    python -m repro.serve --workload zdock-synth --requests 200
    python -m repro.serve --workload blob --requests 100 --backend sim

Workloads:

* ``zdock-synth`` -- cycles the ZDock-Benchmark-2.0 analogue registry
  (:mod:`repro.molecule.zdock`), smallest complexes first, capped by
  ``--max-atoms``;
* ``blob`` -- ``--distinct`` synthetic protein blobs of ``--natoms``
  atoms.

Every request is submitted with an unbounded retry-with-backoff loop, so
admission rejections (backpressure) delay producers instead of losing
requests; the process exits non-zero unless every submitted request
completes.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..molecule.molecule import Molecule
from .client import ServeClient
from .metrics import now
from .scheduler import ServeConfig
from . import make_server


def _workload(args: argparse.Namespace) -> list[Molecule]:
    """The distinct molecules the request stream cycles through."""
    if args.workload == "zdock-synth":
        from ..molecule import zdock
        mols = [zdock.molecule(e.index) for e in zdock.entries()
                if e.natoms <= args.max_atoms][:args.distinct]
        if not mols:
            raise SystemExit(
                f"no ZDock analogue fits --max-atoms {args.max_atoms} "
                f"(suite minimum is {zdock.MIN_ATOMS})")
        return mols
    from ..config import DEFAULT_SEED
    from ..molecule.generators import protein_blob
    seed = DEFAULT_SEED if args.seed is None else args.seed
    return [protein_blob(args.natoms, seed=seed + i,
                         name=f"blob-{args.natoms}-{i}")
            for i in range(args.distinct)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Replay an E_pol request stream through the batched, "
                    "cached serving layer and write BENCH_serve.json.")
    parser.add_argument("--workload", choices=("zdock-synth", "blob"),
                        default="zdock-synth")
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests to replay (default 200)")
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct molecules the stream cycles through")
    parser.add_argument("--max-atoms", type=int, default=900,
                        help="zdock-synth: largest complex to serve")
    parser.add_argument("--natoms", type=int, default=350,
                        help="blob: atoms per synthetic molecule")
    parser.add_argument("--seed", type=int, default=None,
                        help="blob: generator seed")
    parser.add_argument("--backend", choices=("real", "sim"),
                        default="real")
    parser.add_argument("-P", "--workers", type=int, default=2,
                        help="fleet width for --backend real (default 2)")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batching window (default 2 ms)")
    parser.add_argument("--queue-cap", type=int, default=64,
                        help="admission-control queue bound")
    parser.add_argument("--registry-mb", type=float, default=None,
                        help="optional registry LRU budget, megabytes")
    parser.add_argument("--bench-out", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    if args.requests < 1 or args.distinct < 1 or args.workers < 1:
        parser.error("--requests/--distinct/--workers must be >= 1")

    molecules = _workload(args)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait_ms / 1e3,
        queue_capacity=args.queue_cap,
        registry_max_bytes=(int(args.registry_mb * 2**20)
                            if args.registry_mb is not None else None))
    workers = args.workers if args.backend == "real" else 1
    server = make_server(backend=args.backend, workers=workers,
                         config=config)
    print(f"serve: backend={args.backend} workers={workers} "
          f"max_batch={config.max_batch} queue_cap={config.queue_capacity}")
    print(f"workload: {args.workload}, {args.requests} requests over "
          f"{len(molecules)} molecules "
          f"({', '.join(f'{m.name}:{len(m)}' for m in molecules)})")

    t0 = now()
    with server:
        client = ServeClient(server)
        keys = [client.register(m) for m in molecules]
        warm_seconds = now() - t0
        t_submit = now()
        futures = [client.submit(key=keys[i % len(keys)],
                                 retries=sys.maxsize)
                   for i in range(args.requests)]
        energies = client.await_all(futures, timeout=600.0)
        replay_seconds = now() - t_submit
    stats = server.stats()

    record = {
        "workload": args.workload,
        "requests": args.requests,
        "distinct_molecules": len(molecules),
        "molecules": {m.name: len(m) for m in molecules},
        "backend": args.backend,
        "workers": workers,
        "config": {
            "max_batch": config.max_batch,
            "max_wait_seconds": config.max_wait_seconds,
            "queue_capacity": config.queue_capacity,
            "registry_max_bytes": config.registry_max_bytes,
        },
        "warm_seconds": warm_seconds,
        "replay_seconds": replay_seconds,
        "energies": {m.name: energies[i]
                     for i, m in enumerate(molecules)},
        "retried_rejections": client.retried_rejections,
        **stats,
    }
    with open(args.bench_out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lat = stats["latency"]
    print(f"  completed {stats['completed']}/{args.requests} "
          f"(rejections retried: {client.retried_rejections}, "
          f"failed: {stats['failed']})")
    print(f"  throughput {stats['throughput_rps']:.1f} req/s over "
          f"{replay_seconds:.2f} s replay "
          f"({warm_seconds:.2f} s registry warm-up)")
    print(f"  latency p50 {lat['p50_ms']:.1f} ms, p95 {lat['p95_ms']:.1f} "
          f"ms, p99 {lat['p99_ms']:.1f} ms")
    print(f"  batches {stats['batches']} (mean size "
          f"{stats['mean_batch_size']:.1f}), histogram "
          f"{stats['batch_histogram']}")
    reg = stats["registry"]
    print(f"  registry {reg['hits']} hits / {reg['misses']} misses / "
          f"{reg['evictions']} evictions; plan cache "
          f"{reg['plan_cache']['hits']} hits / "
          f"{reg['plan_cache']['misses']} misses")
    print(f"wrote {args.bench_out}")

    lost = args.requests - stats["completed"]
    if lost or stats["failed"]:
        print(f"ERROR: {lost} request(s) unaccounted for, "
              f"{stats['failed']} failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
