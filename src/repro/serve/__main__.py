"""Workload replay CLI: ``python -m repro.serve``.

Replays a decoy-scoring request stream through the serving layer and
writes a benchmark record (throughput, p50/p95/p99 latency, batch-size
histogram, per-mode and per-class breakdowns, registry and plan-cache
hit rates)::

    python -m repro.serve --workload zdock-synth --requests 200
    python -m repro.serve --workload blob --requests 100 --backend sim
    python -m repro.serve --workload mixed --requests 120 -P 4

Workloads:

* ``zdock-synth`` -- cycles the ZDock-Benchmark-2.0 analogue registry
  (:mod:`repro.molecule.zdock`), smallest complexes first, capped by
  ``--max-atoms``;
* ``blob`` -- ``--distinct`` synthetic protein blobs of ``--natoms``
  atoms;
* ``mixed`` -- the intra-request parallelism scenario: a stream of
  small blobs with every ``--large-every``-th request asking for one
  giant ``--large-natoms`` molecule.  The SLO scheduler micro-batches
  the small class and row-slices the giant one across the fleet
  (``--slice-threshold auto`` picks the midpoint between the two
  classes' measured plan row weights); the report carries per-class
  latency percentiles and lands in ``BENCH_serve_sliced.json``.

Every request is submitted with an unbounded retry-with-backoff loop, so
admission rejections (backpressure) delay producers instead of losing
requests; the process exits non-zero unless every submitted request
completes.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..molecule.molecule import Molecule
from .client import ServeClient
from .fleet import InlineFleet, ProcessFleet
from .metrics import latency_summary, now
from .registry import MoleculeRegistry
from .scheduler import EpolServer, ServeConfig


def _workload(args: argparse.Namespace
              ) -> tuple[list[Molecule], list[str]]:
    """The distinct molecules the request stream cycles through, and the
    size class (``small``/``large``) of each."""
    if args.workload == "zdock-synth":
        from ..molecule import zdock
        mols = [zdock.molecule(e.index) for e in zdock.entries()
                if e.natoms <= args.max_atoms][:args.distinct]
        if not mols:
            raise SystemExit(
                f"no ZDock analogue fits --max-atoms {args.max_atoms} "
                f"(suite minimum is {zdock.MIN_ATOMS})")
        return mols, ["small"] * len(mols)
    from ..config import DEFAULT_SEED
    from ..molecule.generators import protein_blob
    seed = DEFAULT_SEED if args.seed is None else args.seed
    mols = [protein_blob(args.natoms, seed=seed + i,
                         name=f"blob-{args.natoms}-{i}")
            for i in range(args.distinct)]
    classes = ["small"] * len(mols)
    if args.workload == "mixed":
        mols.append(protein_blob(args.large_natoms, seed=seed + 1000,
                                 name=f"blob-{args.large_natoms}-large"))
        classes.append("large")
    return mols, classes


def _request_stream(args: argparse.Namespace, nmols: int,
                    classes: list[str]) -> list[int]:
    """Molecule index per request.  Mixed workloads interleave one large
    request every ``--large-every``; other workloads round-robin."""
    if args.workload != "mixed":
        return [i % nmols for i in range(args.requests)]
    large = classes.index("large")
    smalls = [i for i, c in enumerate(classes) if c == "small"]
    stream, nsmall = [], 0
    for i in range(args.requests):
        if i % args.large_every == args.large_every - 1:
            stream.append(large)
        else:
            stream.append(smalls[nsmall % len(smalls)])
            nsmall += 1
    return stream


def _resolve_threshold(args: argparse.Namespace,
                       weights: list[float],
                       classes: list[str]) -> float | None:
    """The slice threshold: an explicit number, ``auto`` (midpoint of
    the measured small/large plan row weights), or None (disabled)."""
    if args.slice_threshold is None:
        return None
    if args.slice_threshold != "auto":
        return float(args.slice_threshold)
    smalls = [w for w, c in zip(weights, classes) if c == "small"]
    larges = [w for w, c in zip(weights, classes) if c == "large"]
    if not smalls or not larges:
        raise SystemExit("--slice-threshold auto needs both size classes "
                         "(use --workload mixed, or pass a number)")
    return (max(smalls) + min(larges)) / 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Replay an E_pol request stream through the batched, "
                    "cached serving layer and write a benchmark record.")
    parser.add_argument("--workload",
                        choices=("zdock-synth", "blob", "mixed"),
                        default="zdock-synth")
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests to replay (default 200)")
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct molecules the stream cycles through")
    parser.add_argument("--max-atoms", type=int, default=900,
                        help="zdock-synth: largest complex to serve")
    parser.add_argument("--natoms", type=int, default=350,
                        help="blob/mixed: atoms per small molecule")
    parser.add_argument("--large-natoms", type=int, default=1500,
                        help="mixed: atoms of the giant molecule")
    parser.add_argument("--large-every", type=int, default=8,
                        help="mixed: one giant request per this many")
    parser.add_argument("--seed", type=int, default=None,
                        help="blob/mixed: generator seed")
    parser.add_argument("--backend", choices=("real", "sim"),
                        default="real")
    parser.add_argument("-P", "--workers", type=int, default=2,
                        help="fleet width for --backend real (default 2)")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batching window (default 2 ms)")
    parser.add_argument("--queue-cap", type=int, default=64,
                        help="admission-control queue bound")
    parser.add_argument("--registry-mb", type=float, default=None,
                        help="optional registry LRU budget, megabytes")
    parser.add_argument("--slice-threshold", default=None,
                        help="plan row weight above which a request is "
                             "row-sliced across the fleet: a number, "
                             "'auto' (mixed midpoint), or omit to disable"
                             " (mixed default: auto)")
    parser.add_argument("--slice-queue-scale", type=float, default=0.0,
                        help="queue-depth scaling of the slice threshold")
    parser.add_argument("--bench-out", default=None,
                        help="output path (default BENCH_serve.json, or "
                             "BENCH_serve_sliced.json for --workload "
                             "mixed)")
    args = parser.parse_args(argv)
    if args.requests < 1 or args.distinct < 1 or args.workers < 1:
        parser.error("--requests/--distinct/--workers must be >= 1")
    if args.large_every < 2:
        parser.error("--large-every must be >= 2")
    if args.workload == "mixed" and args.slice_threshold is None:
        args.slice_threshold = "auto"
    if args.bench_out is None:
        args.bench_out = ("BENCH_serve_sliced.json"
                         if args.workload == "mixed"
                         else "BENCH_serve.json")

    molecules, classes = _workload(args)
    # Warm the registry first: 'auto' thresholding reads the measured
    # plan row weights, which requires the entries' plans to exist.
    t0 = now()
    registry = MoleculeRegistry(
        max_bytes=(int(args.registry_mb * 2**20)
                   if args.registry_mb is not None else None))
    keys = [registry.register(m) for m in molecules]
    weights = [registry.get(k).row_weight(registry.get(k).params.eps_born,
                                          registry.get(k).params.eps_epol)
               for k in keys]
    threshold = _resolve_threshold(args, weights, classes)
    warm_seconds = now() - t0

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait_ms / 1e3,
        queue_capacity=args.queue_cap,
        slice_threshold=threshold,
        slice_queue_scale=args.slice_queue_scale)
    workers = args.workers if args.backend == "real" else 1
    fleet = (ProcessFleet(workers) if args.backend == "real"
             else InlineFleet())
    server = EpolServer(fleet=fleet, registry=registry, config=config)
    print(f"serve: backend={args.backend} workers={workers} "
          f"max_batch={config.max_batch} queue_cap={config.queue_capacity} "
          f"slice_threshold={threshold}")
    print(f"workload: {args.workload}, {args.requests} requests over "
          f"{len(molecules)} molecules "
          f"({', '.join(f'{m.name}:{len(m)}' for m in molecules)})")

    stream = _request_stream(args, len(molecules), classes)
    with server:
        client = ServeClient(server)
        t_submit = now()
        futures = [client.submit(key=keys[mi], retries=sys.maxsize)
                   for mi in stream]
        energies = client.await_all(futures, timeout=600.0)
        replay_seconds = now() - t_submit
    stats = server.stats()

    # Per-class breakdown: latency percentiles and executed modes.
    per_class: dict[str, dict] = {}
    for mi, fut in zip(stream, futures):
        cls = per_class.setdefault(classes[mi], {
            "requests": 0, "latencies": [], "modes": {}})
        cls["requests"] += 1
        cls["latencies"].append(fut.detail.get("latency_seconds", 0.0))
        mode = fut.detail.get("mode", "batched")
        cls["modes"][mode] = cls["modes"].get(mode, 0) + 1
    class_report = {
        name: {
            "requests": cls["requests"],
            "throughput_rps": (cls["requests"] / replay_seconds
                               if replay_seconds > 0 else 0.0),
            "latency": latency_summary(cls["latencies"]),
            "modes": cls["modes"],
        } for name, cls in sorted(per_class.items())}

    record = {
        "workload": args.workload,
        "requests": args.requests,
        "distinct_molecules": len(molecules),
        "molecules": {m.name: len(m) for m in molecules},
        "row_weights": {m.name: weights[i]
                        for i, m in enumerate(molecules)},
        "backend": args.backend,
        "workers": workers,
        "config": {
            "max_batch": config.max_batch,
            "max_wait_seconds": config.max_wait_seconds,
            "queue_capacity": config.queue_capacity,
            "registry_max_bytes": registry.max_bytes,
            "slice_threshold": config.slice_threshold,
            "slice_queue_scale": config.slice_queue_scale,
        },
        "warm_seconds": warm_seconds,
        "replay_seconds": replay_seconds,
        "energies": {molecules[mi].name: energies[i]
                     for i, mi in enumerate(stream)},
        "classes": class_report,
        "retried_rejections": client.retried_rejections,
        **stats,
    }
    with open(args.bench_out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lat = stats["latency"]
    print(f"  completed {stats['completed']}/{args.requests} "
          f"(rejections retried: {client.retried_rejections}, "
          f"failed: {stats['failed']})")
    print(f"  throughput {stats['throughput_rps']:.1f} req/s over "
          f"{replay_seconds:.2f} s replay "
          f"({warm_seconds:.2f} s registry warm-up)")
    print(f"  latency p50 {lat['p50_ms']:.1f} ms, p95 {lat['p95_ms']:.1f} "
          f"ms, p99 {lat['p99_ms']:.1f} ms")
    print(f"  batches {stats['batches']} (mean size "
          f"{stats['mean_batch_size']:.1f}), histogram "
          f"{stats['batch_histogram']}")
    for mode, mstats in stats["modes"].items():
        extra = (f", mean slices {mstats['mean_slices']:.1f}"
                 if mode == "sliced" else "")
        print(f"  mode {mode}: {mstats['completed']} completed, p95 "
              f"{mstats['latency']['p95_ms']:.1f} ms{extra}")
    for name, cls in class_report.items():
        print(f"  class {name}: {cls['requests']} requests, p95 "
              f"{cls['latency']['p95_ms']:.1f} ms, modes {cls['modes']}")
    reg = stats["registry"]
    print(f"  registry {reg['hits']} hits / {reg['misses']} misses / "
          f"{reg['evictions']} evictions; plan cache "
          f"{reg['plan_cache']['hits']} hits / "
          f"{reg['plan_cache']['misses']} misses")
    print(f"wrote {args.bench_out}")

    lost = args.requests - stats["completed"]
    if lost or stats["failed"]:
        print(f"ERROR: {lost} request(s) unaccounted for, "
              f"{stats['failed']} failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
