"""In-process serving client: futures, polling, and retry policy.

:class:`ServeFuture` is the per-request handle (``done``/``result``/
``exception``); :class:`ServeClient` wraps an
:class:`~repro.serve.scheduler.EpolServer` with the ergonomics a
workload driver wants: register-and-submit in one call, bounded
retry-with-backoff against admission rejections (so backpressure slows a
producer down instead of losing its requests), and bulk ``await_all``.

The client never swallows a rejection it cannot retry away: with
``retries=0`` the :class:`~repro.serve.scheduler.RejectedError` reaches
the caller, and with bounded retries the final failure re-raises --
"rejected then lost" is not a state this API can produce.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Sequence

from ..analysis_static.model.annotations import protocol_event
from ..core.params import ApproximationParams
from ..molecule.molecule import Molecule


class ServeFuture:
    """Handle for one submitted request (thread-safe, resolve-once)."""

    def __init__(self, key: str) -> None:
        self.key = key
        self._done = threading.Event()
        self._value: float | None = None
        self._error: BaseException | None = None
        #: Serving provenance (worker id, eval seconds, latency, cold
        #: attach) attached at resolution time.
        self.detail: dict[str, Any] = {}

    # -- consumer side --------------------------------------------------
    def done(self) -> bool:
        """Non-blocking poll: has the request been resolved?"""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> float:
        """The served energy (kcal/mol); blocks up to ``timeout``.

        Raises ``TimeoutError`` if unresolved in time, or re-raises the
        serving-side failure.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request for molecule {self.key!r} not resolved "
                f"within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The serving-side failure, or None on success; blocks like
        :meth:`result`."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request for molecule {self.key!r} not resolved "
                f"within {timeout}s")
        return self._error

    # -- producer side (scheduler thread only) --------------------------
    @protocol_event("future", "resolve")
    def _resolve(self, energy: float, **detail: Any) -> None:
        self._value = float(energy)
        self.detail.update(detail)
        self._done.set()

    @protocol_event("future", "reject")
    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


def _sleep(seconds: float) -> None:
    """Interruptible sleep without touching the ``time`` module (the
    serving layer's wall clock lives in :mod:`repro.serve.metrics`)."""
    threading.Event().wait(seconds)


class ServeClient:
    """Futures-style front door over one :class:`EpolServer`."""

    def __init__(self, server: Any) -> None:
        self.server = server
        #: Rejections absorbed by retry loops (all eventually admitted or
        #: re-raised -- never silently dropped).
        self.retried_rejections = 0

    # -- submission ------------------------------------------------------
    def register(self, molecule: Molecule,
                 params: ApproximationParams | None = None) -> str:
        """Register (idempotently) and return the molecule's content key."""
        return self.server.register(molecule, params)

    def submit(self, molecule: Molecule | None = None, *,
               key: str | None = None,
               params: ApproximationParams | None = None,
               eps_born: float | None = None,
               eps_epol: float | None = None,
               retries: int = 0,
               backoff_seconds: float = 0.002) -> ServeFuture:
        """Submit one :math:`E_{pol}` request; returns its future.

        Exactly one of ``molecule`` (registered on the fly) or ``key``
        (already registered) must be given.  ``retries`` bounds how many
        :class:`~repro.serve.scheduler.RejectedError` admissions to retry
        with linear backoff; the last rejection re-raises.
        """
        from .scheduler import RejectedError

        if (molecule is None) == (key is None):
            raise ValueError("pass exactly one of molecule= or key=")
        if molecule is not None:
            key = self.register(molecule, params)
        assert key is not None
        attempt = 0
        while True:
            try:
                return self.server.submit(key, eps_born=eps_born,
                                          eps_epol=eps_epol)
            except RejectedError:
                if attempt >= retries:
                    raise
                attempt += 1
                self.retried_rejections += 1
                _sleep(backoff_seconds * attempt)

    def submit_many(self, molecules: Iterable[Molecule], *,
                    retries: int = 0,
                    backoff_seconds: float = 0.002) -> list[ServeFuture]:
        """Submit one request per molecule, in order."""
        return [self.submit(molecule=m, retries=retries,
                            backoff_seconds=backoff_seconds)
                for m in molecules]

    # -- collection ------------------------------------------------------
    @staticmethod
    def poll(futures: Sequence[ServeFuture]) -> tuple[int, int]:
        """Non-blocking progress check: ``(resolved, total)``."""
        return sum(1 for f in futures if f.done()), len(futures)

    @staticmethod
    def await_all(futures: Sequence[ServeFuture], *,
                  timeout: float | None = None) -> list[float]:
        """Block until every future resolves; returns energies in
        submission order (re-raising the first failure encountered)."""
        return [f.result(timeout) for f in futures]
