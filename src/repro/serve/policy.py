"""Batch-vs-slice routing policy: pure decisions, no clocks, no state.

The scheduler must answer one question per request: ride a micro-batch
with peers (throughput -- the decoy-scoring shape) or be row-sliced
across the whole fleet (latency -- the paper's headline giant inputs).
Everything here is a pure function of three numbers:

* the request's **plan row weight** -- the summed exact per-row
  interaction counts of its Born + E_pol plans
  (:meth:`repro.plan.schema.InteractionPlan.row_pair_weights`), a
  measured size signal, not an estimate;
* the configured **slice threshold** (``ServeConfig.slice_threshold``);
* the **queue depth** at dispatch time, scaled by
  ``ServeConfig.slice_queue_scale`` -- under a deep queue the fleet's
  across-request parallelism is already saturated, so commandeering
  every worker for one request costs more than it saves and the
  effective threshold rises.

Purity is load-bearing: the property suite replays decisions and the
repro-verify effect checker (RV1xx) holds this module to clock-free,
effect-free inference, so routing can never perturb a served energy --
it only ever picks *where* the bit-identical pipeline runs.
"""

from __future__ import annotations

#: Routing outcomes (also the ``mode`` tag on results and metrics).
MODE_BATCHED = "batched"
MODE_SLICED = "sliced"
#: Cluster outcome: row ranges fanned to idle *shards* (work donation).
MODE_DONATED = "donated"


def effective_threshold(threshold: float, queue_depth: int,
                        queue_scale: float = 0.0) -> float:
    """The queue-adjusted slice threshold.

    Each waiting request raises the bar by ``queue_scale`` (a fraction of
    the base threshold): ``threshold * (1 + queue_scale * depth)``.
    ``queue_scale=0`` makes the decision depth-independent.
    """
    depth = max(int(queue_depth), 0)
    return float(threshold) * (1.0 + float(queue_scale) * depth)


def decide_mode(row_weight: float, *, threshold: float | None,
                queue_depth: int = 0, queue_scale: float = 0.0) -> str:
    """Route one request: :data:`MODE_SLICED` iff its plan row weight
    reaches the (queue-adjusted) threshold.

    ``threshold=None`` disables intra-request parallelism entirely (the
    PR-4 behaviour: every request micro-batches).
    """
    if threshold is None:
        return MODE_BATCHED
    if float(row_weight) >= effective_threshold(threshold, queue_depth,
                                                queue_scale):
        return MODE_SLICED
    return MODE_BATCHED


def decide_donation(row_weight: float, owner_depth: int, idle_nodes: int,
                    *, saturation_depth: int | None,
                    min_row_weight: float = 0.0) -> bool:
    """Should the cluster donate this request's row ranges to idle
    shards instead of queueing it on its saturated owner?

    Pure, like every decision here: donate iff the owner's queue depth
    has reached ``saturation_depth`` (``None`` disables donation), the
    request is large enough that fan-out beats queueing
    (``row_weight >= min_row_weight``), and at least one other shard is
    idle enough to receive work.  Where the rows run never changes what
    they compute -- donation reuses the sliced path's positional writes
    and serial replay, so this is (again) purely a placement decision.
    """
    if saturation_depth is None:
        return False
    return (int(owner_depth) >= int(saturation_depth)
            and float(row_weight) >= float(min_row_weight)
            and int(idle_nodes) > 0)
