"""The micro-batching scheduler: bounded admission, grouped dispatch.

:class:`EpolServer` owns the request path end to end:

* **admission** -- ``submit`` appends to a bounded queue under a lock; a
  full queue raises :class:`RejectedError` *immediately* (explicit
  backpressure, never a silent drop and never a blocked producer), and a
  stopped server raises :class:`ServerClosed`;
* **micro-batching** -- the scheduler thread takes the oldest waiting
  request, then holds the batch open up to ``max_wait_seconds`` (or until
  ``max_batch`` requests are waiting) so bursts ride together;
* **grouping** -- within a batch, requests sharing a ``(molecule,
  epsilon)`` configuration are grouped in first-seen order, so the fleet
  publishes/builds each configuration once and executes it many times;
* **routing** -- with a ``slice_threshold`` configured, each group is
  routed by the pure policy of :mod:`repro.serve.policy`: small
  molecules micro-batch with peers (throughput), giant molecules are
  row-sliced across every warm worker (latency,
  :meth:`~repro.serve.fleet.ProcessFleet.run_sliced`); the decision
  reads only the group's plan row weight, the threshold and the queue
  depth at dispatch;
* **resolution** -- fleet results resolve the per-request futures and
  feed :class:`~repro.serve.metrics.ServeMetrics` (tagged with their
  execution ``mode`` and slice count).

Determinism: batching, grouping and routing only decide *when and where*
a request evaluates, never *what* it evaluates -- batched requests run
the full-plan serial kernel and sliced requests reduce through the
order-preserving replay of :mod:`repro.serve.sliced` (see
:mod:`repro.serve.fleet`), so arrival order, batch boundaries, fleet
width and routing mode cannot change a single bit of any served energy.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

from ..analysis_static.model.annotations import protocol_event
from ..core.params import ApproximationParams
from ..molecule.molecule import Molecule
from .client import ServeFuture
from .fleet import (EpsConfig, FleetError, InlineFleet, ProcessFleet,
                    SliceError)
from .metrics import ServeMetrics, now
from .policy import MODE_SLICED, decide_mode
from .registry import MoleculeRegistry, RegistryEntry


class RejectedError(RuntimeError):
    """Admission control: the request queue is full; resubmit later."""


class ServerClosed(RuntimeError):
    """The server is not accepting requests (stopped or never started)."""


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the serving layer (one immutable bag)."""

    #: Most requests one batch may carry.
    max_batch: int = 16
    #: Seconds the scheduler holds a batch open for stragglers.
    max_wait_seconds: float = 0.002
    #: Bound on requests waiting for a batch (admission control).
    queue_capacity: int = 128
    #: Optional registry byte budget (LRU over warm molecules).
    registry_max_bytes: int | None = None
    #: Optional per-molecule plan-cache byte budget.
    plan_cache_bytes: int | None = None
    #: Plan row weight at/above which a request is row-sliced across the
    #: whole fleet instead of micro-batched (``None`` disables
    #: intra-request parallelism -- the PR-4 behaviour).
    slice_threshold: float | None = None
    #: Queue-depth scaling of the slice threshold: each waiting request
    #: raises the effective threshold by this fraction of the base (a
    #: deep queue already saturates the fleet across requests).
    slice_queue_scale: float = 0.0
    #: Seconds a client should wait on ``ServeFuture.result`` before
    #: giving up; the liveness bound the protocol model assumes.
    result_timeout_seconds: float = 60.0
    #: Seconds ``stop`` waits for the scheduler thread to drain and exit.
    stop_join_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")
        if self.slice_threshold is not None and self.slice_threshold <= 0:
            raise ValueError("slice_threshold must be > 0 (or None)")
        if self.slice_queue_scale < 0:
            raise ValueError("slice_queue_scale must be >= 0")
        if self.result_timeout_seconds <= 0:
            raise ValueError("result_timeout_seconds must be > 0")
        if self.stop_join_seconds <= 0:
            raise ValueError("stop_join_seconds must be > 0")


@dataclass
class _Request:
    req_id: int
    key: str
    cfg: EpsConfig
    future: ServeFuture
    submitted_at: float = field(default_factory=now)


class EpolServer:
    """Batched, cached :math:`E_{pol}` serving over a warm fleet.

    Typical assembly (or use :func:`repro.serve.make_server`)::

        server = EpolServer(fleet=ProcessFleet(4))
        server.start()
        key = server.register(molecule)
        future = server.submit(key)
        energy = future.result(timeout=server.config.result_timeout_seconds)
        server.stop()
    """

    def __init__(self, fleet: InlineFleet | ProcessFleet | None = None, *,
                 registry: MoleculeRegistry | None = None,
                 config: ServeConfig | None = None,
                 metrics: ServeMetrics | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.fleet = fleet if fleet is not None else InlineFleet()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.registry = registry if registry is not None else \
            MoleculeRegistry(max_bytes=self.config.registry_max_bytes,
                             plan_cache_bytes=self.config.plan_cache_bytes)
        # Evictions must unpublish the fleet's shared state for the entry.
        self.registry.on_evict = self._on_evict
        self._ids = itertools.count()
        self._pending: deque[_Request] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._running = False
        self._stopped = False
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "EpolServer":
        """Start the scheduler thread (idempotent)."""
        with self._lock:
            if self._running:
                return self
            if self._stopped:
                raise ServerClosed("server cannot be restarted after stop()")
            self._running = True
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-serve-scheduler",
                                        daemon=True)
        self._thread.start()
        return self

    @protocol_event("scheduler", "stop")
    def stop(self, *, drain: bool = True) -> None:
        """Stop serving.  Idempotent.

        ``drain=True`` lets already-admitted requests finish; ``False``
        rejects them.  Either way the fleet is shut down afterwards.
        """
        with self._lock:
            self._stopped = True
            if not drain:
                while self._pending:
                    req = self._pending.popleft()
                    req.future._reject(ServerClosed("server stopped"))
                    self.metrics.record_done(0.0, ok=False)
            self._wakeup.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=self.config.stop_join_seconds)
            self._thread = None
        self._running = False
        self.fleet.shutdown()

    def __enter__(self) -> "EpolServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- request path ----------------------------------------------------
    def register(self, molecule: Molecule,
                 params: ApproximationParams | None = None) -> str:
        """Idempotently register a molecule; returns its content key."""
        return self.registry.register(molecule, params)

    @protocol_event("scheduler", "admit")
    def submit(self, key: str, *, eps_born: float | None = None,
               eps_epol: float | None = None) -> ServeFuture:
        """Admit one request for registered molecule ``key``.

        Raises :class:`RejectedError` when the queue is full (the caller
        owns the retry policy -- see
        :meth:`repro.serve.client.ServeClient.submit`) and
        :class:`ServerClosed` when the server is not running.
        """
        if self._stopped or not self._running:
            raise ServerClosed("server is not accepting requests")
        # Resolve the epsilon config against the entry's own params so
        # identical requests group regardless of explicit-vs-default eps.
        entry = self.registry.get(key)  # KeyError for unknown molecules
        cfg = EpsConfig.resolve(entry.params, eps_born, eps_epol)
        with self._lock:
            if self._stopped or not self._running:
                raise ServerClosed("server is not accepting requests")
            if len(self._pending) >= self.config.queue_capacity:
                self.metrics.record_admission(False)
                raise RejectedError(
                    f"queue full ({self.config.queue_capacity} waiting); "
                    "retry after in-flight requests drain")
            req = _Request(req_id=next(self._ids), key=key, cfg=cfg,
                           future=ServeFuture(key=key))
            self._pending.append(req)
            self.metrics.record_admission(True)
            self._wakeup.notify_all()
        return req.future

    def queue_depth(self) -> int:
        """Requests admitted but not yet taken into a batch -- the
        cluster router's saturation signal for work donation."""
        with self._lock:
            return len(self._pending)

    # -- scheduler internals ----------------------------------------------
    def _take_batch(self) -> list[_Request] | None:
        """Block for the next micro-batch; None once stopped and drained."""
        cfg = self.config
        with self._wakeup:
            while not self._pending:
                if self._stopped:
                    return None
                self._wakeup.wait(timeout=0.1)
            first_seen = now()
            # Hold the batch open for stragglers (micro-batching window).
            while (len(self._pending) < cfg.max_batch
                   and not self._stopped
                   and now() - first_seen < cfg.max_wait_seconds):
                remaining = cfg.max_wait_seconds - (now() - first_seen)
                self._wakeup.wait(timeout=max(remaining, 1e-4))
            n = min(len(self._pending), cfg.max_batch)
            return [self._pending.popleft() for _ in range(n)]

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._execute(batch)

    @protocol_event("scheduler", "dispatch")
    def _execute(self, batch: list[_Request]) -> None:
        # Group requests sharing a (molecule, eps) configuration, in
        # first-seen order (deterministic given the batch content).
        groups: dict[tuple[str, EpsConfig], list[_Request]] = {}
        for req in batch:
            groups.setdefault((req.key, req.cfg), []).append(req)
        self.metrics.record_batch(len(batch), len(groups))
        # Queue depth sampled once per dispatch -- the policy's load
        # signal (requests admitted after this point see the next batch).
        with self._lock:
            depth = len(self._pending)

        items: list[tuple[int, RegistryEntry, EpsConfig]] = []
        by_id: dict[int, _Request] = {}
        sliced: list[tuple[_Request, RegistryEntry, EpsConfig]] = []
        can_slice = (self.config.slice_threshold is not None
                     and hasattr(self.fleet, "run_sliced"))
        for (key, cfg), reqs in groups.items():
            try:
                entry = self.registry.get(key)
            except KeyError as err:
                for req in reqs:
                    req.future._reject(err)
                    self.metrics.record_done(0.0, ok=False)
                continue
            mode = "batched"
            if can_slice:
                mode = decide_mode(
                    entry.row_weight(cfg.eps_born, cfg.eps_epol),
                    threshold=self.config.slice_threshold,
                    queue_depth=depth,
                    queue_scale=self.config.slice_queue_scale)
            if mode == MODE_SLICED:
                for req in reqs:
                    sliced.append((req, entry, cfg))
            else:
                for req in reqs:
                    items.append((req.req_id, entry, cfg))
                    by_id[req.req_id] = req

        # Batched group first: small peers are not held hostage by a
        # giant request commandeering the whole fleet.
        if items:
            try:
                results = self.fleet.run_batch(items)
            except FleetError as err:
                # The fleet is unusable (worker death/shutdown): fail this
                # batch loudly and stop admitting.
                for req in by_id.values():
                    req.future._reject(err)
                    self.metrics.record_done(0.0, ok=False)
                for req, _, _ in sliced:
                    req.future._reject(err)
                    self.metrics.record_done(0.0, ok=False,
                                             mode=MODE_SLICED)
                with self._lock:
                    self._stopped = True
                return
            for req_id, req in by_id.items():
                res = results.get(req_id)
                latency = now() - req.submitted_at
                if res is None or res.error is not None:
                    msg = (res.error if res is not None
                           else "no result returned")
                    req.future._reject(FleetError(msg))
                    self.metrics.record_done(latency, ok=False)
                else:
                    req.future._resolve(res.energy, worker=res.worker,
                                        eval_seconds=res.eval_seconds,
                                        cold_attach=res.cold_attach,
                                        latency_seconds=latency,
                                        mode=res.mode, nslices=res.nslices)
                    self.metrics.record_done(latency, ok=True,
                                             mode=res.mode,
                                             nslices=res.nslices)

        # Sliced requests run one at a time -- each owns the whole fleet.
        for req, entry, cfg in sliced:
            try:
                res = self.fleet.run_sliced(req.req_id, entry, cfg)
            except SliceError as err:
                # Request-scoped failure: the fleet recovered (dead
                # workers respawned); keep serving.
                req.future._reject(err)
                self.metrics.record_done(now() - req.submitted_at,
                                         ok=False, mode=MODE_SLICED)
                continue
            except FleetError as err:
                req.future._reject(err)
                self.metrics.record_done(0.0, ok=False, mode=MODE_SLICED)
                with self._lock:
                    self._stopped = True
                return
            latency = now() - req.submitted_at
            req.future._resolve(res.energy, worker=res.worker,
                                eval_seconds=res.eval_seconds,
                                cold_attach=res.cold_attach,
                                latency_seconds=latency,
                                mode=res.mode, nslices=res.nslices)
            self.metrics.record_done(latency, ok=True, mode=res.mode,
                                     nslices=res.nslices)

    def _on_evict(self, entry: RegistryEntry) -> None:
        self.fleet.forget(entry)

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Serving + registry/plan-cache statistics (JSON-ready)."""
        out = self.metrics.snapshot()
        out["registry"] = self.registry.stats()
        out["backend"] = self.fleet.backend
        out["nworkers"] = self.fleet.nworkers
        if isinstance(self.fleet, ProcessFleet):
            out["publications"] = self.fleet.publications
            out["respawns"] = self.fleet.respawns
        return out
