"""Warm execution fleets: where served requests actually compute.

Two fleets implement one contract (``run_batch`` over ``(request id,
registry entry, epsilon config)`` items, plus ``forget``/``shutdown``):

* :class:`InlineFleet` ("sim" backend) evaluates in the scheduler thread
  against the registry entry's own calculator -- zero processes, the
  reference substrate for tests and the plan/tree-reuse benchmark;
* :class:`ProcessFleet` ("real" backend) keeps ``P``
  :class:`~repro.parallel.procpool.pool.PersistentWorkerPool` workers
  alive across requests.  Each molecule's arrays and interaction plans
  are published **once** into a
  :class:`~repro.parallel.procpool.shm.SharedArrayBundle` per epsilon
  configuration; workers attach lazily, rebuild the deterministic
  octrees, cache the prepared state, and then serve every later request
  for that molecule at plan-execution cost.

Determinism contract: a served request's energy is bit-identical to a
cold ``driver.run()`` of the same configuration, per request, regardless
of fleet width, batch shape, routing mode or arrival order.  Batched
requests evaluate the *whole* plan through :func:`evaluate_pipeline` --
the exact kernel sequence of
:meth:`repro.core.driver.PolarizationEnergyCalculator.profile`.  Sliced
requests (``run_sliced``) fan contiguous weight-balanced plan row ranges
over every worker and reduce through :mod:`repro.serve.sliced`, which
replays the serial scatter and fold operations verbatim -- worker width
picks who computes which rows, never the order anything is added (see
``docs/SERVING.md``, "Intra-request parallelism").
"""

from __future__ import annotations

import dataclasses
import os
import threading
import traceback
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..analysis_static.checks import checks_enabled
from ..analysis_static.flow.contracts import array_contract
from ..analysis_static.races import (WriteIntentTracker, find_races,
                                     intents_from_payload)
from ..core.born import AtomTreeData, QuadTreeData, push_integrals_to_atoms
from ..core.energy import EnergyContext, epol_from_pair_sum
from ..core.params import ApproximationParams
from ..molecule.molecule import Molecule
from ..parallel.procpool import (PersistentWorkerPool, PoolError,
                                 SharedArrayBundle)
from ..plan import InteractionPlan, PlanSet
from ..plan.executor import (epol_row_terms, execute_born_plan,
                             execute_epol_plan)
from ..plan.schema import PLAN_ARRAY_FIELDS
from ..surface.sas import SurfaceQuadrature
from .metrics import now
from .registry import RegistryEntry
from .sliced import (born_flat_sizes, epol_nbins, fold_pair_terms,
                     reduce_born_flat, slice_bounds)

#: Molecules one warm worker keeps attached before evicting its oldest.
WORKER_CACHE_ENTRIES = 8

#: Test-only control task: the receiving worker hard-exits (as a real
#: worker would on OOM-kill or segfault) on its *next* evaluation task,
#: losing that task mid-flight.  Fault-injection hook for the degraded
#: fleet suite; nothing in the serving path ever sends it.
CRASH_NEXT = "__crash_next__"


class FleetError(RuntimeError):
    """The fleet cannot serve (worker death, shut-down pool)."""


class SliceError(FleetError):
    """One sliced request failed; the fleet itself has recovered.

    Raised by ``run_sliced`` when a slice errors or its worker dies
    mid-flight.  The scheduler treats it as request-scoped (reject that
    future, keep serving); a plain :class:`FleetError` stays fatal.
    """


@dataclass(frozen=True)
class EpsConfig:
    """The per-request kernel configuration (epsilon overrides)."""

    eps_born: float
    eps_epol: float

    @classmethod
    def resolve(cls, params: ApproximationParams,
                eps_born: float | None = None,
                eps_epol: float | None = None) -> "EpsConfig":
        return cls(
            eps_born=float(params.eps_born if eps_born is None else eps_born),
            eps_epol=float(params.eps_epol if eps_epol is None else eps_epol))


@dataclass
class EvalResult:
    """One served evaluation: the energy plus provenance/timing."""

    energy: float
    worker: int
    eval_seconds: float
    cold_attach: bool = False
    error: str | None = None
    #: How the request was executed: ``"batched"`` (one worker ran the
    #: whole plan) or ``"sliced"`` (row ranges fanned over the fleet).
    mode: str = "batched"
    #: Row slices the request fanned out to (1 for batched requests).
    nslices: int = 1


def evaluate_pipeline(molecule: Molecule, atoms: AtomTreeData,
                      quad: QuadTreeData, plans: PlanSet,
                      params: ApproximationParams, *,
                      eps_epol: float) -> float:
    """Full-plan serial evaluation -- the serving layer's single kernel.

    Executes every plan row in ascending order: exactly the computation
    of ``PolarizationEnergyCalculator.profile()``, so both fleets (and
    every worker of the process fleet) produce energies bit-identical to
    the cold serial driver for the same configuration.
    """
    partial = execute_born_plan(plans.born, atoms, quad)
    born_sorted = push_integrals_to_atoms(
        atoms, partial, max_radius=2.0 * molecule.bounding_radius)
    ectx = EnergyContext.build(atoms, born_sorted, eps_epol)
    epartial = execute_epol_plan(plans.epol, ectx)
    return epol_from_pair_sum(epartial.pair_sum,
                              epsilon_solvent=params.epsilon_solvent)


@array_contract(far="(?,) float64 C", near="(?,) float64 C")
def execute_born_rows(entry: RegistryEntry, cfg: "EpsConfig",
                      bounds: list[tuple[int, int]]
                      ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Execute Born-plan row ranges against a warm entry, returning the
    positional flat-CSR ``(far, near)`` span pair per range.

    The cluster's work-donation path runs this on *donee* shards: each
    donated Hilbert key range maps to a contiguous plan row range, and
    because the flat outputs are positional (span offsets come from the
    plan's CSR starts, not execution order) the owner's serial replay of
    :func:`~repro.serve.sliced.reduce_born_flat` is bit-identical to a
    single-node cold run regardless of which shard computed which range.
    """
    plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
    atoms = entry.calc.atom_tree()
    quad = entry.calc.quad_tree()
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for lo, hi in bounds:
        f0 = int(plans.born.far_start[lo])
        f1 = int(plans.born.far_start[hi])
        n0 = int(plans.born.near_point_start[lo])
        n1 = int(plans.born.near_point_start[hi])
        far = np.zeros(f1 - f0)
        near = np.zeros(n1 - n0)
        execute_born_plan(plans.born, atoms, quad, row_range=(lo, hi),
                          flat_out={"far": far, "near": near})
        out.append((far, near))
    return out


@array_contract(born_sorted="(npoints,) float64 view-ok")
def execute_epol_rows(entry: RegistryEntry, cfg: "EpsConfig",
                      bounds: list[tuple[int, int]],
                      born_sorted: np.ndarray
                      ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Execute E_pol-plan row ranges against a warm entry, returning the
    per-row ``(far_terms, near_terms)`` pair for each range (donation's
    second phase; the owner scatters the spans positionally and reduces
    with :func:`~repro.serve.sliced.fold_pair_terms`)."""
    plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
    ectx = EnergyContext.build(entry.calc.atom_tree(), born_sorted,
                               cfg.eps_epol)
    return [epol_row_terms(plans.epol, ectx, row_range=(lo, hi))
            for lo, hi in bounds]


# ----------------------------------------------------------------------
# in-process fleet ("sim" backend)
# ----------------------------------------------------------------------
class InlineFleet:
    """Evaluates batches inline in the calling (scheduler) thread.

    ``nworkers`` is the *simulated* slice width: ``run_sliced`` cuts a
    request into that many weight-balanced row ranges and executes them
    sequentially through the identical slice kernels and reduction the
    process fleet uses -- the reference substrate for the differential
    suite (energies must not depend on the width, so simulating it
    single-threaded is a legitimate execution of the same computation).
    """

    backend = "sim"

    def __init__(self, nworkers: int = 1) -> None:
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.nworkers = int(nworkers)
        self._closed = False

    def run_batch(self, items: list[tuple[int, RegistryEntry, EpsConfig]]
                  ) -> dict[int, EvalResult]:
        if self._closed:
            raise FleetError("fleet is shut down")
        out: dict[int, EvalResult] = {}
        for req_id, entry, cfg in items:
            t0 = now()
            try:
                plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
                energy = evaluate_pipeline(
                    entry.molecule, entry.calc.atom_tree(),
                    entry.calc.quad_tree(), plans, entry.params,
                    eps_epol=cfg.eps_epol)
                out[req_id] = EvalResult(energy=energy, worker=0,
                                         eval_seconds=now() - t0)
            except Exception:
                out[req_id] = EvalResult(
                    energy=float("nan"), worker=0, eval_seconds=now() - t0,
                    error=traceback.format_exc())
        return out

    def run_sliced(self, req_id: int, entry: RegistryEntry,
                   cfg: EpsConfig) -> EvalResult:
        """One request, row-sliced into ``nworkers`` ranges (sequential).

        Same slice kernels, same parent-side reduction as
        :meth:`ProcessFleet.run_sliced` -- bit-identical to
        :func:`evaluate_pipeline` and a cold ``driver.run()`` for any
        width.  Raises :class:`SliceError` on evaluation failure.
        """
        if self._closed:
            raise FleetError("fleet is shut down")
        t0 = now()
        try:
            plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
            atoms = entry.calc.atom_tree()
            quad = entry.calc.quad_tree()
            far_total, near_total = born_flat_sizes(plans.born)
            far_flat = np.zeros(far_total)
            near_flat = np.zeros(near_total)
            born_bounds = slice_bounds(plans.born.row_pair_weights(),
                                       self.nworkers)
            for lo, hi in born_bounds:
                f0 = int(plans.born.far_start[lo])
                f1 = int(plans.born.far_start[hi])
                n0 = int(plans.born.near_point_start[lo])
                n1 = int(plans.born.near_point_start[hi])
                execute_born_plan(plans.born, atoms, quad,
                                  row_range=(lo, hi),
                                  flat_out={"far": far_flat[f0:f1],
                                            "near": near_flat[n0:n1]})
            partial = reduce_born_flat(plans.born, atoms, far_flat,
                                       near_flat)
            born_sorted = push_integrals_to_atoms(
                atoms, partial,
                max_radius=2.0 * entry.molecule.bounding_radius)
            ectx = EnergyContext.build(atoms, born_sorted, cfg.eps_epol)
            epol_bounds = slice_bounds(
                plans.epol.row_pair_weights(nbins=ectx.binning.nbins),
                self.nworkers)
            far_terms = np.zeros(plans.epol.nrows)
            near_terms = np.zeros(plans.epol.nrows)
            for lo, hi in epol_bounds:
                ft, nt = epol_row_terms(plans.epol, ectx,
                                        row_range=(lo, hi))
                far_terms[lo:hi] = ft
                near_terms[lo:hi] = nt
            pair_sum = fold_pair_terms(far_terms, near_terms)
            energy = epol_from_pair_sum(
                pair_sum, epsilon_solvent=entry.params.epsilon_solvent)
        except FleetError:
            raise
        except Exception as err:
            raise SliceError(
                f"sliced request {req_id} failed: "
                f"{traceback.format_exc()}") from err
        return EvalResult(energy=energy, worker=0,
                          eval_seconds=now() - t0, mode="sliced",
                          nslices=max(len(born_bounds), len(epol_bounds),
                                      1))

    def forget(self, entry: RegistryEntry) -> None:
        """Nothing published; the registry eviction already dropped it."""

    def shutdown(self) -> None:
        self._closed = True  # idempotent by construction


# ----------------------------------------------------------------------
# warm process fleet ("real" backend)
# ----------------------------------------------------------------------
@dataclass
class _Publication:
    """One (molecule, epsilon config) published into shared memory."""

    bundle: SharedArrayBundle
    plan_meta: dict
    params: ApproximationParams
    mol_name: str


@array_contract(
    positions="(natoms, 3) float64 C",
    radii="(natoms,) float64 C",
    charges="(natoms,) float64 C",
    q_points="(nquad, 3) float64 C",
    q_normals="(nquad, 3) float64 C",
    q_weights="(nquad,) float64 C",
    plan_born="plan",
    plan_epol="plan",
)
def _publication_arrays(entry: RegistryEntry,
                        plans: PlanSet) -> dict[str, Any]:
    surface = entry.calc.prepare_surface()
    arrays: dict[str, Any] = {
        "positions": entry.molecule.positions,
        "radii": entry.molecule.radii,
        "charges": entry.molecule.charges,
        "q_points": surface.points,
        "q_normals": surface.normals,
        "q_weights": surface.weights,
    }
    for prefix, plan in (("plan_born", plans.born),
                         ("plan_epol", plans.epol)):
        for fname, arr in plan.as_arrays().items():
            arrays[f"{prefix}_{fname}"] = arr
    return arrays


class _WorkerState:
    """One worker's cached prepared state for one publication."""

    def __init__(self, bundle: SharedArrayBundle, plan_meta: dict,
                 params: ApproximationParams, mol_name: str) -> None:
        self.bundle = bundle
        self.params = params
        self.molecule = Molecule(bundle.view("positions"),
                                 bundle.view("radii"),
                                 bundle.view("charges"), name=mol_name)
        surface = SurfaceQuadrature(bundle.view("q_points"),
                                    bundle.view("q_normals"),
                                    bundle.view("q_weights"))
        # Deterministic rebuild from the shared coordinates: the published
        # plans' node/point ids are valid against these trees by the same
        # replicated-data argument run_real relies on.
        self.atoms = AtomTreeData.build(self.molecule,
                                        leaf_cap=params.leaf_cap,
                                        sfc=params.tree_sfc,
                                        compress=params.tree_compress)
        self.quad = QuadTreeData.build(surface,
                                       leaf_cap=params.quad_leaf_cap,
                                       sfc=params.tree_sfc,
                                       compress=params.tree_compress)
        self.plans = PlanSet(
            born=InteractionPlan.from_arrays(
                plan_meta["born"],
                {f: bundle.view(f"plan_born_{f}")
                 for f in PLAN_ARRAY_FIELDS}),
            epol=InteractionPlan.from_arrays(
                plan_meta["epol"],
                {f: bundle.view(f"plan_epol_{f}")
                 for f in PLAN_ARRAY_FIELDS}))
        if checks_enabled():
            self.plans.born.validate()
            self.plans.epol.validate()

    def release(self) -> None:
        """Drop every view, then try to unmap the segment (eviction)."""
        self.molecule = self.atoms = self.quad = self.plans = None  # type: ignore[assignment]
        try:
            self.bundle.close()
        except BufferError:
            # A view escaped (e.g. a result still referencing the mmap);
            # the mapping stays until process exit -- only memory, never
            # a /dev/shm name, outlives us (the parent owns unlink).
            pass


def _cached_state(cache: dict[str, _WorkerState], name: str, layout: Any,
                  plan_meta: dict, params: ApproximationParams,
                  mol_name: str) -> tuple[_WorkerState, bool]:
    """The worker's prepared state for publication ``name`` (attach and
    cache on first sight, LRU-bounded); returns ``(state, cold)``."""
    state = cache.get(name)
    cold = state is None
    if cold:
        state = _WorkerState(
            SharedArrayBundle.attach(name, layout, pin=False),
            plan_meta, params, mol_name)
        cache[name] = state
        while len(cache) > WORKER_CACHE_ENTRIES:
            victim = next(k for k in cache if k != name)
            cache.pop(victim).release()
    return state, cold


def _run_born_slice(state: _WorkerState, rank: int, scratch_name: str,
                    scratch_layout: Any, lo: int, hi: int) -> list | None:
    """Round 1 of a sliced request: write this range's flat Born
    contribution values into the request scratch; returns the write
    intents under REPRO_CHECKS (else None)."""
    plan = state.plans.born
    f0, f1 = int(plan.far_start[lo]), int(plan.far_start[hi])
    n0 = int(plan.near_point_start[lo])
    n1 = int(plan.near_point_start[hi])
    scratch = SharedArrayBundle.attach(scratch_name, scratch_layout,
                                       pin=False)
    try:
        far_view = scratch.view("born_far")
        near_view = scratch.view("born_near")
        execute_born_plan(plan, state.atoms, state.quad,
                          row_range=(lo, hi),
                          flat_out={"far": far_view[f0:f1],
                                    "near": near_view[n0:n1]})
        intents = None
        if checks_enabled():
            # Declare this slice's scratch writes so the parent can run
            # the race detector across every worker of the request: the
            # kernel writes exactly the flat CSR spans of its row range.
            tracker = WriteIntentTracker(rank, capture_stacks=False)
            tracker.record_write("sliced:born_far", far_view.shape,
                                 slice(f0, f1))
            tracker.record_write("sliced:born_near", near_view.shape,
                                 slice(n0, n1))
            intents = tracker.payload()
        del far_view, near_view
        return intents
    finally:
        scratch.close()


def _run_epol_slice(state: _WorkerState, scratch_name: str,
                    scratch_layout: Any, lo: int, hi: int
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Round 2 of a sliced request: per-row E_pol terms for ``[lo, hi)``
    against the parent-reduced Born radii in the request scratch."""
    scratch = SharedArrayBundle.attach(scratch_name, scratch_layout,
                                       pin=False)
    try:
        born_sorted = np.array(scratch.view("born_sorted"))
    finally:
        scratch.close()
    ectx = EnergyContext.build(state.atoms, born_sorted,
                               state.params.eps_epol)
    return epol_row_terms(state.plans.epol, ectx, row_range=(lo, hi))


def _serve_worker_loop(rank: int, tasks: Any, results: Any) -> None:
    """One warm worker: attach-and-cache molecules, evaluate requests.

    Module-level so the spawn start method can import it by name; the
    loop exits on the pool's shutdown sentinel.  Task kinds: ``"run"``
    (whole-plan evaluation), ``"born_slice"``/``"epol_slice"`` (one row
    range of a sliced request), ``"forget"`` (drop cached publication)
    and :data:`CRASH_NEXT` (test-only fault injection).
    """
    cache: dict[str, _WorkerState] = {}
    crash_armed = False
    while True:
        # A worker waiting for its next task has no liveness obligation:
        # the parent's shutdown sentinel is the wakeup, and a dead parent
        # takes the worker with it (daemon process).
        task = tasks.get()  # repro-lint: disable=REP008 -- sentinel-bounded
        if task is None:
            # Drop every cached view before exiting so the mappings close
            # cleanly (no BufferError noise at interpreter shutdown).
            for state in cache.values():
                state.release()
            cache.clear()
            break
        kind = task[0]
        if kind == "forget":
            state = cache.pop(task[1], None)
            if state is not None:
                state.release()
            continue
        if kind == CRASH_NEXT:
            crash_armed = True
            continue
        req_id = task[1] if len(task) > 1 else None
        if crash_armed:
            # Die with the task already dequeued and no result posted --
            # the shape of a real mid-evaluation worker death.
            os._exit(3)
        try:
            if kind == "run":
                _, req_id, name, layout, plan_meta, params, mol_name = task
                state, cold = _cached_state(cache, name, layout, plan_meta,
                                            params, mol_name)
                t0 = now()
                energy = evaluate_pipeline(state.molecule, state.atoms,
                                           state.quad, state.plans,
                                           state.params,
                                           eps_epol=state.params.eps_epol)
                results.put(("ok", req_id, rank, energy, now() - t0, cold))
            elif kind in ("born_slice", "epol_slice"):
                (_, req_id, name, layout, plan_meta, params, mol_name,
                 scratch_name, scratch_layout, lo, hi) = task
                state, cold = _cached_state(cache, name, layout, plan_meta,
                                            params, mol_name)
                t0 = now()
                if kind == "born_slice":
                    intents = _run_born_slice(state, rank, scratch_name,
                                              scratch_layout, lo, hi)
                    results.put(("born_ok", req_id, rank, lo, hi,
                                 now() - t0, cold, intents))
                else:
                    far_t, near_t = _run_epol_slice(state, scratch_name,
                                                    scratch_layout, lo, hi)
                    results.put(("epol_ok", req_id, rank, lo, hi,
                                 np.asarray(far_t), np.asarray(near_t),
                                 now() - t0, cold))
            else:
                raise ValueError(f"unknown worker task kind {kind!r}")
        except BaseException:
            results.put(("error", req_id, rank, traceback.format_exc(),
                         0.0, False))


class ProcessFleet:
    """``P`` warm OS-process workers behind one task queue.

    Requests race for workers (decoy-scoring is embarrassingly parallel
    across requests), molecules are published to shared memory once per
    epsilon configuration, and shutdown is idempotent with finalizer
    backstops at every layer (pool processes, shared segments).
    """

    backend = "real"

    def __init__(self, nworkers: int, *,
                 start_method: str | None = None) -> None:
        self.nworkers = nworkers
        self._pool = PersistentWorkerPool(nworkers, _serve_worker_loop,
                                          start_method=start_method)
        self._lock = threading.Lock()
        self._published: dict[tuple[str, EpsConfig], _Publication] = {}
        self.publications = 0

    @property
    def respawns(self) -> int:
        """Workers replaced after mid-task deaths (degraded-mode count)."""
        return self._pool.respawns

    # -- publication -----------------------------------------------------
    def _ensure_published(self, entry: RegistryEntry,
                          cfg: EpsConfig) -> _Publication:
        pub_key = (entry.key, cfg)
        with self._lock:
            pub = self._published.get(pub_key)
            if pub is not None:
                return pub
        # Plan build (cache-mediated) happens outside the fleet lock.
        plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
        params = dataclasses.replace(entry.params, eps_born=cfg.eps_born,
                                     eps_epol=cfg.eps_epol)
        bundle = SharedArrayBundle.create(_publication_arrays(entry, plans))
        pub = _Publication(
            bundle=bundle,
            plan_meta={"born": plans.born.meta(), "epol": plans.epol.meta()},
            params=params, mol_name=entry.molecule.name)
        with self._lock:
            race = self._published.get(pub_key)
            if race is not None:  # another thread published first
                bundle.close()
                bundle.unlink()
                return race
            self._published[pub_key] = pub
            self.publications += 1
        return pub

    def forget(self, entry: RegistryEntry) -> None:
        """Registry-eviction hook: unpublish the entry's segments and tell
        every worker to drop its cached state for them."""
        with self._lock:
            victims = [k for k in self._published if k[0] == entry.key]
            pubs = [self._published.pop(k) for k in victims]
        for pub in pubs:
            if not self._pool.closed:
                try:
                    self._pool.broadcast(("forget", pub.bundle.name))
                except PoolError:
                    pass
            pub.bundle.close()
            pub.bundle.unlink()

    # -- execution -------------------------------------------------------
    def run_batch(self, items: list[tuple[int, RegistryEntry, EpsConfig]]
                  ) -> dict[int, EvalResult]:
        if self._pool.closed:
            raise FleetError("fleet is shut down")
        for req_id, entry, cfg in items:
            pub = self._ensure_published(entry, cfg)
            try:
                self._pool.submit(("run", req_id, pub.bundle.name,
                                   pub.bundle.layout, pub.plan_meta,
                                   pub.params, pub.mol_name))
            except PoolError as err:
                raise FleetError(str(err)) from err
        # Collection is id-based, not count-based: stale results from an
        # earlier aborted sliced request may still be in flight on the
        # shared results queue and must not desynchronise this batch.
        expected = {req_id for req_id, _, _ in items}
        out: dict[int, EvalResult] = {}
        try:
            while expected:
                res = self._pool.next_result()
                kind, req_id = res[0], res[1]
                if req_id not in expected or kind not in ("ok", "error"):
                    continue  # a dead request's straggler slice/result
                expected.discard(req_id)
                if kind == "ok":
                    _, _, rank, energy, secs, cold = res
                    out[req_id] = EvalResult(energy=energy, worker=rank,
                                             eval_seconds=secs,
                                             cold_attach=cold)
                else:
                    _, _, rank, tb, secs, cold = res
                    out[req_id] = EvalResult(energy=float("nan"),
                                             worker=rank, eval_seconds=secs,
                                             error=tb)
        except PoolError as err:
            raise FleetError(str(err)) from err
        return out

    @array_contract(
        born_far="(nnz_far,) float64 C",
        born_near="(nnz_near,) float64 C",
        born_sorted="(npoints,) float64 C",
    )
    def run_sliced(self, req_id: int, entry: RegistryEntry,
                   cfg: EpsConfig) -> EvalResult:
        """One request fanned over every warm worker, bit-identically.

        Two parent-mediated rounds over the request's plans (the serving
        analogue of ``rank_program``'s hybrid phases):

        1. **Born slices** -- workers fill disjoint flat-CSR spans of a
           per-request scratch segment; the parent replays the serial
           scatters (:func:`~repro.serve.sliced.reduce_born_flat`) and
           pushes Born radii into the scratch;
        2. **E_pol slices** -- workers return per-row far/near terms
           against those radii; the parent concatenates ascending and
           replays the serial fold
           (:func:`~repro.serve.sliced.fold_pair_terms`).

        Raises :class:`SliceError` when a slice fails or its worker dies
        (the pool is respawned to full width first -- later requests
        succeed), :class:`FleetError` when the fleet is unusable.
        """
        if self._pool.closed:
            raise FleetError("fleet is shut down")
        t0 = now()
        pub = self._ensure_published(entry, cfg)
        plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
        atoms = entry.calc.atom_tree()
        far_total, near_total = born_flat_sizes(plans.born)
        # Per-request scratch: worker-filled flat Born contributions plus
        # the parent-reduced radii round 2 reads back.  Zero-filled so
        # rows no slice covers (there are none) could never read junk.
        scratch = SharedArrayBundle.create({
            "born_far": np.zeros(max(far_total, 1)),
            "born_near": np.zeros(max(near_total, 1)),
            "born_sorted": np.zeros(atoms.tree.npoints),
        })
        try:
            head = (pub.bundle.name, pub.bundle.layout, pub.plan_meta,
                    pub.params, pub.mol_name, scratch.name, scratch.layout)
            born_bounds = slice_bounds(plans.born.row_pair_weights(),
                                       self.nworkers)
            born_res = self._run_slice_phase(req_id, "born_slice", head,
                                             born_bounds)
            cold = any(r[6] for r in born_res)
            if checks_enabled():
                self._check_slice_races(req_id, born_res)
            far_view = scratch.view("born_far")
            near_view = scratch.view("born_near")
            partial = reduce_born_flat(plans.born, atoms,
                                       far_view[:far_total],
                                       near_view[:near_total])
            del far_view, near_view
            born_sorted = push_integrals_to_atoms(
                atoms, partial,
                max_radius=2.0 * entry.molecule.bounding_radius)
            sorted_view = scratch.view("born_sorted")
            sorted_view[:] = born_sorted
            del sorted_view
            epol_bounds = slice_bounds(
                plans.epol.row_pair_weights(
                    nbins=epol_nbins(born_sorted, cfg.eps_epol)),
                self.nworkers)
            epol_res = self._run_slice_phase(req_id, "epol_slice", head,
                                             epol_bounds)
            cold = cold or any(r[8] for r in epol_res)
            far_terms = np.zeros(plans.epol.nrows)
            near_terms = np.zeros(plans.epol.nrows)
            for _, _, _, lo, hi, far_t, near_t, _, _ in epol_res:
                far_terms[lo:hi] = far_t
                near_terms[lo:hi] = near_t
            pair_sum = fold_pair_terms(far_terms, near_terms)
            energy = epol_from_pair_sum(
                pair_sum, epsilon_solvent=pub.params.epsilon_solvent)
        finally:
            scratch.close()
            scratch.unlink()
        return EvalResult(energy=energy, worker=-1,
                          eval_seconds=now() - t0, cold_attach=cold,
                          mode="sliced",
                          nslices=max(len(born_bounds), len(epol_bounds),
                                      1))

    def _run_slice_phase(self, req_id: int, kind: str, head: tuple,
                         bounds: list[tuple[int, int]]) -> list:
        """Dispatch one round of slice tasks and collect its results.

        Id-filtered collection: results for other request ids (stragglers
        of an aborted sliced request) are skipped, never miscounted.  A
        slice error raises :class:`SliceError`; a worker death respawns
        the pool to full width first, so only *this* request fails.
        """
        ok_kind = "born_ok" if kind == "born_slice" else "epol_ok"
        try:
            for lo, hi in bounds:
                self._pool.submit((kind, req_id) + head + (lo, hi))
        except PoolError as err:
            raise FleetError(str(err)) from err
        results: list = []
        while len(results) < len(bounds):
            try:
                res = self._pool.next_result()
            except PoolError as err:
                respawned = self._respawn_or_raise(err)
                raise SliceError(
                    f"worker died mid-slice ({err}); respawned "
                    f"{respawned} worker(s), request {req_id} lost its "
                    "in-flight slice") from err
            if res[1] != req_id:
                continue  # straggler from an earlier failed request
            if res[0] == "error":
                raise SliceError(res[3])
            if res[0] == ok_kind:
                results.append(res)
        results.sort(key=lambda r: r[3])  # ascending row ranges
        return results

    def _respawn_or_raise(self, err: PoolError) -> int:
        """Restore pool width after a worker death; escalate to a fatal
        :class:`FleetError` when no replacement can be started."""
        try:
            replaced = self._pool.respawn()
        except PoolError:
            replaced = 0
        if replaced == 0:
            raise FleetError(str(err)) from err
        return replaced

    @staticmethod
    def _check_slice_races(req_id: int, born_res: list) -> None:
        """REPRO_CHECKS: merge every slice's declared scratch writes and
        fail the request if any two ranks' spans overlap."""
        intents = []
        for res in born_res:
            if res[7] is not None:
                intents.extend(intents_from_payload(res[7]))
        races = find_races(intents)
        if races:
            raise SliceError(
                f"request {req_id}: overlapping scratch writes across "
                f"slices: {races[0]}")

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and unlink every published segment.  Idempotent;
        also reachable via GC finalizers on the pool and the bundles."""
        self._pool.shutdown()
        with self._lock:
            pubs = list(self._published.values())
            self._published.clear()
        for pub in pubs:
            pub.bundle.close()
            pub.bundle.unlink()

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
