"""Warm execution fleets: where served requests actually compute.

Two fleets implement one contract (``run_batch`` over ``(request id,
registry entry, epsilon config)`` items, plus ``forget``/``shutdown``):

* :class:`InlineFleet` ("sim" backend) evaluates in the scheduler thread
  against the registry entry's own calculator -- zero processes, the
  reference substrate for tests and the plan/tree-reuse benchmark;
* :class:`ProcessFleet` ("real" backend) keeps ``P``
  :class:`~repro.parallel.procpool.pool.PersistentWorkerPool` workers
  alive across requests.  Each molecule's arrays and interaction plans
  are published **once** into a
  :class:`~repro.parallel.procpool.shm.SharedArrayBundle` per epsilon
  configuration; workers attach lazily, rebuild the deterministic
  octrees, cache the prepared state, and then serve every later request
  for that molecule at plan-execution cost.

Determinism contract: a served request evaluates the *whole* plan (every
row) through :func:`evaluate_pipeline` -- the exact kernel sequence of
:meth:`repro.core.driver.PolarizationEnergyCalculator.profile` -- so the
returned energy is bit-identical to a cold ``driver.run()`` of the same
configuration, per request, regardless of fleet width, batch shape or
arrival order.  Fleet parallelism is *across* requests (the decoy-scoring
shape of the workload), never inside one energy sum.
"""

from __future__ import annotations

import dataclasses
import threading
import traceback
from dataclasses import dataclass
from typing import Any

from ..analysis_static.checks import checks_enabled
from ..core.born import AtomTreeData, QuadTreeData, push_integrals_to_atoms
from ..core.energy import EnergyContext, epol_from_pair_sum
from ..core.params import ApproximationParams
from ..molecule.molecule import Molecule
from ..parallel.procpool import (PersistentWorkerPool, PoolError,
                                 SharedArrayBundle)
from ..plan import InteractionPlan, PlanSet
from ..plan.executor import execute_born_plan, execute_epol_plan
from ..plan.schema import PLAN_ARRAY_FIELDS
from ..surface.sas import SurfaceQuadrature
from .metrics import now
from .registry import RegistryEntry

#: Molecules one warm worker keeps attached before evicting its oldest.
WORKER_CACHE_ENTRIES = 8


class FleetError(RuntimeError):
    """The fleet cannot serve (worker death, shut-down pool)."""


@dataclass(frozen=True)
class EpsConfig:
    """The per-request kernel configuration (epsilon overrides)."""

    eps_born: float
    eps_epol: float

    @classmethod
    def resolve(cls, params: ApproximationParams,
                eps_born: float | None = None,
                eps_epol: float | None = None) -> "EpsConfig":
        return cls(
            eps_born=float(params.eps_born if eps_born is None else eps_born),
            eps_epol=float(params.eps_epol if eps_epol is None else eps_epol))


@dataclass
class EvalResult:
    """One served evaluation: the energy plus provenance/timing."""

    energy: float
    worker: int
    eval_seconds: float
    cold_attach: bool = False
    error: str | None = None


def evaluate_pipeline(molecule: Molecule, atoms: AtomTreeData,
                      quad: QuadTreeData, plans: PlanSet,
                      params: ApproximationParams, *,
                      eps_epol: float) -> float:
    """Full-plan serial evaluation -- the serving layer's single kernel.

    Executes every plan row in ascending order: exactly the computation
    of ``PolarizationEnergyCalculator.profile()``, so both fleets (and
    every worker of the process fleet) produce energies bit-identical to
    the cold serial driver for the same configuration.
    """
    partial = execute_born_plan(plans.born, atoms, quad)
    born_sorted = push_integrals_to_atoms(
        atoms, partial, max_radius=2.0 * molecule.bounding_radius)
    ectx = EnergyContext.build(atoms, born_sorted, eps_epol)
    epartial = execute_epol_plan(plans.epol, ectx)
    return epol_from_pair_sum(epartial.pair_sum,
                              epsilon_solvent=params.epsilon_solvent)


# ----------------------------------------------------------------------
# in-process fleet ("sim" backend)
# ----------------------------------------------------------------------
class InlineFleet:
    """Evaluates batches inline in the calling (scheduler) thread."""

    backend = "sim"
    nworkers = 1

    def __init__(self) -> None:
        self._closed = False

    def run_batch(self, items: list[tuple[int, RegistryEntry, EpsConfig]]
                  ) -> dict[int, EvalResult]:
        if self._closed:
            raise FleetError("fleet is shut down")
        out: dict[int, EvalResult] = {}
        for req_id, entry, cfg in items:
            t0 = now()
            try:
                plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
                energy = evaluate_pipeline(
                    entry.molecule, entry.calc.atom_tree(),
                    entry.calc.quad_tree(), plans, entry.params,
                    eps_epol=cfg.eps_epol)
                out[req_id] = EvalResult(energy=energy, worker=0,
                                         eval_seconds=now() - t0)
            except Exception:
                out[req_id] = EvalResult(
                    energy=float("nan"), worker=0, eval_seconds=now() - t0,
                    error=traceback.format_exc())
        return out

    def forget(self, entry: RegistryEntry) -> None:
        """Nothing published; the registry eviction already dropped it."""

    def shutdown(self) -> None:
        self._closed = True  # idempotent by construction


# ----------------------------------------------------------------------
# warm process fleet ("real" backend)
# ----------------------------------------------------------------------
@dataclass
class _Publication:
    """One (molecule, epsilon config) published into shared memory."""

    bundle: SharedArrayBundle
    plan_meta: dict
    params: ApproximationParams
    mol_name: str


def _publication_arrays(entry: RegistryEntry,
                        plans: PlanSet) -> dict[str, Any]:
    surface = entry.calc.prepare_surface()
    arrays: dict[str, Any] = {
        "positions": entry.molecule.positions,
        "radii": entry.molecule.radii,
        "charges": entry.molecule.charges,
        "q_points": surface.points,
        "q_normals": surface.normals,
        "q_weights": surface.weights,
    }
    for prefix, plan in (("plan_born", plans.born),
                         ("plan_epol", plans.epol)):
        for fname, arr in plan.as_arrays().items():
            arrays[f"{prefix}_{fname}"] = arr
    return arrays


class _WorkerState:
    """One worker's cached prepared state for one publication."""

    def __init__(self, bundle: SharedArrayBundle, plan_meta: dict,
                 params: ApproximationParams, mol_name: str) -> None:
        self.bundle = bundle
        self.params = params
        self.molecule = Molecule(bundle.view("positions"),
                                 bundle.view("radii"),
                                 bundle.view("charges"), name=mol_name)
        surface = SurfaceQuadrature(bundle.view("q_points"),
                                    bundle.view("q_normals"),
                                    bundle.view("q_weights"))
        # Deterministic rebuild from the shared coordinates: the published
        # plans' node/point ids are valid against these trees by the same
        # replicated-data argument run_real relies on.
        self.atoms = AtomTreeData.build(self.molecule,
                                        leaf_cap=params.leaf_cap)
        self.quad = QuadTreeData.build(surface,
                                       leaf_cap=params.quad_leaf_cap)
        self.plans = PlanSet(
            born=InteractionPlan.from_arrays(
                plan_meta["born"],
                {f: bundle.view(f"plan_born_{f}")
                 for f in PLAN_ARRAY_FIELDS}),
            epol=InteractionPlan.from_arrays(
                plan_meta["epol"],
                {f: bundle.view(f"plan_epol_{f}")
                 for f in PLAN_ARRAY_FIELDS}))
        if checks_enabled():
            self.plans.born.validate()
            self.plans.epol.validate()

    def release(self) -> None:
        """Drop every view, then try to unmap the segment (eviction)."""
        self.molecule = self.atoms = self.quad = self.plans = None  # type: ignore[assignment]
        try:
            self.bundle.close()
        except BufferError:
            # A view escaped (e.g. a result still referencing the mmap);
            # the mapping stays until process exit -- only memory, never
            # a /dev/shm name, outlives us (the parent owns unlink).
            pass


def _serve_worker_loop(rank: int, tasks: Any, results: Any) -> None:
    """One warm worker: attach-and-cache molecules, evaluate requests.

    Module-level so the spawn start method can import it by name; the
    loop exits on the pool's shutdown sentinel.
    """
    cache: dict[str, _WorkerState] = {}
    while True:
        task = tasks.get()
        if task is None:
            # Drop every cached view before exiting so the mappings close
            # cleanly (no BufferError noise at interpreter shutdown).
            for state in cache.values():
                state.release()
            cache.clear()
            break
        kind = task[0]
        if kind == "forget":
            state = cache.pop(task[1], None)
            if state is not None:
                state.release()
            continue
        req_id = task[1] if len(task) > 1 else None
        try:
            _, req_id, name, layout, plan_meta, params, mol_name = task
            state = cache.get(name)
            cold = state is None
            if cold:
                state = _WorkerState(
                    SharedArrayBundle.attach(name, layout, pin=False),
                    plan_meta, params, mol_name)
                cache[name] = state
                while len(cache) > WORKER_CACHE_ENTRIES:
                    victim = next(k for k in cache if k != name)
                    cache.pop(victim).release()
            t0 = now()
            energy = evaluate_pipeline(state.molecule, state.atoms,
                                       state.quad, state.plans,
                                       state.params,
                                       eps_epol=state.params.eps_epol)
            results.put(("ok", req_id, rank, energy, now() - t0, cold))
        except BaseException:
            results.put(("error", req_id, rank, traceback.format_exc(),
                         0.0, False))


class ProcessFleet:
    """``P`` warm OS-process workers behind one task queue.

    Requests race for workers (decoy-scoring is embarrassingly parallel
    across requests), molecules are published to shared memory once per
    epsilon configuration, and shutdown is idempotent with finalizer
    backstops at every layer (pool processes, shared segments).
    """

    backend = "real"

    def __init__(self, nworkers: int, *,
                 start_method: str | None = None) -> None:
        self.nworkers = nworkers
        self._pool = PersistentWorkerPool(nworkers, _serve_worker_loop,
                                          start_method=start_method)
        self._lock = threading.Lock()
        self._published: dict[tuple[str, EpsConfig], _Publication] = {}
        self.publications = 0

    # -- publication -----------------------------------------------------
    def _ensure_published(self, entry: RegistryEntry,
                          cfg: EpsConfig) -> _Publication:
        pub_key = (entry.key, cfg)
        with self._lock:
            pub = self._published.get(pub_key)
            if pub is not None:
                return pub
        # Plan build (cache-mediated) happens outside the fleet lock.
        plans = entry.plans_for(cfg.eps_born, cfg.eps_epol)
        params = dataclasses.replace(entry.params, eps_born=cfg.eps_born,
                                     eps_epol=cfg.eps_epol)
        bundle = SharedArrayBundle.create(_publication_arrays(entry, plans))
        pub = _Publication(
            bundle=bundle,
            plan_meta={"born": plans.born.meta(), "epol": plans.epol.meta()},
            params=params, mol_name=entry.molecule.name)
        with self._lock:
            race = self._published.get(pub_key)
            if race is not None:  # another thread published first
                bundle.close()
                bundle.unlink()
                return race
            self._published[pub_key] = pub
            self.publications += 1
        return pub

    def forget(self, entry: RegistryEntry) -> None:
        """Registry-eviction hook: unpublish the entry's segments and tell
        every worker to drop its cached state for them."""
        with self._lock:
            victims = [k for k in self._published if k[0] == entry.key]
            pubs = [self._published.pop(k) for k in victims]
        for pub in pubs:
            if not self._pool.closed:
                try:
                    self._pool.broadcast(("forget", pub.bundle.name))
                except PoolError:
                    pass
            pub.bundle.close()
            pub.bundle.unlink()

    # -- execution -------------------------------------------------------
    def run_batch(self, items: list[tuple[int, RegistryEntry, EpsConfig]]
                  ) -> dict[int, EvalResult]:
        if self._pool.closed:
            raise FleetError("fleet is shut down")
        for req_id, entry, cfg in items:
            pub = self._ensure_published(entry, cfg)
            try:
                self._pool.submit(("run", req_id, pub.bundle.name,
                                   pub.bundle.layout, pub.plan_meta,
                                   pub.params, pub.mol_name))
            except PoolError as err:
                raise FleetError(str(err)) from err
        out: dict[int, EvalResult] = {}
        try:
            for _ in items:
                kind, req_id, rank, payload, secs, cold = \
                    self._pool.next_result()
                if kind == "ok":
                    out[req_id] = EvalResult(energy=payload, worker=rank,
                                             eval_seconds=secs,
                                             cold_attach=cold)
                else:
                    out[req_id] = EvalResult(energy=float("nan"),
                                             worker=rank, eval_seconds=secs,
                                             error=payload)
        except PoolError as err:
            raise FleetError(str(err)) from err
        return out

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and unlink every published segment.  Idempotent;
        also reachable via GC finalizers on the pool and the bundles."""
        self._pool.shutdown()
        with self._lock:
            pubs = list(self._published.values())
            self._published.clear()
        for pub in pubs:
            pub.bundle.close()
            pub.bundle.unlink()

    def __enter__(self) -> "ProcessFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
