"""Intra-request row slicing: pure plan-partitioning and reduction.

One giant molecule, every warm worker: the serving layer splits a
request's interaction plans into contiguous weight-balanced row ranges
(the load-balance scheme of ``rank_program`` in
:mod:`repro.parallel.procpool.runner`), executes each range on a
different worker, and reduces the partials here.  The reduction is the
part that must not drift by a bit, so it replays the *exact* serial
operations instead of summing scalar partials:

* **Born**: workers write each flat CSR contribution value -- once, by
  position -- into disjoint slices of two shared arrays
  (:func:`repro.plan.executor.execute_born_plan` with ``flat_out``);
  :func:`reduce_born_flat` then performs the single full-range
  ``np.add.at`` scatters, i.e. the same index arrays in the same
  row-major element order as a serial full-plan execution.
* **E_pol**: workers return per-row far/near terms
  (:func:`repro.plan.executor.epol_row_terms`); the reducer concatenates
  them in ascending row order and :func:`fold_pair_terms` replays the
  serial interleaved left fold (far before near within each row).

Accumulation order is therefore identical to
:func:`repro.serve.fleet.evaluate_pipeline` and to a cold
``driver.run()`` regardless of slice count -- worker width picks only
*who computes which rows*, never the order anything is added.  Every
function in this module is pure (no clocks, no processes, no shared
state); the fleets own transport and timing.
"""

from __future__ import annotations

import numpy as np

from ..analysis_static.flow.contracts import array_contract
from ..core.binning import build_binning
from ..core.born import AtomTreeData, BornPartial
from ..octree.partition import segment_by_weight
from ..plan.schema import InteractionPlan


def slice_bounds(weights: np.ndarray, nslices: int
                 ) -> list[tuple[int, int]]:
    """Contiguous weight-balanced row ranges covering ``[0, len(weights))``
    exactly once, in ascending order; empty ranges (more slices than
    rows, or zero-weight tails) are dropped."""
    bounds = segment_by_weight(np.asarray(weights), int(nslices))
    return [(int(lo), int(hi)) for lo, hi in bounds if hi > lo]


@array_contract(returns="dims: nnz_far, nnz_near")
def born_flat_sizes(plan: InteractionPlan) -> tuple[int, int]:
    """Total flat CSR entry counts ``(far, near)`` of a Born plan -- the
    scratch-array sizes one sliced request needs."""
    n = plan.nrows
    return (int(plan.far_start[n]), int(plan.near_point_start[n]))


@array_contract(far_flat="(nnz_far,) float64 view-ok",
                near_flat="(nnz_near,) float64 view-ok")
def reduce_born_flat(plan: InteractionPlan, atoms: AtomTreeData,
                     far_flat: np.ndarray, near_flat: np.ndarray
                     ) -> BornPartial:
    """The serial Born scatter, replayed over worker-filled flat arrays.

    ``far_flat``/``near_flat`` must carry every flat contribution value
    of the full plan (each slot written by exactly one slice).  The two
    ``np.add.at`` calls below are the ones a full-range
    :func:`~repro.plan.executor.execute_born_plan` would have issued --
    same index arrays, same row-major element order -- so the returned
    partial is bit-identical to the serial execution however the rows
    were partitioned.
    """
    far_total, near_total = born_flat_sizes(plan)
    if far_flat.shape != (far_total,) or near_flat.shape != (near_total,):
        raise ValueError(
            f"flat arrays must have shapes ({far_total},)/({near_total},), "
            f"got {far_flat.shape}/{near_flat.shape}")
    partial = BornPartial.zeros(atoms)
    partial.counters = plan.counters(0, plan.nrows)
    if far_total:
        np.add.at(partial.s_node, plan.far_nodes[:far_total], far_flat)
    if near_total:
        np.add.at(partial.s_atom, plan.near_points[:near_total], near_flat)
    return partial


@array_contract(born_sorted="(npoints,) float64 view-ok")
def epol_nbins(born_sorted: np.ndarray, eps_epol: float) -> int:
    """The energy binning width for a Born-radii vector -- what
    ``row_pair_weights(nbins=...)`` needs to weigh E_pol rows without
    building a full :class:`~repro.core.energy.EnergyContext`."""
    return int(build_binning(born_sorted, eps_epol).nbins)


@array_contract(far_terms="(nrows,) float64 view-ok",
                near_terms="(nrows,) float64 view-ok")
def fold_pair_terms(far_terms: np.ndarray,
                    near_terms: np.ndarray) -> float:
    """The serial pair-sum fold over full-plan per-row term arrays:
    ascending row order, far before near within a row -- exactly the
    left fold of :func:`~repro.plan.executor.execute_epol_plan` (IEEE
    addition is not associative; this order is the contract)."""
    if far_terms.shape != near_terms.shape:
        raise ValueError("far/near term arrays must align row for row")
    total = 0.0
    for i in range(len(far_terms)):
        total += far_terms[i]
        total += near_terms[i]
    return float(total)
