"""Content-addressed molecule registry with a byte-budget LRU.

A serving workload (scoring thousands of ZDOCK decoys) keeps re-asking
for the same molecules; everything expensive about a request -- surface
sampling, the two octrees, the interaction plans -- depends only on the
molecule's *content* and the structural parameters.  The registry
therefore keys each entry by a SHA-256 over the coordinate/radius/charge
bytes plus a parameter fingerprint: registering the same conformation
twice (even from a different ``Molecule`` object) lands on the same warm
entry, while a perturbed decoy pose hashes elsewhere.

Entries hold a :class:`~repro.core.driver.PolarizationEnergyCalculator`
whose :class:`~repro.plan.cache.PlanCache` is byte-bounded, and the
registry itself evicts least-recently-used entries by **measured** bytes
(:func:`measured_nbytes` walks the entry's live arrays; no estimates)
once an optional ``max_bytes`` budget is exceeded.  Eviction fires the
``on_evict`` hook so the fleet can unpublish the entry's shared-memory
segments and tell workers to drop their caches.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from typing import Callable

import numpy as np

from ..core.driver import PolarizationEnergyCalculator
from ..core.params import ApproximationParams
from ..molecule.molecule import Molecule
from ..plan import PlanCache, PlanSet


def content_key(molecule: Molecule, params: ApproximationParams) -> str:
    """Stable content hash of a (molecule, structural parameters) pair.

    Hashes the raw float64 bytes of positions/radii/charges plus the
    dataclass repr of ``params`` (deterministic for a frozen field set),
    so the key changes iff something that could change served energies
    or prepared state changes.  The octree variant
    (``params.tree_variant``) is hashed as an explicit component on top
    of the repr: plans and shared-memory publications are only valid
    against the exact tree layout they were built from, so two variants
    of one conformation must never collide even if the params repr ever
    stops spelling the variant fields out.
    """
    h = hashlib.sha256()
    for arr in (molecule.positions, molecule.radii, molecule.charges):
        h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    h.update(repr(params).encode())
    if params is not None:
        h.update(b"tree:" + params.tree_variant.encode())
    return h.hexdigest()[:16]


def measured_nbytes(root: object) -> int:
    """Sum of distinct NumPy buffer bytes reachable from ``root``.

    Walks dataclasses, plain ``repro`` objects, dicts, lists and tuples
    (cycle-guarded, depth-limited); views are charged once via their base
    buffer.  This is what the registry's byte budget meters -- the arrays
    an entry actually pins in memory, not a guess.
    """
    seen: set[int] = set()
    counted: set[int] = set()
    total = 0
    stack: list[tuple[object, int]] = [(root, 0)]
    while stack:
        obj, depth = stack.pop()
        if obj is None or depth > 8 or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            base = obj
            while isinstance(base.base, np.ndarray):
                base = base.base
            if id(base) not in counted:
                counted.add(id(base))
                total += int(base.nbytes)
        elif isinstance(obj, dict):
            stack.extend((v, depth + 1) for v in obj.values())
        elif isinstance(obj, (list, tuple)):
            stack.extend((v, depth + 1) for v in obj)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            stack.extend((getattr(obj, f.name), depth + 1)
                         for f in dataclasses.fields(obj))
        elif type(obj).__module__.startswith("repro") and hasattr(obj, "__dict__"):
            stack.extend((v, depth + 1) for v in vars(obj).values())
    return total


@dataclasses.dataclass
class RegistryEntry:
    """One warm molecule: its calculator (surface/trees/plan cache) and
    the measured footprint the LRU budget charges it for."""

    key: str
    molecule: Molecule
    calc: PolarizationEnergyCalculator
    nbytes: int = 0
    #: Memoised :meth:`row_weight` per epsilon configuration.
    row_weights: dict = dataclasses.field(default_factory=dict, repr=False)

    @property
    def params(self) -> ApproximationParams:
        return self.calc.params

    @property
    def variant(self) -> str:
        """Octree variant this entry's trees/plans are addressed by."""
        return self.calc.params.tree_variant

    def plans_for(self, eps_born: float, eps_epol: float) -> PlanSet:
        """The entry's cached plans for one epsilon configuration (built
        through the calculator's bounded :class:`PlanCache`)."""
        return PlanSet(born=self.calc.born_plan(eps_born),
                       epol=self.calc.epol_plan(eps_epol))

    def row_weight(self, eps_born: float, eps_epol: float) -> float:
        """Total plan row weight for one epsilon configuration -- the
        scheduler's batch-vs-slice size signal.

        Summed exact per-row interaction counts of the Born and E_pol
        plans (:meth:`~repro.plan.schema.InteractionPlan.row_pair_weights`
        at the size-signal default ``nbins=0``): measured work, not an
        atom-count proxy.  Memoised per configuration -- the plans are
        cache-mediated, so a warm entry answers from integers.
        """
        cfg = (float(eps_born), float(eps_epol))
        weight = self.row_weights.get(cfg)
        if weight is None:
            plans = self.plans_for(eps_born, eps_epol)
            # Integer interaction counts (addition order free).
            weight = float(int(plans.born.row_pair_weights().sum())
                           + int(plans.epol.row_pair_weights().sum()))
            self.row_weights[cfg] = weight
        return weight

    def warm(self) -> None:
        """Build surface, trees and the default-configuration plans, then
        re-measure the entry's footprint."""
        self.calc.prepare_surface()
        self.calc.atom_tree()
        self.calc.quad_tree()
        self.calc.plans()
        self.remeasure()

    def remeasure(self) -> int:
        self.nbytes = measured_nbytes(self.calc)
        return self.nbytes


class MoleculeRegistry:
    """Thread-safe content-hash -> :class:`RegistryEntry` LRU store.

    Parameters
    ----------
    max_bytes:
        Optional budget over the summed measured entry footprints;
        exceeded -> least-recently-used entries are evicted (never the
        entry just registered/fetched).  ``None`` = unbounded.
    plan_cache_bytes:
        Per-entry :class:`~repro.plan.cache.PlanCache` budget, so an
        epsilon-scanning client cannot grow one entry forever.
    on_evict:
        ``fn(entry)`` called (outside the hot path, inside the registry
        lock) whenever an entry is dropped -- the serving fleet uses it to
        unpublish shared memory.
    """

    def __init__(self, *, max_bytes: int | None = None,
                 plan_cache_bytes: int | None = None,
                 on_evict: Callable[[RegistryEntry], None] | None = None
                 ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (or None)")
        self.max_bytes = max_bytes
        self.plan_cache_bytes = plan_cache_bytes
        self.on_evict = on_evict
        self._lock = threading.RLock()
        self._entries: dict[str, RegistryEntry] = {}  # insertion = recency
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def current_bytes(self) -> int:
        with self._lock:
            # Integer byte counts (addition order free).
            return sum(e.nbytes  # repro-lint: disable=REP001
                       for e in self._entries.values())

    def keys(self) -> list[str]:
        """Registered keys, least- to most-recently-used."""
        with self._lock:
            return list(self._entries)

    # -- core operations ------------------------------------------------
    def register(self, molecule: Molecule,
                 params: ApproximationParams | None = None, *,
                 warm: bool = True) -> str:
        """Idempotently register ``molecule``; returns its content key.

        A repeated registration of identical content is a cache hit (the
        existing warm entry is refreshed to most-recently-used); new
        content builds an entry, optionally pre-warming surface, trees
        and default plans so the first request pays no cold start.
        """
        params = params if params is not None else ApproximationParams()
        key = content_key(molecule, params)
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries[key] = self._entries.pop(key)
                return key
            self.misses += 1
            calc = PolarizationEnergyCalculator(molecule, params)
            # The entry's plan cache is byte-bounded so per-request epsilon
            # overrides cannot grow it without limit.
            calc._plan_cache = PlanCache(max_bytes=self.plan_cache_bytes)
            entry = RegistryEntry(key=key, molecule=molecule, calc=calc)
            if warm:
                entry.warm()
            else:
                entry.remeasure()
            self._entries[key] = entry
            self._evict_over_budget(protect=key)
            return key

    def get(self, key: str) -> RegistryEntry:
        """The entry for ``key`` (refreshed to most-recently-used)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                raise KeyError(
                    f"molecule {key!r} is not registered (evicted, or never "
                    "submitted through register())")
            self.hits += 1
            self._entries[key] = self._entries.pop(key)
            return entry

    def _evict_over_budget(self, *, protect: str) -> None:
        if self.max_bytes is None:
            return
        while (self.current_bytes > self.max_bytes
               and len(self._entries) > 1):
            victim_key = next(k for k in self._entries if k != protect)
            self._evict(victim_key)

    def _evict(self, key: str) -> None:
        entry = self._entries.pop(key)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(entry)

    def evict(self, key: str) -> bool:
        """Explicitly drop one entry (through the eviction hook).

        Returns whether the key was present.  The cluster's replication
        manager uses this to demote a replica that fell out of the hot
        set -- same hook path as budget eviction, so the fleet's
        shared-memory unpublish and the router's placement map stay in
        sync no matter who initiated the drop.
        """
        with self._lock:
            if key not in self._entries:
                return False
            self._evict(key)
            return True

    def clear(self) -> None:
        """Drop every entry (each through the eviction hook)."""
        with self._lock:
            for key in list(self._entries):
                self._evict(key)

    # -- reporting -------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            plan_stats = [e.calc.plan_cache().stats()
                          for e in self._entries.values()]
            variants: dict[str, int] = {}
            for e in self._entries.values():
                variants[e.variant] = variants.get(e.variant, 0) + 1
            return {
                "entries": len(self._entries),
                "variants": variants,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "plan_cache": {
                    "plans": sum(s["plans"] for s in plan_stats),
                    "hits": sum(s["hits"] for s in plan_stats),
                    "misses": sum(s["misses"] for s in plan_stats),
                    "evictions": sum(s["evictions"] for s in plan_stats),
                    "current_bytes": sum(s["current_bytes"]
                                         for s in plan_stats),
                },
            }
