"""``repro.serve``: a batched, cached :math:`E_{pol}` serving layer.

The paper's headline use case is throughput -- scoring thousands of ZDOCK
docking decoys, each one :math:`E_{pol}` evaluation -- and this package
turns the repo's pieces into that request/response service:

* :mod:`.registry` -- content-hashed molecules under a byte-budget LRU
  (octrees + plan cache warm per molecule);
* :mod:`.scheduler` -- bounded admission with explicit backpressure and a
  micro-batching loop that groups same-molecule requests so plans build
  once and execute many;
* :mod:`.fleet` -- warm in-process or OS-process workers with molecule
  and plan arrays published once via shared memory;
* :mod:`.policy`/:mod:`.sliced` -- the pure batch-vs-slice routing
  decision and the bit-exact intra-request slice reduction (one giant
  molecule fanned over every warm worker);
* :mod:`.client` -- futures-style submit/poll/await;
* :mod:`.metrics` -- latency/throughput/batching accounting (the layer's
  only wall-clock reader, repro-lint rule REP003);
* ``python -m repro.serve`` -- workload replay writing
  ``BENCH_serve.json``.

Served energies are bit-identical to a cold
:meth:`repro.core.driver.PolarizationEnergyCalculator.run` of the same
configuration; see ``docs/SERVING.md`` for the architecture and the
determinism argument.
"""

from __future__ import annotations

from .client import ServeClient, ServeFuture
from .fleet import (EpsConfig, EvalResult, FleetError, InlineFleet,
                    ProcessFleet, SliceError, evaluate_pipeline,
                    execute_born_rows, execute_epol_rows)
from .metrics import ServeMetrics, latency_summary, now
from .policy import (MODE_BATCHED, MODE_DONATED, MODE_SLICED,
                     decide_donation, decide_mode)
from .registry import MoleculeRegistry, RegistryEntry, content_key
from .scheduler import (EpolServer, RejectedError, ServeConfig,
                        ServerClosed)
from .sliced import fold_pair_terms, reduce_born_flat, slice_bounds

__all__ = [
    "EpolServer",
    "EpsConfig",
    "EvalResult",
    "FleetError",
    "InlineFleet",
    "MODE_BATCHED",
    "MODE_DONATED",
    "MODE_SLICED",
    "MoleculeRegistry",
    "ProcessFleet",
    "RegistryEntry",
    "RejectedError",
    "ServeClient",
    "ServeConfig",
    "ServeFuture",
    "ServeMetrics",
    "ServerClosed",
    "SliceError",
    "content_key",
    "decide_donation",
    "decide_mode",
    "evaluate_pipeline",
    "execute_born_rows",
    "execute_epol_rows",
    "fold_pair_terms",
    "latency_summary",
    "make_server",
    "now",
    "reduce_born_flat",
    "slice_bounds",
]


def make_server(*, backend: str = "real", workers: int = 2,
                config: ServeConfig | None = None,
                start_method: str | None = None) -> EpolServer:
    """Assemble (but do not start) a server on the chosen fleet.

    ``backend="real"`` serves over ``workers`` warm OS processes;
    ``backend="sim"`` evaluates inline in the scheduler thread (one
    logical worker -- the reference substrate).
    """
    if backend == "real":
        fleet: InlineFleet | ProcessFleet = ProcessFleet(
            workers, start_method=start_method)
    elif backend == "sim":
        if workers != 1:
            raise ValueError("the sim (inline) backend has exactly 1 worker")
        fleet = InlineFleet()
    else:
        raise ValueError(f"unknown serve backend {backend!r}")
    return EpolServer(fleet=fleet, config=config)
