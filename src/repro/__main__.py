"""Command-line entry point: regenerate the paper's evaluation artifacts.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro run fig8             # regenerate one table/figure
    python -m repro run all              # everything, in paper order
    python -m repro run fig5 --full      # full (non-quick) molecule suite
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv: list[str] | None = None) -> int:
    from repro.experiments import all_ids, run_experiment

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from 'Polarization Energy "
                    "on a Cluster of Multicores' (SC 2012).")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id, e.g. fig8, or 'all'")
    run_p.add_argument("--full", action="store_true",
                       help="use the full 84-molecule suite where the "
                            "experiment samples it (slow)")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the experiment seed")
    args = parser.parse_args(argv)

    if args.command == "list":
        for eid in all_ids():
            print(eid)
        return 0

    ids = all_ids() if args.experiment == "all" else [args.experiment]
    exit_code = 0
    for eid in ids:
        kwargs = {}
        if args.full and eid in ("fig7", "fig8", "fig9", "fig10"):
            kwargs["quick"] = False
        if args.seed is not None:
            kwargs["seed"] = args.seed
        t0 = time.perf_counter()
        result = run_experiment(eid, **kwargs)
        print(result.render())
        print(f"[{eid}] {time.perf_counter() - t0:.1f} s, checks "
              f"{'all pass' if result.all_checks_pass() else 'FAILED'}")
        print()
        if not result.all_checks_pass():
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
