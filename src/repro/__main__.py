"""Command-line entry point: evaluation artifacts and measured runs.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro run fig8             # regenerate one table/figure
    python -m repro run all              # everything, in paper order
    python -m repro run fig5 --full      # full (non-quick) molecule suite

    python -m repro --backend real -P 4  # measured: E_pol of a generated
                                         # molecule on 4 real processes,
                                         # with speedup over -P 1 and a
                                         # BENCH_procpool.json artifact
    python -m repro --backend sim -P 4   # same pipeline on the simulated
                                         # engine (modelled seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def _run_backend(args: argparse.Namespace) -> int:
    """Measured (or simulated) pipeline execution for a generated molecule."""
    from repro.config import DEFAULT_SEED
    from repro.core.driver import PolarizationEnergyCalculator
    from repro.molecule.generators import protein_blob

    seed = DEFAULT_SEED if args.seed is None else args.seed
    molecule = protein_blob(args.natoms, seed=seed)
    calc = PolarizationEnergyCalculator(molecule)
    calc.prepare_surface()
    worker_counts = sorted({1, args.workers})
    record: dict = {
        "backend": args.backend,
        "molecule": molecule.name,
        "natoms": len(molecule),
        "nqpoints": calc.prepare_surface().npoints,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "timings": {},
    }

    print(f"molecule: {molecule.name} ({len(molecule)} atoms, "
          f"{record['nqpoints']} q-points), backend={args.backend}")
    energies: dict[int, float] = {}
    walls: dict[int, float] = {}
    for P in worker_counts:
        if args.backend == "real":
            res = calc.compute(backend="real", workers=P)
            walls[P] = res.wall_seconds
            energies[P] = res.energy
            record["timings"][str(P)] = {
                "wall_seconds": res.wall_seconds,
                "pipeline_seconds": res.pipeline_seconds,
                "setup_seconds": res.setup_seconds,
                "phase_seconds": res.phase_seconds,
                "energy": res.energy,
            }
        else:
            from repro.parallel.hybrid import run_parallel
            from repro.parallel.machine import RankLayout
            layout = RankLayout(nodes=1, ranks_per_node=P, threads_per_rank=1)
            t0 = time.perf_counter()
            sim = run_parallel(calc, layout, numerics="full")
            walls[P] = sim.sim_seconds
            energies[P] = sim.energy
            record["timings"][str(P)] = {
                "sim_seconds": sim.sim_seconds,
                "host_seconds": time.perf_counter() - t0,
                "phase_seconds": sim.phase_seconds,
                "energy": sim.energy,
            }
        kind = "wall" if args.backend == "real" else "sim"
        print(f"  P={P}: E_pol = {energies[P]:+.6f} kcal/mol, "
              f"{kind} {walls[P]:.3f} s")

    base = walls[worker_counts[0]]
    if args.workers > 1 and base > 0:
        speedup = base / walls[args.workers]
        record["speedup_vs_p1"] = speedup
        print(f"  speedup P={args.workers} vs P=1: {speedup:.2f}x "
              f"({os.cpu_count()} cores visible)")

    # Interaction-plan statistics: row/pair counts, tile shape histogram,
    # predicted rank imbalance at the benchmarked worker count, and the
    # cache's hit/miss tally across the runs above.
    record["plan"] = calc.plan_stats(nparts=args.workers)
    stats = record["plan"]
    print(f"  plan: born {stats['born']['rows']} rows / "
          f"{stats['born']['exact_pairs']} exact pairs, "
          f"epol {stats['epol']['rows']} rows; "
          f"imbalance@P={args.workers}: "
          f"born {stats['born']['imbalance']:.3f}, "
          f"epol {stats['epol']['imbalance']:.3f}; "
          f"cache {stats['cache']['hits']} hits / "
          f"{stats['cache']['misses']} misses")

    e1 = energies[worker_counts[0]]
    drift = max(abs(energies[P] - e1) for P in worker_counts)
    rel = drift / abs(e1) if e1 else drift
    record["max_rel_energy_drift"] = rel
    if rel > 1e-10:
        print(f"ERROR: energies drift across worker counts "
              f"(rel {rel:.3e} > 1e-10)")
        return 1

    out = args.bench_out
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from 'Polarization Energy "
                    "on a Cluster of Multicores' (SC 2012), or run the "
                    "pipeline on an execution backend.")
    parser.add_argument("--backend", choices=("sim", "real"), default=None,
                        help="run the E_pol pipeline on the simulated ('sim')"
                             " or real process-parallel ('real') backend")
    parser.add_argument("-P", "--workers", type=int, default=4,
                        help="worker/rank count for --backend (default 4)")
    parser.add_argument("--natoms", type=int, default=5000,
                        help="generated molecule size for --backend runs")
    parser.add_argument("--seed", type=int, default=None,
                        help="generator seed for --backend runs")
    parser.add_argument("--bench-out", default="BENCH_procpool.json",
                        help="artifact path for --backend timings")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id, e.g. fig8, or 'all'")
    run_p.add_argument("--full", action="store_true",
                       help="use the full 84-molecule suite where the "
                            "experiment samples it (slow)")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the experiment seed")
    args = parser.parse_args(argv)

    if args.command is None:
        if args.backend is None:
            parser.error("a command (list/run) or --backend is required")
        if args.workers < 1:
            parser.error("-P must be >= 1")
        return _run_backend(args)

    from repro.experiments import all_ids, run_experiment

    if args.command == "list":
        for eid in all_ids():
            print(eid)
        return 0

    ids = all_ids() if args.experiment == "all" else [args.experiment]
    exit_code = 0
    for eid in ids:
        kwargs = {}
        if args.full and eid in ("fig7", "fig8", "fig9", "fig10"):
            kwargs["quick"] = False
        if args.seed is not None:
            kwargs["seed"] = args.seed
        t0 = time.perf_counter()
        result = run_experiment(eid, **kwargs)
        print(result.render())
        print(f"[{eid}] {time.perf_counter() - t0:.1f} s, checks "
              f"{'all pass' if result.all_checks_pass() else 'FAILED'}")
        print()
        if not result.all_checks_pass():
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
