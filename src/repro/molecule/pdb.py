"""Minimal PDB reader/writer.

Only the fixed-column ``ATOM``/``HETATM`` records are handled -- enough to
ingest real protein structures when they are available and to round-trip
our synthetic molecules for inspection with external tools.  Charges are
not part of the PDB format; atoms read from PDB get zero charge unless a
``charge_lookup`` is supplied (use PQR for charged input).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from .elements import vdw_radius
from .molecule import Molecule


def _element_from_record(line: str) -> str:
    """Extract the element symbol from a PDB ATOM record.

    Columns 77-78 carry the element when present; otherwise we fall back to
    the first alphabetic character of the atom name (columns 13-16), the
    conventional heuristic.
    """
    elem = line[76:78].strip() if len(line) >= 78 else ""
    if elem:
        return elem.capitalize()
    name = line[12:16].strip()
    for ch in name:
        if ch.isalpha():
            return ch.upper()
    return "C"


def read_pdb(path: str | Path, *,
             charge_lookup: Callable[[str], float] | None = None,
             name: str | None = None) -> Molecule:
    """Parse a PDB file into a :class:`Molecule`.

    Parameters
    ----------
    path:
        File to read.
    charge_lookup:
        Optional map from element symbol to partial charge; default is all
        zeros (PDB carries no charges).
    name:
        Molecule name; defaults to the file stem.
    """
    path = Path(path)
    positions: list[tuple[float, float, float]] = []
    elements: list[str] = []
    with path.open() as fh:
        for line in fh:
            if not line.startswith(("ATOM  ", "HETATM")):
                continue
            try:
                x = float(line[30:38])
                y = float(line[38:46])
                z = float(line[46:54])
            except ValueError as exc:
                raise ValueError(f"malformed coordinate columns: {line!r}") from exc
            positions.append((x, y, z))
            elements.append(_element_from_record(line))
    if not positions:
        raise ValueError(f"no ATOM/HETATM records found in {path}")
    elem = np.asarray(elements, dtype="<U2")
    radii = np.array([vdw_radius(e) for e in elem])
    if charge_lookup is not None:
        charges = np.array([charge_lookup(e) for e in elem])
    else:
        charges = np.zeros(len(elem))
    return Molecule(np.asarray(positions), radii, charges, elem,
                    name or path.stem)


def write_pdb(molecule: Molecule, path: str | Path) -> None:
    """Write ``molecule`` as minimal ATOM records (one chain, one residue
    type per atom)."""
    path = Path(path)
    with path.open("w") as fh:
        for i in range(len(molecule)):
            x, y, z = molecule.positions[i]
            e = str(molecule.elements[i])
            fh.write(
                f"ATOM  {i + 1:>5d} {e:<4s}MOL A{1:>4d}    "
                f"{x:8.3f}{y:8.3f}{z:8.3f}{1.0:6.2f}{0.0:6.2f}"
                f"          {e:>2s}\n"
            )
        fh.write("END\n")


def iter_pdb_lines(molecule: Molecule) -> Iterable[str]:
    """Yield ATOM record lines for ``molecule`` without touching disk."""
    for i in range(len(molecule)):
        x, y, z = molecule.positions[i]
        e = str(molecule.elements[i])
        yield (f"ATOM  {i + 1:>5d} {e:<4s}MOL A{1:>4d}    "
               f"{x:8.3f}{y:8.3f}{z:8.3f}{1.0:6.2f}{0.0:6.2f}"
               f"          {e:>2s}")
