"""Deterministic synthetic molecule generators.

The paper evaluates on real inputs we do not have: the ZDock Benchmark 2.0
bound proteins (400--16,301 atoms), the Cucumber Mosaic Virus shell
(509,640 atoms) and the Blue Tongue Virus (6M atoms).  These generators
produce *analogue* molecules with the properties the algorithms actually
depend on:

* protein-like atom packing density (~0.095 atoms/A^3),
* realistic element composition and van der Waals radii,
* partial charges drawn from per-element force-field-like ranges and
  re-centred so the molecule is near-neutral,
* globular shape for proteins, hollow icosahedral shells for virus capsids
  (this matters: a shell's surface-to-volume ratio is what let the paper's
  surface-based method shine on CMV).

Every generator is a pure function of its arguments including ``seed``.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis_static.verify.annotations import declares_effects
from .elements import ELEMENTS, PROTEIN_ATOM_DENSITY, PROTEIN_COMPOSITION
from .molecule import Molecule

#: Paper sizes for the two virus-analogue inputs.
CMV_FULL_ATOMS = 509_640
BTV_FULL_ATOMS = 6_000_000


def _sample_elements(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` element symbols from the average protein composition."""
    symbols = list(PROTEIN_COMPOSITION.keys())
    probs = np.array([PROTEIN_COMPOSITION[s] for s in symbols], dtype=np.float64)
    probs /= probs.sum()
    return rng.choice(np.asarray(symbols, dtype="<U2"), size=n, p=probs)


def _charges_for(rng: np.random.Generator, elements: np.ndarray) -> np.ndarray:
    """Sample partial charges per element and re-centre to near-neutrality.

    Proteins are roughly neutral overall; after sampling we subtract the
    mean so the net charge is a small integer-scale residual rather than
    growing with sqrt(N), then re-add a small deterministic net charge in
    [-5, 5] e typical of folded proteins at pH 7.
    """
    charges = np.empty(len(elements), dtype=np.float64)
    for sym, info in ELEMENTS.items():
        mask = elements == sym
        if not np.any(mask):
            continue
        charges[mask] = rng.uniform(info.typical_charge - info.charge_spread,
                                    info.typical_charge + info.charge_spread,
                                    size=int(mask.sum()))
    charges -= charges.mean()
    net = float(rng.uniform(-5.0, 5.0))
    charges += net / len(elements)
    return charges


def _radii_for(elements: np.ndarray) -> np.ndarray:
    return np.array([ELEMENTS[str(e)].vdw_radius for e in elements])


def _jittered_lattice_in_ball(rng: np.random.Generator, n: int,
                              density: float) -> np.ndarray:
    """Place ~``n`` points in a ball at the given number density.

    A simple-cubic lattice at the target density is clipped to the ball and
    jittered by 30% of the lattice constant: cheap, deterministic, and it
    guarantees a realistic minimum spacing without an O(N^2) relaxation.
    """
    radius = (3.0 * n / (4.0 * math.pi * density)) ** (1.0 / 3.0)
    a = density ** (-1.0 / 3.0)  # lattice constant for the target density
    half = int(math.ceil(radius / a)) + 1
    axis = np.arange(-half, half + 1, dtype=np.float64) * a
    gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
    pts = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    pts += rng.uniform(-0.3 * a, 0.3 * a, size=pts.shape)
    inside = np.linalg.norm(pts, axis=1) <= radius
    pts = pts[inside]
    if len(pts) < n:
        # Lattice under-filled the ball (small n rounding); top up with
        # rejection-sampled interior points.
        extra = []
        while len(pts) + len(extra) < n:
            cand = rng.uniform(-radius, radius, size=(n, 3))
            cand = cand[np.linalg.norm(cand, axis=1) <= radius]
            extra.extend(cand.tolist())
        pts = np.vstack([pts, np.asarray(extra[: n - len(pts)])])
    # Deterministic trim: keep the n points closest to the centre so the
    # molecule stays globular.
    order = np.argsort(np.linalg.norm(pts, axis=1), kind="stable")
    return np.ascontiguousarray(pts[order[:n]])


@declares_effects("RNG")
def protein_blob(natoms: int, *, seed: int, name: str | None = None,
                 density: float = PROTEIN_ATOM_DENSITY) -> Molecule:
    """Generate a globular protein analogue with ``natoms`` atoms.

    Parameters
    ----------
    natoms:
        Number of atoms (the paper's ZDock range is 400--16,301).
    seed:
        PRNG seed; equal seeds give identical molecules.
    name:
        Molecule name; defaults to ``protein-<natoms>``.
    density:
        Atom number density in atoms/A^3.
    """
    if natoms < 1:
        raise ValueError("natoms must be positive")
    rng = np.random.default_rng(seed)
    positions = _jittered_lattice_in_ball(rng, natoms, density)
    elements = _sample_elements(rng, natoms)
    return Molecule(positions, _radii_for(elements), _charges_for(rng, elements),
                    elements, name or f"protein-{natoms}")


@declares_effects("RNG")
def icosahedral_shell(natoms: int, *, seed: int, name: str | None = None,
                      thickness: float = 25.0,
                      density: float = PROTEIN_ATOM_DENSITY) -> Molecule:
    """Generate a hollow spherical capsid analogue with ``natoms`` atoms.

    Virus capsids are protein shells; we model one as a spherical annulus
    of the given ``thickness`` (A) at protein density, with icosahedrally
    modulated surface bumps so the shell is not perfectly smooth.  The
    outer radius follows from the atom count, thickness and density.
    """
    if natoms < 1:
        raise ValueError("natoms must be positive")
    rng = np.random.default_rng(seed)
    # volume = 4/3 pi (R^3 - (R - t)^3) = natoms / density  -> solve for R.
    target_volume = natoms / density
    t = thickness

    def shell_volume(outer: float) -> float:
        inner = max(outer - t, 0.0)
        return 4.0 / 3.0 * math.pi * (outer ** 3 - inner ** 3)

    lo, hi = t, t + (target_volume / (4.0 * math.pi * t)) ** 0.5 + t
    while shell_volume(hi) < target_volume:
        hi *= 2.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if shell_volume(mid) < target_volume:
            lo = mid
        else:
            hi = mid
    outer = 0.5 * (lo + hi)
    inner = max(outer - t, 0.25 * outer)

    # Sample radii by inverse-CDF of r^2 within [inner, outer], directions
    # uniformly on the sphere.
    u = rng.uniform(0.0, 1.0, size=natoms)
    r = (inner ** 3 + u * (outer ** 3 - inner ** 3)) ** (1.0 / 3.0)
    direction = rng.normal(size=(natoms, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    # Icosahedral modulation: bump amplitude follows a low-order spherical
    # pattern cos(5*phi)*sin(3*theta) -- cosmetic but breaks spherical
    # symmetry the way capsomers do.
    theta = np.arccos(np.clip(direction[:, 2], -1.0, 1.0))
    phi = np.arctan2(direction[:, 1], direction[:, 0])
    r = r + 0.02 * outer * np.cos(5.0 * phi) * np.sin(3.0 * theta)
    positions = direction * r[:, None]

    elements = _sample_elements(rng, natoms)
    return Molecule(positions, _radii_for(elements), _charges_for(rng, elements),
                    elements, name or f"capsid-{natoms}")


@declares_effects("RNG")
def cmv_analogue(*, scale: float = 1.0, seed: int = 0) -> Molecule:
    """Cucumber-Mosaic-Virus-shell analogue.

    The paper's CMV input has 509,640 atoms; ``scale`` shrinks the atom
    count (default experiments use scale << 1 so the naive O(N^2) reference
    stays tractable; see DESIGN.md Section 2).
    """
    natoms = max(100, int(round(CMV_FULL_ATOMS * scale)))
    return icosahedral_shell(natoms, seed=seed, name=f"CMV-analogue-{natoms}")


@declares_effects("RNG")
def btv_analogue(*, scale: float = 1.0, seed: int = 0) -> Molecule:
    """Blue-Tongue-Virus analogue (paper: 6M atoms) at the given scale."""
    natoms = max(100, int(round(BTV_FULL_ATOMS * scale)))
    return icosahedral_shell(natoms, seed=seed, name=f"BTV-analogue-{natoms}")


@declares_effects("RNG")
def two_body_complex(receptor_atoms: int, ligand_atoms: int, *, seed: int,
                     separation: float = 2.0) -> Molecule:
    """A receptor+ligand complex: two protein blobs placed ``separation``
    Angstroms apart surface-to-surface -- the docking geometry the paper's
    introduction motivates."""
    rng = np.random.default_rng(seed)
    receptor = protein_blob(receptor_atoms, seed=int(rng.integers(2 ** 31)),
                            name="receptor")
    ligand = protein_blob(ligand_atoms, seed=int(rng.integers(2 ** 31)),
                          name="ligand")
    offset = receptor.bounding_radius + ligand.bounding_radius + separation
    ligand = ligand.translated([offset, 0.0, 0.0])
    return receptor.merged(ligand, name=f"complex-{receptor_atoms}-{ligand_atoms}")
