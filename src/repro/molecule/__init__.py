"""Molecule representation, file I/O and synthetic generators."""

from .elements import ELEMENTS, ElementInfo, vdw_radius
from .generators import (btv_analogue, cmv_analogue, icosahedral_shell,
                         protein_blob, two_body_complex)
from .molecule import Molecule, from_arrays
from .pdb import read_pdb, write_pdb
from .pqr import read_pqr, write_pqr

__all__ = [
    "ELEMENTS",
    "ElementInfo",
    "Molecule",
    "btv_analogue",
    "cmv_analogue",
    "from_arrays",
    "icosahedral_shell",
    "protein_blob",
    "read_pdb",
    "read_pqr",
    "two_body_complex",
    "vdw_radius",
    "write_pdb",
    "write_pqr",
]
