"""Minimal PQR reader/writer.

PQR is the charge- and radius-bearing variant of PDB used by Poisson-
Boltzmann and GB tools (APBS, pdb2pqr).  The format is whitespace-separated:

    ATOM  serial name resName resSeq  x y z  charge radius

This is the preferred on-disk interchange format for this package because
it carries everything :class:`~repro.molecule.molecule.Molecule` needs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .molecule import Molecule


def read_pqr(path: str | Path, *, name: str | None = None) -> Molecule:
    """Parse a PQR file into a :class:`Molecule`."""
    path = Path(path)
    positions: list[tuple[float, float, float]] = []
    charges: list[float] = []
    radii: list[float] = []
    elements: list[str] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.startswith(("ATOM", "HETATM")):
                continue
            fields = line.split()
            # ATOM serial name resName [chain] resSeq x y z q r
            if len(fields) < 10:
                raise ValueError(f"{path}:{lineno}: too few fields in PQR record")
            try:
                x, y, z, q, r = (float(v) for v in fields[-5:])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: malformed numeric fields") from exc
            positions.append((x, y, z))
            charges.append(q)
            radii.append(r)
            atom_name = fields[2]
            elements.append(next((c for c in atom_name if c.isalpha()), "C").upper())
    if not positions:
        raise ValueError(f"no ATOM/HETATM records found in {path}")
    return Molecule(np.asarray(positions), np.asarray(radii),
                    np.asarray(charges), np.asarray(elements, dtype="<U2"),
                    name or path.stem)


def write_pqr(molecule: Molecule, path: str | Path) -> None:
    """Write ``molecule`` in PQR format."""
    path = Path(path)
    with path.open("w") as fh:
        for i in range(len(molecule)):
            x, y, z = molecule.positions[i]
            q = molecule.charges[i]
            r = molecule.radii[i]
            e = str(molecule.elements[i])
            fh.write(
                f"ATOM  {i + 1:>5d} {e:<4s} MOL  {1:>4d}    "
                f"{x:10.4f} {y:10.4f} {z:10.4f} {q:8.4f} {r:7.4f}\n"
            )
        fh.write("END\n")
