"""The :class:`Molecule` container.

A molecule is stored as a structure of NumPy arrays (positions, radii,
charges, element codes) rather than a list of atom objects, so that every
kernel in the package can operate on contiguous vectorised data -- the
single most important idiom for numerical Python in this domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .elements import ELEMENTS, vdw_radius


@dataclass
class Molecule:
    """A rigid molecule: atom positions, radii and partial charges.

    Attributes
    ----------
    positions:
        ``(N, 3)`` float64 array of atom centres, Angstroms.
    radii:
        ``(N,)`` float64 array of intrinsic (van der Waals) radii, Angstroms.
    charges:
        ``(N,)`` float64 array of partial charges, units of e.
    elements:
        ``(N,)`` array of element symbols (numpy unicode), informational.
    name:
        Human-readable identifier, e.g. ``"zdock-017"``.
    """

    positions: np.ndarray
    radii: np.ndarray
    charges: np.ndarray
    elements: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = "molecule"

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.radii = np.ascontiguousarray(self.radii, dtype=np.float64)
        self.charges = np.ascontiguousarray(self.charges, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {self.positions.shape}")
        n = self.positions.shape[0]
        if self.radii.shape != (n,):
            raise ValueError(f"radii must be ({n},), got {self.radii.shape}")
        if self.charges.shape != (n,):
            raise ValueError(f"charges must be ({n},), got {self.charges.shape}")
        if n and not np.all(np.isfinite(self.positions)):
            raise ValueError("positions contain non-finite values")
        if n and np.any(self.radii <= 0):
            raise ValueError("all atomic radii must be positive")
        if self.elements is None:
            self.elements = np.full(n, "C", dtype="<U2")
        else:
            self.elements = np.asarray(self.elements, dtype="<U2")
            if self.elements.shape != (n,):
                raise ValueError(f"elements must be ({n},), got {self.elements.shape}")

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def natoms(self) -> int:
        """Number of atoms."""
        return self.positions.shape[0]

    def __iter__(self) -> Iterator[tuple[np.ndarray, float, float]]:
        for i in range(len(self)):
            yield self.positions[i], float(self.radii[i]), float(self.charges[i])

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def centroid(self) -> np.ndarray:
        """Geometric centre of the atom positions, shape ``(3,)``."""
        if len(self) == 0:
            return np.zeros(3)
        return self.positions.mean(axis=0)

    @property
    def bounding_radius(self) -> float:
        """Radius of the smallest origin-at-centroid ball covering all atom
        spheres (centre distance plus atomic radius)."""
        if len(self) == 0:
            return 0.0
        d = np.linalg.norm(self.positions - self.centroid, axis=1)
        return float(np.max(d + self.radii))

    @property
    def total_charge(self) -> float:
        """Net charge of the molecule (units of e)."""
        return float(self.charges.sum())

    # ------------------------------------------------------------------
    # transforms (used by the docking-reuse pathway, paper Section IV.C)
    # ------------------------------------------------------------------
    def translated(self, offset: Sequence[float]) -> "Molecule":
        """Return a copy shifted by ``offset`` (length-3)."""
        off = np.asarray(offset, dtype=np.float64)
        if off.shape != (3,):
            raise ValueError("offset must have shape (3,)")
        return Molecule(self.positions + off, self.radii.copy(),
                        self.charges.copy(), self.elements.copy(), self.name)

    def rotated(self, rotation: np.ndarray, about: Sequence[float] | None = None) -> "Molecule":
        """Return a copy rotated by the 3x3 matrix ``rotation``.

        Rotation is applied about ``about`` (default: the centroid), so a
        pure rotation leaves the molecule in place.
        """
        rot = np.asarray(rotation, dtype=np.float64)
        if rot.shape != (3, 3):
            raise ValueError("rotation must be a 3x3 matrix")
        if not np.allclose(rot @ rot.T, np.eye(3), atol=1e-8):
            raise ValueError("rotation matrix must be orthogonal")
        pivot = self.centroid if about is None else np.asarray(about, dtype=np.float64)
        pos = (self.positions - pivot) @ rot.T + pivot
        return Molecule(pos, self.radii.copy(), self.charges.copy(),
                        self.elements.copy(), self.name)

    def subset(self, indices: np.ndarray) -> "Molecule":
        """Return the sub-molecule with the given atom ``indices``."""
        idx = np.asarray(indices)
        return Molecule(self.positions[idx], self.radii[idx],
                        self.charges[idx], self.elements[idx], self.name)

    def merged(self, other: "Molecule", name: str | None = None) -> "Molecule":
        """Return the union of this molecule and ``other`` (e.g. a
        receptor-ligand complex)."""
        return Molecule(
            np.vstack([self.positions, other.positions]),
            np.concatenate([self.radii, other.radii]),
            np.concatenate([self.charges, other.charges]),
            np.concatenate([self.elements, other.elements]),
            name or f"{self.name}+{other.name}",
        )

    # ------------------------------------------------------------------
    # memory accounting (used by the baseline OOM models)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes of array payload held by this molecule."""
        return int(self.positions.nbytes + self.radii.nbytes
                   + self.charges.nbytes + self.elements.nbytes)

    def validate_physical(self) -> None:
        """Raise :class:`ValueError` if the molecule is physically odd:
        wildly large net charge or radii outside known element ranges."""
        n = len(self)
        if n == 0:
            raise ValueError("empty molecule")
        if abs(self.total_charge) > 0.25 * n:
            raise ValueError(
                f"net charge {self.total_charge:.1f} is implausible for {n} atoms")
        rmin = min(e.vdw_radius for e in ELEMENTS.values())
        rmax = max(e.vdw_radius for e in ELEMENTS.values())
        if np.any(self.radii < 0.5 * rmin) or np.any(self.radii > 2.0 * rmax):
            raise ValueError("atomic radii outside plausible element range")


def from_arrays(positions: np.ndarray, *, radii: np.ndarray | None = None,
                charges: np.ndarray | None = None,
                elements: Sequence[str] | None = None,
                name: str = "molecule") -> Molecule:
    """Convenience constructor filling in defaults.

    Missing radii are looked up per element (carbon if elements are also
    missing); missing charges default to zero.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if elements is not None:
        elem = np.asarray(elements, dtype="<U2")
    else:
        elem = np.full(n, "C", dtype="<U2")
    if radii is None:
        radii = np.array([vdw_radius(e) for e in elem], dtype=np.float64)
    if charges is None:
        charges = np.zeros(n, dtype=np.float64)
    return Molecule(pos, np.asarray(radii, dtype=np.float64),
                    np.asarray(charges, dtype=np.float64), elem, name)
