"""Per-element data: van der Waals radii and typical partial charges.

Radii follow Bondi (1964) with the common molecular-mechanics override of
1.2 A for hydrogen.  Partial-charge ranges are representative of Amber-style
force fields; the synthetic generators sample within these ranges, subject
to near-neutrality constraints imposed at the molecule level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class ElementInfo:
    """Static per-element parameters.

    Attributes
    ----------
    symbol:
        Chemical symbol, e.g. ``"C"``.
    vdw_radius:
        van der Waals radius in Angstroms (Bondi).
    mass:
        Atomic mass in Daltons.
    typical_charge:
        Centre of the partial-charge range used by the synthetic
        generators (units of e).
    charge_spread:
        Half-width of the partial-charge range.
    """

    symbol: str
    vdw_radius: float
    mass: float
    typical_charge: float
    charge_spread: float


#: The elements that dominate protein composition, with their Bondi radii.
ELEMENTS: Mapping[str, ElementInfo] = {
    "H": ElementInfo("H", 1.20, 1.008, +0.15, 0.25),
    "C": ElementInfo("C", 1.70, 12.011, +0.05, 0.45),
    "N": ElementInfo("N", 1.55, 14.007, -0.40, 0.30),
    "O": ElementInfo("O", 1.52, 15.999, -0.50, 0.25),
    "S": ElementInfo("S", 1.80, 32.06, -0.10, 0.20),
    "P": ElementInfo("P", 1.80, 30.974, +1.10, 0.30),
}

#: Atom composition of an "average" protein by element fraction (heavy +
#: hydrogen), derived from average amino-acid composition.  Used by the
#: synthetic protein generator.
PROTEIN_COMPOSITION: Mapping[str, float] = {
    "H": 0.50,
    "C": 0.32,
    "N": 0.085,
    "O": 0.085,
    "S": 0.010,
}

#: Mean heavy-atom packing density of folded proteins, atoms per cubic
#: Angstrom (all atoms including hydrogens; ~0.1 atoms/A^3 is the standard
#: estimate for protein interiors).
PROTEIN_ATOM_DENSITY: float = 0.095


def vdw_radius(symbol: str) -> float:
    """Return the van der Waals radius (Angstrom) for ``symbol``.

    Unknown elements fall back to carbon's radius, matching the forgiving
    behaviour of most MD input pipelines.
    """
    info = ELEMENTS.get(symbol.capitalize())
    if info is None:
        info = ELEMENTS["C"]
    return info.vdw_radius
