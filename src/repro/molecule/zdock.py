"""ZDock-Benchmark-2.0 analogue registry.

The paper evaluates on the bound proteins of the ZDock Benchmark Suite 2.0:
84 complexes / 168 proteins, 400 to ~16,301 atoms.  We register 84 analogue
proteins whose sizes follow the same log-uniform span, including the exact
anchor sizes the paper calls out (2,260 atoms -- Gromacs' peak-speedup
molecule -- and 16,301 atoms -- the largest, where OCT_MPI hits 11x over
Amber).

Molecules are generated lazily and cached per (index, size), so an
experiment touching five molecules does not pay for 84.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

import numpy as np

from ..config import DEFAULT_SEED
from .generators import protein_blob
from .molecule import Molecule

#: Number of complexes in ZDock Benchmark 2.0.
N_COMPLEXES = 84

#: Paper-reported extreme and anchor sizes.
MIN_ATOMS = 400
MAX_ATOMS = 16_301
GROMACS_PEAK_ATOMS = 2_260


@dataclass(frozen=True)
class BenchmarkEntry:
    """One registered benchmark molecule: an index, a name and a size."""

    index: int
    name: str
    natoms: int


def _size_schedule() -> list[int]:
    """Deterministic list of 84 sizes spanning [400, 16301] log-uniformly,
    with the paper's anchor sizes pinned at fixed slots."""
    sizes = np.unique(np.round(np.exp(
        np.linspace(np.log(MIN_ATOMS), np.log(MAX_ATOMS), N_COMPLEXES)
    )).astype(int))
    sizes = list(sizes)
    while len(sizes) < N_COMPLEXES:  # de-dup may shrink the list slightly
        sizes.append(sizes[-1] + 137)
    sizes = sorted(sizes[:N_COMPLEXES])
    # Pin anchors: replace nearest entries with the exact paper sizes.
    for anchor in (MIN_ATOMS, GROMACS_PEAK_ATOMS, MAX_ATOMS):
        nearest = min(range(len(sizes)), key=lambda i: abs(sizes[i] - anchor))
        sizes[nearest] = anchor
    return sizes


_SIZES = _size_schedule()


def entries() -> list[BenchmarkEntry]:
    """All 84 registered benchmark entries, ordered by size."""
    return [BenchmarkEntry(i, f"zdock-{i:03d}", n) for i, n in enumerate(_SIZES)]


@lru_cache(maxsize=None)
def molecule(index: int) -> Molecule:
    """Materialise benchmark molecule ``index`` (deterministic)."""
    if not 0 <= index < N_COMPLEXES:
        raise IndexError(f"benchmark index must be in [0, {N_COMPLEXES}), got {index}")
    entry = entries()[index]
    return protein_blob(entry.natoms, seed=DEFAULT_SEED + index, name=entry.name)


def molecules(*, max_atoms: int | None = None,
              stride: int = 1) -> Iterator[Molecule]:
    """Iterate benchmark molecules, optionally capped by size and strided.

    ``stride`` lets fast test/bench configurations sample the suite (e.g.
    every 8th molecule) without changing which molecules exist.
    """
    for entry in entries()[::stride]:
        if max_atoms is not None and entry.natoms > max_atoms:
            continue
        yield molecule(entry.index)


def suite_sizes() -> list[int]:
    """The registered size schedule (useful for labelling figures)."""
    return list(_SIZES)
