"""Global configuration defaults for the reproduction package.

Everything here is a plain module-level constant so experiments are
deterministic and self-describing.  Experiments that need different values
take them as explicit parameters; nothing mutates this module at runtime.
"""

from __future__ import annotations

#: Default PRNG seed for every stochastic component (molecule generators,
#: work-stealing victim selection, timing noise).  All experiment entry
#: points accept a ``seed`` argument that defaults to this.
DEFAULT_SEED: int = 20120612  # SC'12 submission era

#: Default approximation parameters, matching Section V.C of the paper
#: ("All these algorithms were run with approximation parameters set to 0.9
#: (Born Radii) and 0.9 (E_pol)").
DEFAULT_EPS_BORN: float = 0.9
DEFAULT_EPS_EPOL: float = 0.9

#: Default maximum number of atoms stored in an octree leaf.  Leaves of a
#: few dozen points keep the exact near-field work vectorisable while
#: keeping tree depth logarithmic.
DEFAULT_LEAF_CAP: int = 32

#: Default number of quadrature points generated per atom sphere before
#: burial filtering.  The paper's inputs had roughly 0.5--4 quadrature
#: points per atom after filtering (CMV: 509,640 atoms / 1,929,128
#: q-points); 12 pre-filter points per atom lands in that range for
#: protein-density packings.  Experiments needing tighter quadrature pass
#: a larger ``points_per_atom`` explicitly.
DEFAULT_POINTS_PER_ATOM: int = 12

#: Relative tolerance used when asserting that the octree algorithms with
#: the multipole-acceptance criterion disabled reproduce the naive sums.
EXACT_MATCH_RTOL: float = 1e-9

#: Default scale factor applied to the virus-shell analogues (CMV, BTV) so
#: the naive O(N^2) reference stays tractable in pure Python.  1.0 would be
#: the paper's full size; experiments document the factor they used.
DEFAULT_VIRUS_SCALE: float = 0.047  # ~24k atoms for the CMV analogue

#: Default scale for the (6M-atom) BTV analogue used by the Fig. 5/6
#: scalability sweeps; chosen so one profiled execution stays around a
#: minute of wall time while leaving thousands of distributable leaves.
DEFAULT_BTV_SCALE: float = 0.02  # ~120k atoms
