"""``python -m repro.lint`` -- run the repro-lint determinism pass.

Thin executable alias for :mod:`repro.analysis_static.cli`; see
``docs/ANALYSIS.md`` for the rule catalogue.
"""

from .analysis_static.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
