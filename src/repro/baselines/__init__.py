"""Reimplementations of the five comparator packages (Table II)."""

from .amber import Amber
from .base import (BaselineOOMError, BaselinePackage, BaselineResult,
                   PerfModel, pairwise_energy)
from .gbr6 import GBr6, volume_r6_born_radii
from .gromacs import Gromacs
from .namd import NAMD
from .nblist import (NeighborList, build_nblist, expected_pairs_per_atom,
                     max_feasible_cutoff, nblist_bytes_model)
from .tinker import Tinker

#: All comparator packages in the paper's Table II order.
ALL_PACKAGES = (Gromacs, NAMD, Amber, Tinker, GBr6)

__all__ = [
    "ALL_PACKAGES",
    "Amber",
    "BaselineOOMError",
    "BaselinePackage",
    "BaselineResult",
    "GBr6",
    "Gromacs",
    "NAMD",
    "NeighborList",
    "PerfModel",
    "Tinker",
    "build_nblist",
    "expected_pairs_per_atom",
    "max_feasible_cutoff",
    "nblist_bytes_model",
    "pairwise_energy",
    "volume_r6_born_radii",
]
