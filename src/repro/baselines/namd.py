"""NAMD-2.9-like baseline: OBC Generalized Born over Charm++/MPI.

NAMD's GB (Tanner et al. 2011) uses the OBC rescaled-HCT radii.  In the
paper it is the slowest parallel package on ZDock inputs (max speedup over
Amber: 1.1), partly because GB energy cannot be requested alone -- the
paper had to difference two full electrostatics runs, and we fold that
doubled machinery into the time model.  Patch-based spatial decomposition
keeps its pair memory compact, which is why NAMD could still run CMV with
a 60 A cutoff when nblist packages could not (Section V.F).
"""

from __future__ import annotations

import numpy as np

from ..core.gbmodels import obc_born_radii
from ..core.params import GBModel
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from .base import BaselinePackage, PerfModel
from .nblist import expected_pairs_per_atom

#: Cutoff assumed for the memory model (NAMD always runs with one).
DEFAULT_CUTOFF = 16.0
#: Modelled bytes per pair in NAMD's compressed patch pairlists.
BYTES_PER_PAIR = 1.0
BASE_BYTES = 4.5e8  # Charm++ runtime + patch framework


class NAMD(BaselinePackage):
    """NAMD 2.9 (OBC, distributed Charm++/MPI)."""

    name = "NAMD 2.9"
    gb_model = GBModel.OBC
    parallelism = "distributed"
    perf = PerfModel(
        setup_seconds=0.55,
        t_pair=5.8e-8,
        parallel_efficiency=0.82,
    )

    def __init__(self, *args, cutoff: float = DEFAULT_CUTOFF,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.cutoff = cutoff

    def born_radii(self, molecule: Molecule,
                   counters: WorkCounters) -> np.ndarray:
        return obc_born_radii(molecule, counters=counters)

    def memory_bytes(self, natoms: int, cores: int) -> float:
        pairs = natoms * 0.5 * expected_pairs_per_atom(self.cutoff)
        return BASE_BYTES + 300.0 * natoms + BYTES_PER_PAIR * pairs

    def max_feasible_cutoff(self, natoms: int) -> float:
        """Largest cutoff fitting node RAM (Section V.F ran CMV at 60 A)."""
        lo, hi = 0.0, 512.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            saved, self.cutoff = self.cutoff, mid
            fits = self.memory_bytes(natoms, self.default_cores()) \
                <= self.machine.ram_bytes
            self.cutoff = saved
            if fits:
                lo = mid
            else:
                hi = mid
        return lo
