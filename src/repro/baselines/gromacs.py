"""Gromacs-4.5.3-like baseline: HCT Generalized Born over MPI.

Gromacs shares Amber's HCT radii but its tuned kernels make it the fastest
comparator in the paper's Fig. 8 (2.7-6.2x over Amber on ZDock inputs).
Its weakness is memory: the 4.5-era GB path keeps heavyweight per-rank
pairlist structures, so at virus-shell scale only tiny cutoffs fit
(Section V.F: "we were able to run Gromacs on CMV only for cutoff values
up to 2").  The memory model reproduces that cliff; the cutoff only bounds
feasibility -- ZDock-scale energies are computed all-pairs like the
package's effectively-unbounded GB default.
"""

from __future__ import annotations

import numpy as np

from ..core.gbmodels import hct_born_radii
from ..core.params import GBModel
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from .base import BaselinePackage, PerfModel
from .nblist import expected_pairs_per_atom

#: Default GB interaction cutoff (Angstrom) assumed for memory sizing.
DEFAULT_GB_CUTOFF = 25.0
#: Modelled bytes per stored pair entry in the 4.5-era GB pairlists
#: (indices, shift vectors, exclusion masks, Born-chain scratch).
BYTES_PER_PAIR = 96
BASE_BYTES = 4.0e7


class Gromacs(BaselinePackage):
    """Gromacs 4.5.3 (HCT, distributed MPI)."""

    name = "Gromacs 4.5.3"
    gb_model = GBModel.HCT
    parallelism = "distributed"
    perf = PerfModel(
        setup_seconds=0.06,
        t_pair=1.57e-8,
        parallel_efficiency=0.88,
    )

    def __init__(self, *args, cutoff: float = DEFAULT_GB_CUTOFF,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.cutoff = cutoff

    def born_radii(self, molecule: Molecule,
                   counters: WorkCounters) -> np.ndarray:
        return hct_born_radii(molecule, counters=counters)

    def memory_bytes(self, natoms: int, cores: int) -> float:
        # Per-node footprint: one pairlist share plus replicated GB arrays
        # for every rank packed onto the node.
        replicas = min(cores, self.machine.cores_per_node)
        pairs = natoms * 0.5 * expected_pairs_per_atom(self.cutoff)
        return (replicas * BASE_BYTES + BYTES_PER_PAIR * pairs
                + replicas * 1000 * natoms)

    def max_feasible_cutoff(self, natoms: int) -> float:
        """Largest cutoff whose modelled memory fits node RAM -- the
        Section V.F experiment."""
        lo, hi = 0.0, 512.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            saved, self.cutoff = self.cutoff, mid
            fits = self.memory_bytes(natoms, self.default_cores()) \
                <= self.machine.ram_bytes
            self.cutoff = saved
            if fits:
                lo = mid
            else:
                hi = mid
        return lo
