"""Amber-12-like baseline: HCT Generalized Born over MPI.

Amber 12's ``igb=1`` GB is the HCT pairwise-descreening model, run
all-pairs (Amber's GB default is an effectively unbounded cutoff), MPI
distributed by atom decomposition.  The time model's ``t_pair`` reflects
the HCT integral's log/branch-heavy inner loop plus general MD-package
plumbing; one constant, calibrated against the Fig. 8 anchor (OCT_MPI
~11x at 16,301 atoms on 12 cores), simultaneously lands the Fig. 11
anchor -- all-pairs N^2 growth puts full-CMV Amber at ~45 min on 12
cores, right beside the paper's measured 39 min.  The memory model is
linear with per-rank replication, which is why Amber -- unlike
Tinker/GBr6 -- survives the CMV shell.
"""

from __future__ import annotations

import numpy as np

from ..core.gbmodels import hct_born_radii
from ..core.params import GBModel
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from .base import BaselinePackage, PerfModel

#: Modelled per-atom resident bytes of one Amber MPI rank.
BYTES_PER_ATOM = 520
#: Fixed per-rank heap/code bytes.
BASE_BYTES = 5.5e7


class Amber(BaselinePackage):
    """Amber 12 (HCT, distributed MPI)."""

    name = "Amber 12"
    gb_model = GBModel.HCT
    parallelism = "distributed"
    perf = PerfModel(
        setup_seconds=0.25,
        t_pair=5.3e-8,
        parallel_efficiency=0.85,
        # "At present, Amber does not support concurrent execution of more
        # than 256 cores" (Section V.F footnote).
        max_cores=256,
    )

    def born_radii(self, molecule: Molecule,
                   counters: WorkCounters) -> np.ndarray:
        return hct_born_radii(molecule, counters=counters)

    def memory_bytes(self, natoms: int, cores: int) -> float:
        # Replication is per rank, but the OOM constraint is per node:
        # at most cores_per_node replicas share one node's RAM.
        replicas = min(cores, self.machine.cores_per_node)
        return replicas * (BASE_BYTES + BYTES_PER_ATOM * natoms)
