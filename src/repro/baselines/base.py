"""Common baseline-package interface and calibrated performance models.

Each baseline reimplements its package's *algorithm* faithfully (HCT
pairwise descreening for Amber/Gromacs, OBC for NAMD, Still's volume
descreening for Tinker, volume-based r^6 for GBr6) so that its *energy
value* on a molecule is a genuine output of that model -- the spread of
Fig. 9 emerges from the physics, not from fudged numbers.

Running *time* is a per-package cost model: ``T(N, cores) = setup +
passes * pairs(N) * t_pair / (cores * efficiency) * thrash(N)``.  The
``t_pair`` constants are calibrated once against the paper's Fig. 8/11
anchors (OCT_MPI ~11x Amber at 16,301 atoms on 12 cores; Amber in tens of
minutes at CMV scale) and then held fixed; see DESIGN.md Section 6.

Memory is modelled per package; Fig. 9's observations pin the thresholds
(Tinker OOMs above ~12k atoms, GBr6 above ~13k, both quadratic
allocators), and nblist cubic-in-cutoff growth limits Gromacs/NAMD on CMV
(Section V.F).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..constants import EPSILON_WATER
from ..core.gbmodels import f_gb
from ..core.integrals import pair_distance_sq
from ..core.naive import ENERGY_BLOCK
from ..core.params import GBModel
from ..molecule.molecule import Molecule
from ..parallel.machine import LONESTAR4, MachineSpec
from ..runtime.instrument import WorkCounters
from ..constants import gb_prefactor


class BaselineOOMError(MemoryError):
    """The modelled package exceeds node RAM for this input."""


@dataclass
class BaselineResult:
    """One baseline run: energy (real numerics) + modelled time/memory."""

    package: str
    gb_model: GBModel
    energy: float
    born_radii: np.ndarray
    sim_seconds: float
    memory_bytes: float
    cores: int
    counters: WorkCounters


def pairwise_energy(molecule: Molecule, born_radii: np.ndarray, *,
                    epsilon_solvent: float = EPSILON_WATER,
                    counters: WorkCounters | None = None) -> float:
    """Full-double-sum GB energy (Eq. 2) shared by every baseline."""
    pos = molecule.positions
    q = molecule.charges
    R = np.asarray(born_radii, dtype=np.float64)
    n = len(molecule)
    total = 0.0
    for s in range(0, n, ENERGY_BLOCK):
        e = min(s + ENERGY_BLOCK, n)
        r2, _, _ = pair_distance_sq(pos[s:e], pos)
        f = f_gb(r2, R[s:e, None] * R[None, :])
        total += float(np.sum(q[s:e, None] * q[None, :] / f))
        if counters is not None:
            counters.exact_pairs += (e - s) * n
    return gb_prefactor(epsilon_solvent) * total


@dataclass(frozen=True)
class PerfModel:
    """The calibrated running-time model of one package.

    Attributes
    ----------
    setup_seconds:
        Fixed per-run cost (input processing, pairlist setup, MPI launch).
    t_pair:
        Seconds per pairwise interaction *per pass* on one core.  HCT/OBC
        integrals (logs, branches) cost tens of flops more than the
        octree's r^6 kernel, and package plumbing (generic MD loops,
        virials) adds more; hence values well above the octree's 1.2e-8.
    passes:
        Pairwise sweeps per energy evaluation (Born radii + energy = 2).
    parallel_efficiency:
        Fraction of linear scaling retained at the reference core count.
    max_cores:
        Hard cap (the paper notes Amber would not run beyond 256 cores).
    thrash_threshold_bytes / thrash_penalty:
        Above this resident size, time is multiplied by the penalty
        (paging/THP pressure at virus-shell scale).
    """

    setup_seconds: float
    t_pair: float
    passes: float = 2.0
    parallel_efficiency: float = 0.85
    max_cores: int = 4096
    thrash_threshold_bytes: float = 16e9
    thrash_penalty: float = 2.5

    def seconds(self, pairs: float, cores: int, memory_bytes: float) -> float:
        """Modelled wall time for ``pairs`` pairwise interactions."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if cores > self.max_cores:
            raise ValueError(f"package limited to {self.max_cores} cores")
        eff = cores if cores == 1 else cores * self.parallel_efficiency
        t = self.setup_seconds + self.passes * pairs * self.t_pair / eff
        if memory_bytes > self.thrash_threshold_bytes:
            t *= self.thrash_penalty
        return t


class BaselinePackage(abc.ABC):
    """Interface every simulated comparator implements."""

    #: Package display name, e.g. ``"Amber 12"``.
    name: str
    #: GB flavour (Table II).
    gb_model: GBModel
    #: ``"distributed"``, ``"shared"`` or ``"serial"`` (Table II).
    parallelism: str
    #: The calibrated time model.
    perf: PerfModel

    def __init__(self, machine: MachineSpec = LONESTAR4) -> None:
        self.machine = machine

    # -- real numerics -------------------------------------------------
    @abc.abstractmethod
    def born_radii(self, molecule: Molecule,
                   counters: WorkCounters) -> np.ndarray:
        """The package's Born radii for ``molecule`` (real computation)."""

    # -- models ---------------------------------------------------------
    @abc.abstractmethod
    def memory_bytes(self, natoms: int, cores: int) -> float:
        """Modelled resident memory for this input."""

    def interaction_pairs(self, natoms: int) -> float:
        """Pairwise interactions per pass (packages without a GB cutoff
        sweep all pairs; override for cutoff-based schemes)."""
        return float(natoms) * natoms

    def default_cores(self) -> int:
        """The core count the paper ran this package with on one node."""
        return 1 if self.parallelism == "serial" else self.machine.cores_per_node

    # -- the one-call entry point ----------------------------------------
    def run(self, molecule: Molecule, *, cores: int | None = None,
            epsilon_solvent: float = EPSILON_WATER) -> BaselineResult:
        """Compute the energy with this package's GB model and return it
        with modelled time/memory.

        Raises
        ------
        BaselineOOMError
            When the modelled memory exceeds node RAM (the paper's Tinker
            / GBr6 / large-cutoff failures).
        """
        cores = self.default_cores() if cores is None else cores
        natoms = len(molecule)
        memory = self.memory_bytes(natoms, cores)
        if memory > self.machine.ram_bytes:
            raise BaselineOOMError(
                f"{self.name} needs {memory / 1e9:.1f} GB for {natoms} atoms "
                f"(> {self.machine.ram_gb:.0f} GB node RAM)")
        counters = WorkCounters()
        radii = self.born_radii(molecule, counters)
        energy = pairwise_energy(molecule, radii,
                                 epsilon_solvent=epsilon_solvent,
                                 counters=counters)
        seconds = self.perf.seconds(self.interaction_pairs(natoms), cores,
                                    memory)
        return BaselineResult(package=self.name, gb_model=self.gb_model,
                              energy=energy, born_radii=radii,
                              sim_seconds=seconds, memory_bytes=memory,
                              cores=cores, counters=counters)

    def time_only(self, natoms: int, *, cores: int | None = None) -> float:
        """Modelled wall time without running the numerics -- usable at the
        paper's full input sizes (e.g. the 509,640-atom CMV shell) where
        the real O(N^2) kernels would be intractable in Python."""
        cores = self.default_cores() if cores is None else cores
        memory = self.memory_bytes(natoms, cores)
        if memory > self.machine.ram_bytes:
            raise BaselineOOMError(
                f"{self.name} needs {memory / 1e9:.1f} GB for {natoms} atoms")
        return self.perf.seconds(self.interaction_pairs(natoms), cores, memory)
