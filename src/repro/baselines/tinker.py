"""Tinker-6.0-like baseline: Still-1990 Generalized Born, OpenMP shared.

Tinker's GB/SA lineage is Still's original model: Born radii from volume
descreening (:func:`~repro.core.gbmodels.still_volume_born_radii`), which
systematically under-descreens buried atoms relative to the surface-r^6
reference -- the mechanism behind the paper's Fig. 9 observation that
"energy values reported by Tinker were around 70% of the naive energy".

Tinker is shared-memory only (OpenMP, max one node) and allocates
quadratic per-pair work arrays, reproducing the paper's out-of-memory
failures for molecules above ~12k atoms (Fig. 9) and on CMV (Fig. 11).
"""

from __future__ import annotations

import numpy as np

from ..core.gbmodels import still_volume_born_radii
from ..core.params import GBModel
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from .base import BaselinePackage, PerfModel

#: Quadratic allocation coefficient (bytes per atom pair): calibrated so
#: the modelled footprint crosses 24 GB at ~12.3k atoms, the failure size
#: the paper observed.
BYTES_PER_PAIR_SQ = 158.0
BASE_BYTES = 3.0e7


class Tinker(BaselinePackage):
    """Tinker 6.0 (STILL, shared-memory OpenMP)."""

    name = "Tinker 6.0"
    gb_model = GBModel.STILL
    parallelism = "shared"
    perf = PerfModel(
        setup_seconds=0.12,
        t_pair=3.1e-8,
        parallel_efficiency=0.80,
        max_cores=12,  # one node; OpenMP only
    )

    def born_radii(self, molecule: Molecule,
                   counters: WorkCounters) -> np.ndarray:
        return still_volume_born_radii(molecule, counters=counters)

    def memory_bytes(self, natoms: int, cores: int) -> float:
        return BASE_BYTES + BYTES_PER_PAIR_SQ * float(natoms) * natoms

    def max_atoms(self) -> int:
        """Largest molecule fitting node RAM (paper: ~12k atoms)."""
        return int(((self.machine.ram_bytes - BASE_BYTES)
                    / BYTES_PER_PAIR_SQ) ** 0.5)
