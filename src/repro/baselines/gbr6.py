"""GBr6-like baseline: volume-based r^6 Born radii, serial.

GBr6 (Tjong & Zhou 2007) is the paper's closest methodological relative:
it also uses the r^6 Coulomb-field-corrected Born integral, but evaluated
over the molecular *volume* instead of the surface::

    1/R_i^3 = 1/rho_i^3 - (3/4pi) sum_{j != i} Integral_{V_j} |r - x_i|^-6 dV

We evaluate the per-sphere integral with its far-field closed form
``V_j / (d^2 - a_j^2)^3`` (exact leading order, finite-size corrected by
the ``-a^2`` shift), clamping overlapping pairs -- the standard pairwise
volume-integration treatment.

GBr6 is serial and allocates quadratic work arrays; the paper saw it run
out of memory above ~13k atoms (Fig. 9) and on CMV (Fig. 11), and beat
12-core Amber only on the smallest inputs (max speedup 1.14, Fig. 8b).
"""

from __future__ import annotations

import numpy as np

from ..constants import FOUR_PI
from ..core.params import GBModel
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters
from .base import BaselinePackage, PerfModel

#: Quadratic allocation coefficient: crosses 24 GB at ~13.3k atoms.
BYTES_PER_PAIR_SQ = 136.0
BASE_BYTES = 2.0e7

#: Pair-block edge for the volume integral sweep.
BLOCK = 256

#: Volume-overlap correction, calibrated on protein-density synthetic
#: packings so the volume sum tracks the exterior-volume integral it
#: approximates (pairwise spheres double-count overlap volume); with it,
#: GBr6's energies match the naive surface-r^6 reference closely, as the
#: paper's Fig. 9 observed.
OVERLAP_SCALE = 1.3


def volume_r6_born_radii(molecule: Molecule, *,
                         scale: float = OVERLAP_SCALE,
                         counters: WorkCounters | None = None) -> np.ndarray:
    """Volume-based r^6 Born radii (GBr6's integral, pairwise-sphere
    approximation)."""
    pos = molecule.positions
    n = len(molecule)
    radii = molecule.radii
    vol = FOUR_PI / 3.0 * radii ** 3
    inv_r3 = 1.0 / radii ** 3
    total = np.zeros(n)
    for s in range(0, n, BLOCK):
        e = min(s + BLOCK, n)
        diff = pos[None, :, :] - pos[s:e, None, :]
        d2 = np.einsum("ijx,ijx->ij", diff, diff)
        a2 = (radii ** 2)[None, :]
        # Far-field closed form; floor the denominator at contact
        # separation so a fused neighbour's descreening saturates instead
        # of diverging.
        floor = (radii[s:e, None] + radii[None, :]) ** 2 - a2
        denom = np.maximum(d2 - a2, floor)
        contrib = vol[None, :] / denom ** 3
        mask = np.ones_like(contrib, dtype=bool)
        mask[np.arange(e - s), np.arange(s, e)] = False
        total[s:e] = np.where(mask, contrib, 0.0).sum(axis=1)
        if counters is not None:
            counters.exact_pairs += (e - s) * n
    inv_R3 = inv_r3 - scale * (3.0 / FOUR_PI) * total
    # Clamp like every production GB code: R in [rho, 50 * max radius].
    upper = 1.0 / radii ** 3
    lower = 1.0 / (50.0 * radii.max()) ** 3
    inv_R3 = np.clip(inv_R3, lower, upper)
    return inv_R3 ** (-1.0 / 3.0)


class GBr6(BaselinePackage):
    """GBr6 (volume r^6, serial)."""

    name = "GBr6"
    gb_model = GBModel.R6_VOLUME
    parallelism = "serial"
    perf = PerfModel(
        setup_seconds=0.2,
        t_pair=1.3e-8,
        parallel_efficiency=1.0,
        max_cores=1,
    )

    def born_radii(self, molecule: Molecule,
                   counters: WorkCounters) -> np.ndarray:
        return volume_r6_born_radii(molecule, counters=counters)

    def memory_bytes(self, natoms: int, cores: int) -> float:
        return BASE_BYTES + BYTES_PER_PAIR_SQ * float(natoms) * natoms

    def max_atoms(self) -> int:
        """Largest molecule fitting node RAM (paper: ~13k atoms)."""
        return int(((self.machine.ram_bytes - BASE_BYTES)
                    / BYTES_PER_PAIR_SQ) ** 0.5)
