"""Nonbonded-list (nblist) construction and its space model.

The paper's Section II argues octrees beat nblists because an nblist's
size grows *cubically with the distance cutoff* (every atom stores all
neighbours within the cutoff) while an octree stays linear and
cutoff-independent.  We implement a real cell-grid nblist builder (used by
the baseline packages' energy kernels) and the byte-accounting that drives
the paper's out-of-memory observations (Section V.D/V.F).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry import CellGrid
from ..molecule.elements import PROTEIN_ATOM_DENSITY
from ..molecule.molecule import Molecule
from ..runtime.instrument import WorkCounters

#: Bytes per stored neighbour entry (index + exclusion flags + padding, as
#: in Amber/Gromacs pairlist structures).
BYTES_PER_ENTRY = 8

#: Fixed per-atom nblist header bytes.
BYTES_PER_ATOM = 64


@dataclass
class NeighborList:
    """A flat CSR-style nonbonded list.

    Attributes
    ----------
    offsets:
        ``(N+1,)`` prefix offsets into ``neighbors``.
    neighbors:
        Concatenated neighbour indices (each unordered pair appears once,
        stored under the lower atom id).
    cutoff:
        The distance cutoff used.
    """

    offsets: np.ndarray
    neighbors: np.ndarray
    cutoff: float

    @property
    def natoms(self) -> int:
        return len(self.offsets) - 1

    @property
    def npairs(self) -> int:
        return len(self.neighbors)

    def neighbors_of(self, i: int) -> np.ndarray:
        """Neighbour ids of atom ``i`` (only those with id > i)."""
        return self.neighbors[self.offsets[i]:self.offsets[i + 1]]

    def nbytes(self) -> int:
        """Modelled resident size (the paper's space argument)."""
        return (self.natoms * BYTES_PER_ATOM
                + self.npairs * BYTES_PER_ENTRY)


def build_nblist(molecule: Molecule, cutoff: float, *,
                 counters: WorkCounters | None = None) -> NeighborList:
    """Build the half nonbonded list of ``molecule`` at ``cutoff``."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    pos = molecule.positions
    n = len(molecule)
    grid = CellGrid(pos, cell_size=cutoff)
    offsets = np.zeros(n + 1, dtype=np.int64)
    chunks: list[np.ndarray] = []
    c2 = cutoff * cutoff
    for i in range(n):
        cand = grid.candidates(pos[i], cutoff)
        cand = cand[cand > i]
        if len(cand):
            d2 = np.sum((pos[cand] - pos[i]) ** 2, axis=1)
            cand = cand[d2 < c2]
        chunks.append(np.sort(cand))
        offsets[i + 1] = offsets[i] + len(cand)
        if counters is not None:
            counters.exact_pairs += len(cand)
    neighbors = (np.concatenate(chunks) if chunks
                 else np.empty(0, dtype=np.int64))
    return NeighborList(offsets=offsets, neighbors=neighbors, cutoff=cutoff)


def expected_pairs_per_atom(cutoff: float,
                            density: float = PROTEIN_ATOM_DENSITY) -> float:
    """Mean neighbour count at protein density: ``(4/3) pi c^3 rho`` --
    the cubic growth the paper's space argument rests on."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    return 4.0 / 3.0 * math.pi * cutoff ** 3 * density


def nblist_bytes_model(natoms: int, cutoff: float, *,
                       density: float = PROTEIN_ATOM_DENSITY,
                       replicas: int = 1) -> float:
    """Modelled nblist bytes without building it: linear in atoms, cubic in
    cutoff, one replica per distributed-memory rank."""
    ppa = expected_pairs_per_atom(cutoff, density)
    per_replica = natoms * (BYTES_PER_ATOM + 0.5 * ppa * BYTES_PER_ENTRY)
    return replicas * per_replica


def max_feasible_cutoff(natoms: int, ram_bytes: float, *,
                        density: float = PROTEIN_ATOM_DENSITY,
                        replicas: int = 1) -> float:
    """Largest cutoff whose modelled nblist fits in ``ram_bytes`` -- how we
    reproduce "we were able to run Gromacs and NAMD on CMV only for cutoff
    values up to ..." (Section V.F)."""
    lo, hi = 0.1, 1024.0
    if nblist_bytes_model(natoms, lo, density=density, replicas=replicas) > ram_bytes:
        return 0.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if nblist_bytes_model(natoms, mid, density=density,
                              replicas=replicas) <= ram_bytes:
            lo = mid
        else:
            hi = mid
    return lo
