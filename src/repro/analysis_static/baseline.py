"""Findings-baseline files shared by repro-lint and repro-verify.

A baseline is a reviewed snapshot of accepted findings.  CI runs with
``--baseline FILE`` and fails only on findings *not* in the snapshot, so
a rule (or checker) can ship before the last legacy finding is fixed
without losing the ratchet on new code.

Fingerprints are deliberately line-number free
(``CHECK|path|function|message`` for verify, ``RULE|path|message`` for
lint) so unrelated edits above a finding do not invalidate the
baseline; the file itself is sorted JSON and meant to be committed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

_VERSION = 1


class BaselineError(ValueError):
    """Raised for unreadable or malformed baseline files."""


def load_baseline(path: Path) -> set[str]:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise BaselineError(f"baseline file not found: {path}") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("fingerprints"), list):
        raise BaselineError(
            f"malformed baseline {path}: expected "
            '{"version": 1, "fingerprints": [...]}'
        )
    return {str(fp) for fp in data["fingerprints"]}


def write_baseline(path: Path, fingerprints: Iterable[str]) -> None:
    payload = {
        "version": _VERSION,
        "fingerprints": sorted(set(fingerprints)),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
