"""The serving stack's protocol models.

Five models cover the moving parts PR 4/6/9 composed dynamically:

* ``scheduler`` -- :class:`~repro.serve.scheduler.EpolServer`'s request
  path: bounded admission, dispatch (resolve / slice-failure /
  fleet-failure), drain and exit;
* ``future`` -- :class:`~repro.serve.client.ServeFuture` resolve-once
  handoff between the scheduler thread and a waiting caller;
* ``pool`` -- :class:`~repro.parallel.procpool.pool.PersistentWorkerPool`
  lifecycle: submit, collect, worker crash, death detection, in-place
  respawn, shutdown;
* ``shm`` -- the per-request scratch segment of
  :meth:`~repro.serve.fleet.ProcessFleet.run_sliced`: publish, attach,
  close-before-unlink, unlink-exactly-once on every path including
  worker crash;
* ``cluster`` -- :class:`~repro.cluster.router.ClusterRouter`'s routing
  tier: forward, shard bounce with propagated rejection (the client can
  retry), and the two-range work donation that must execute every
  donated row range exactly once before the owner reduces.

Each model's guarantees are anchored to the implementation by
:class:`~.extract.CodeFact` records.  When a fact fails, the
conformance check reports RV405 and the builder is re-run with that
guarantee *weakened* -- the re-explored model then exhibits the
regression as a counterexample interleaving (RV401--RV404, RV406).

The models are deliberately small (2 symbolic clients, 1 worker, 1
task): large enough that every property the tentpole names has a
reachable violation when its backing fact is broken, small enough that
full exploration is instant and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..verify.program import FunctionInfo, Program
from . import extract
from .extract import CodeFact
from .machine import (DEADLOCK, INVARIANT, OBLIGATION, Invariant, Model,
                      Obligation, Transition)

#: Stuck-process classification for a client that admitted a request and
#: never saw it resolve or reject -- the "lost future" property.
LOST_FUTURE = "lost-future"

#: Scheduler-model queue capacity.  Two symbolic clients against a
#: one-slot queue is the smallest configuration where over-admission is
#: observable as an invariant violation.
QUEUE_CAP = 1
_CLIENTS = ("c1", "c2")


# ---------------------------------------------------------------------------
# scheduler: admit -> dispatch -> resolve/reject -> drain -> exit
# ---------------------------------------------------------------------------

def build_scheduler_model(weak: frozenset[str] = frozenset()) -> Model:
    """EpolServer's request path with ``QUEUE_CAP`` admission slots.

    Weakenings: ``admit_guard`` (submit loses its capacity check),
    ``slice_reject`` (the ``except SliceError`` handler no longer
    rejects the future), ``fleet_reject`` (the ``except FleetError``
    handler no longer rejects pending futures before stopping).
    """
    cap = QUEUE_CAP if "admit_guard" not in weak else 10 ** 9

    def admit(c: str) -> Transition:
        return Transition(
            "client-" + c, "admit", "start", "waiting",
            guard=lambda s, c=c: not s["stopped"] and len(s["queue"]) < cap,
            update=lambda s, c=c: s.__setitem__("queue", s["queue"] + (c,)))

    def reject_full(c: str) -> Transition:
        return Transition(
            "client-" + c, "admit", "start", "rejected", detail="backpressure",
            guard=lambda s: not s["stopped"] and len(s["queue"]) >= QUEUE_CAP)

    def reject_closed(c: str) -> Transition:
        return Transition(
            "client-" + c, "admit", "start", "rejected", detail="closed",
            guard=lambda s: bool(s["stopped"]))

    def wake(c: str) -> Transition:
        return Transition(
            "client-" + c, "wake", "waiting", "done", internal=True,
            guard=lambda s, c=c: c in s["settled"])

    def _pop_first(s: dict, *, settle: bool) -> None:
        head, rest = s["queue"][0], s["queue"][1:]
        s["queue"] = rest
        if settle:
            s["settled"] = s["settled"] | {head}

    def _pop_all(s: dict, *, settle: bool) -> None:
        if settle:
            s["settled"] = s["settled"] | set(s["queue"])
        s["queue"] = ()
        s["stopped"] = True

    transitions = [t for c in _CLIENTS
                   for t in (admit(c), reject_full(c), reject_closed(c),
                             wake(c))]
    transitions += [
        # Healthy dispatch: the oldest admitted request resolves.
        Transition("sched", "dispatch", "idle", "idle", detail="resolve",
                   guard=lambda s: bool(s["queue"]) and s["fleet_ok"],
                   update=lambda s: _pop_first(s, settle=True)),
        # Request-scoped slice failure (worker died mid-slice, fleet
        # recovered): the one future is rejected, serving continues.
        Transition("sched", "dispatch", "idle", "idle", detail="slice-fail",
                   guard=lambda s: bool(s["queue"]) and s["fleet_ok"],
                   update=lambda s: _pop_first(
                       s, settle="slice_reject" not in weak)),
        # Fleet-scoped failure: every pending future is rejected and the
        # server stops admitting.
        Transition("sched", "dispatch", "idle", "idle", detail="fleet-error",
                   guard=lambda s: bool(s["queue"]) and not s["fleet_ok"],
                   update=lambda s: _pop_all(
                       s, settle="fleet_reject" not in weak)),
        Transition("sched", "exit", "idle", "exited", internal=True,
                   guard=lambda s: s["stopped"] and not s["queue"]),
        Transition("stopper", "stop", "running", "stopped_srv",
                   update=lambda s: s.__setitem__("stopped", True)),
        Transition("fleet", "break", "ok", "broken", internal=True,
                   update=lambda s: s.__setitem__("fleet_ok", False)),
    ]
    return Model(
        "scheduler",
        processes={**{"client-" + c: "start" for c in _CLIENTS},
                   "sched": "idle", "stopper": "running", "fleet": "ok"},
        final={**{"client-" + c: ("done", "rejected") for c in _CLIENTS},
               "sched": ("exited",), "stopper": ("stopped_srv",),
               "fleet": ("ok", "broken")},
        shared={"queue": (), "settled": frozenset(), "stopped": False,
                "fleet_ok": True},
        transitions=transitions,
        invariants=[Invariant(
            "queue-bound",
            lambda s: len(s["queue"]) <= QUEUE_CAP,
            "admitted requests never exceed queue_capacity")],
        stuck_kinds={"client-" + c: LOST_FUTURE for c in _CLIENTS},
    )


# ---------------------------------------------------------------------------
# future: resolve-once handoff
# ---------------------------------------------------------------------------

def build_future_model(weak: frozenset[str] = frozenset()) -> Model:
    """ServeFuture: the producer stores a value/error then sets the done
    event; the consumer wakes only after it is set.

    Weakening ``done_set``: ``_resolve``/``_reject`` no longer set the
    event -- the consumer blocks forever (lost future)."""
    sets_done = "done_set" not in weak

    def settle(label: str) -> Transition:
        return Transition(
            "producer", label, "idle", "complete",
            update=lambda s: s.__setitem__("done", sets_done))

    return Model(
        "future",
        processes={"producer": "idle", "consumer": "waiting"},
        final={"producer": ("complete",), "consumer": ("got",)},
        shared={"done": False},
        transitions=[
            settle("resolve"),
            settle("reject"),
            Transition("consumer", "wake", "waiting", "got", internal=True,
                       guard=lambda s: bool(s["done"])),
        ],
        stuck_kinds={"consumer": LOST_FUTURE},
    )


# ---------------------------------------------------------------------------
# pool: submit -> serve -> crash -> detect -> respawn -> shutdown
# ---------------------------------------------------------------------------

def build_pool_model(weak: frozenset[str] = frozenset()) -> Model:
    """PersistentWorkerPool with one worker and one task in flight.

    Weakening ``death_detect``: ``next_result`` no longer polls worker
    exit codes -- a crash with no queued result deadlocks the parent."""

    def take(s: dict) -> None:
        s["task_pending"] = False

    def post(s: dict) -> None:
        s["results"] = s["results"] + 1

    transitions = [
        Transition("parent", "submit", "idle", "collecting",
                   guard=lambda s: s["submits_left"] > 0,
                   update=lambda s: s.update(
                       submits_left=s["submits_left"] - 1,
                       task_pending=True)),
        Transition("parent", "next_result", "collecting", "idle",
                   guard=lambda s: s["results"] > 0,
                   update=lambda s: s.__setitem__(
                       "results", s["results"] - 1)),
        Transition("worker", "take", "serving", "working", internal=True,
                   guard=lambda s: s["task_pending"], update=take),
        Transition("worker", "post", "working", "serving", internal=True,
                   update=post),
        Transition("worker", "crash", "serving", "dead", internal=True),
        Transition("worker", "crash", "working", "dead", internal=True,
                   detail="mid-task"),
        Transition("parent", "respawn", "failed", "idle",
                   update=lambda s: s.__setitem__("task_pending", False)),
        Transition("parent", "shutdown", "idle", "closed",
                   update=lambda s: s.__setitem__("shutdown_sent", True)),
        Transition("worker", "take", "serving", "stopped", internal=True,
                   detail="sentinel",
                   guard=lambda s: bool(s["shutdown_sent"])),
    ]
    if "death_detect" not in weak:
        transitions.insert(2, Transition(
            "parent", "next_result", "collecting", "failed",
            detail="pool-error",
            guard=lambda s: s["results"] == 0 and not s["task_pending"]
            and s["worker"] == "dead"))
        # A crash that loses the submitted task before any worker took it
        # is also detected by the exit-code poll.
        transitions.insert(3, Transition(
            "parent", "next_result", "collecting", "failed",
            detail="pool-error",
            guard=lambda s: s["results"] == 0 and s["task_pending"]
            and s["worker"] == "dead",
            update=take))
        # Respawn replaces the dead rank in place.
        transitions.append(Transition(
            "worker", "spawn", "dead", "serving", internal=True,
            guard=lambda s: s["parent"] == "failed"))
    return Model(
        "pool",
        processes={"parent": "idle", "worker": "serving"},
        final={"parent": ("closed",),
               "worker": ("stopped", "dead", "serving")},
        shared={"results": 0, "task_pending": False, "submits_left": 1,
                "shutdown_sent": False},
        transitions=transitions,
    )


# ---------------------------------------------------------------------------
# shm: publish -> attach -> close -> unlink (exactly once, every path)
# ---------------------------------------------------------------------------

def build_shm_model(weak: frozenset[str] = frozenset()) -> Model:
    """The per-request scratch segment lifecycle of ``run_sliced``.

    Weakening ``scratch_lifecycle``: the owner's finally block no longer
    closes its mapping before unlinking -- the model unlinks straight
    from ``published`` and the unlink-while-mapped invariant fires."""
    skip_close = "scratch_lifecycle" in weak

    transitions = [
        Transition("owner", "publish", "start", "published",
                   update=lambda s: s.update(exists=True,
                                             owner_mapped=True)),
        Transition("attacher", "attach", "idle", "attached", internal=True,
                   guard=lambda s: bool(s["exists"])),
        Transition("attacher", "close", "attached", "detached",
                   internal=True),
        Transition("attacher", "crash", "attached", "dead", internal=True),
        Transition("attacher", "crash", "idle", "dead", internal=True),
    ]
    if skip_close:
        transitions.append(Transition(
            "owner", "unlink", "published", "done",
            update=lambda s: s.update(exists=False,
                                      unlinks=s["unlinks"] + 1)))
    else:
        transitions += [
            Transition("owner", "close", "published", "closed_local",
                       update=lambda s: s.__setitem__("owner_mapped",
                                                      False)),
            Transition("owner", "unlink", "closed_local", "done",
                       update=lambda s: s.update(exists=False,
                                                 unlinks=s["unlinks"] + 1)),
        ]
    return Model(
        "shm",
        processes={"owner": "start", "attacher": "idle"},
        final={"owner": ("done",),
               "attacher": ("detached", "dead", "idle")},
        shared={"exists": False, "owner_mapped": False, "unlinks": 0},
        transitions=transitions,
        invariants=[
            Invariant("unlink-while-mapped",
                      lambda s: s["unlinks"] == 0 or not s["owner_mapped"],
                      "owner must close its mapping before unlink"),
            Invariant("double-unlink", lambda s: s["unlinks"] <= 1,
                      "a segment is unlinked at most once"),
        ],
        obligations=[Obligation(
            "segment-reclaimed",
            lambda s: s["unlinks"] == 1 and not s["exists"],
            "every published segment is unlinked exactly once")],
    )


# ---------------------------------------------------------------------------
# cluster: forward -> bounce/reject -> retry; donate -> exec x2 -> reduce
# ---------------------------------------------------------------------------

def build_router_model(weak: frozenset[str] = frozenset()) -> Model:
    """ClusterRouter's routing tier: two clients, one shard slot, and a
    two-range work donation.

    A forward either delivers into the shard's one admission slot or
    *bounces* -- the shard refused, which from the router's seat is
    nondeterministic.  The strong router propagates every bounce to the
    submitting client as a rejection (the client retries once, then
    gives up with a definite error).  Donation pops a request, executes
    its two row ranges, then reduces.

    Weakenings: ``swallow_reject`` (``_forward`` no longer re-raises the
    shard's ``RejectedError`` -- the bounced client waits forever, a
    lost future, RV402); ``donate_once`` (``_donate`` no longer cuts
    disjoint ranges with ``donation_bounds`` -- a donated range can
    execute twice, violating the exactly-once invariant behind
    bit-identical donated energies, RV406).
    """
    propagate = "swallow_reject" not in weak
    exec_cap = 1 if "donate_once" not in weak else 2

    def submit(c: str) -> Transition:
        return Transition(
            "client-" + c, "submit", "start", "waiting",
            update=lambda s, c=c: s.__setitem__("pending",
                                                s["pending"] + (c,)))

    def _resubmit(s: dict, c: str) -> None:
        s["pending"] = s["pending"] + (c,)
        s["bounced"] = s["bounced"] - {c}
        s["retry"] = s["retry"] - {c}

    def resubmit(c: str) -> Transition:
        return Transition(
            "client-" + c, "submit", "waiting", "waiting", detail="retry",
            guard=lambda s, c=c: c in s["bounced"] and c in s["retry"],
            update=lambda s, c=c: _resubmit(s, c))

    def give_up(c: str) -> Transition:
        return Transition(
            "client-" + c, "give_up", "waiting", "rejected", internal=True,
            guard=lambda s, c=c: c in s["bounced"] and c not in s["retry"],
            update=lambda s, c=c: s.__setitem__("bounced",
                                                s["bounced"] - {c}))

    def wake(c: str) -> Transition:
        return Transition(
            "client-" + c, "wake", "waiting", "done", internal=True,
            guard=lambda s, c=c: c in s["settled"])

    def _deliver(s: dict) -> None:
        head, s["pending"] = s["pending"][0], s["pending"][1:]
        s["q"] = s["q"] + (head,)

    def _bounce(s: dict) -> None:
        head, s["pending"] = s["pending"][0], s["pending"][1:]
        s["attempt"] = head

    def _reject(s: dict) -> None:
        if propagate:
            s["bounced"] = s["bounced"] | {s["attempt"]}
        s["attempt"] = ""

    def _serve(s: dict) -> None:
        head, s["q"] = s["q"][0], s["q"][1:]
        s["settled"] = s["settled"] | {head}

    def _start_donation(s: dict) -> None:
        head, s["pending"] = s["pending"][0], s["pending"][1:]
        s["donated"] = head
        s["r1"] = s["r2"] = 0

    def _finish_donation(s: dict) -> None:
        s["settled"] = s["settled"] | {s["donated"]}
        s["donated"] = ""
        s["r1"] = s["r2"] = 0

    transitions = [t for c in _CLIENTS
                   for t in (submit(c), resubmit(c), give_up(c), wake(c))]
    transitions += [
        Transition("router", "forward", "idle", "idle", detail="deliver",
                   guard=lambda s: bool(s["pending"])
                   and len(s["q"]) < QUEUE_CAP,
                   update=_deliver),
        # The shard may refuse admission (bound hit -- from the router's
        # seat, nondeterministic): the forward bounces.
        Transition("router", "forward", "idle", "bouncing", detail="bounce",
                   guard=lambda s: bool(s["pending"]), update=_bounce),
        Transition("router", "reject", "bouncing", "idle", update=_reject),
        Transition("shard", "serve", "serving", "serving", internal=True,
                   guard=lambda s: bool(s["q"]), update=_serve),
        Transition("router", "donate", "idle", "donating",
                   guard=lambda s: bool(s["pending"]),
                   update=_start_donation),
        Transition("router", "exec", "donating", "donating",
                   detail="range-1",
                   guard=lambda s: s["r1"] < exec_cap,
                   update=lambda s: s.__setitem__("r1", s["r1"] + 1)),
        Transition("router", "exec", "donating", "donating",
                   detail="range-2",
                   guard=lambda s: s["r2"] < exec_cap,
                   update=lambda s: s.__setitem__("r2", s["r2"] + 1)),
        Transition("router", "reduce", "donating", "idle",
                   guard=lambda s: s["r1"] >= 1 and s["r2"] >= 1,
                   update=_finish_donation),
    ]
    return Model(
        "cluster",
        processes={**{"client-" + c: "start" for c in _CLIENTS},
                   "router": "idle", "shard": "serving"},
        final={**{"client-" + c: ("done", "rejected") for c in _CLIENTS},
               "router": ("idle",), "shard": ("serving",)},
        shared={"pending": (), "q": (), "settled": frozenset(),
                "bounced": frozenset(), "retry": frozenset(_CLIENTS),
                "attempt": "", "donated": "", "r1": 0, "r2": 0},
        transitions=transitions,
        invariants=[Invariant(
            "range-once",
            lambda s: s["r1"] <= 1 and s["r2"] <= 1,
            "a donated row range is executed exactly once")],
        stuck_kinds={"client-" + c: LOST_FUTURE for c in _CLIENTS},
    )


# ---------------------------------------------------------------------------
# Spec registry: anchors, facts, required annotations, RV mapping
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RequiredMark:
    """One ``@protocol_event`` annotation the conformance check expects
    on the real code (checked only when ``anchor`` is in the program)."""

    protocol: str
    event: str
    anchor: str  # qualname suffix of the function that must carry it


@dataclass(frozen=True)
class ProtocolSpec:
    name: str
    title: str
    #: The spec applies only when this function is in the program.
    anchor: str
    build: Callable[[frozenset[str]], Model]
    facts: tuple[CodeFact, ...] = ()
    marks: tuple[RequiredMark, ...] = ()
    #: Violation kind -> RV check id (fallback RV401).
    kinds: Mapping[str, str] = field(default_factory=dict)

    def classify(self, kind: str) -> str:
        return self.kinds.get(kind, "RV401")


def _fact(name: str, anchor: str, describe: str, weakens: str,
          check: Callable[[Program, FunctionInfo], bool]) -> CodeFact:
    return CodeFact(name=name, anchor=anchor, describe=describe,
                    check=check, weakens=weakens)


SPECS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        name="scheduler",
        title="EpolServer request path",
        anchor=".EpolServer._execute",
        build=build_scheduler_model,
        facts=(
            _fact("admit-guard", ".EpolServer.submit",
                  "submit() no longer enforces queue_capacity with "
                  "RejectedError: admission is unbounded",
                  "admit_guard",
                  lambda p, fn: extract.has_admission_guard(
                      fn, capacity_attr="queue_capacity",
                      reject_exc="RejectedError")),
            _fact("slice-reject", ".EpolServer._execute",
                  "the except SliceError handler no longer rejects the "
                  "request's future",
                  "slice_reject",
                  lambda p, fn: extract.handler_calls(
                      fn, "SliceError", "_reject")),
            _fact("fleet-reject", ".EpolServer._execute",
                  "the except FleetError handler no longer rejects "
                  "pending futures before stopping",
                  "fleet_reject",
                  lambda p, fn: extract.handler_calls(
                      fn, "FleetError", "_reject")),
        ),
        marks=(
            RequiredMark("scheduler", "admit", ".EpolServer.submit"),
            RequiredMark("scheduler", "dispatch", ".EpolServer._execute"),
            RequiredMark("scheduler", "stop", ".EpolServer.stop"),
        ),
        kinds={LOST_FUTURE: "RV402", INVARIANT: "RV403",
               DEADLOCK: "RV401"},
    ),
    ProtocolSpec(
        name="future",
        title="ServeFuture resolve-once handoff",
        anchor=".ServeFuture._resolve",
        build=build_future_model,
        facts=(
            _fact("resolve-sets-done", ".ServeFuture._resolve",
                  "_resolve() no longer sets the done event",
                  "done_set",
                  lambda p, fn: extract.calls_method(fn, "set")),
            _fact("reject-sets-done", ".ServeFuture._reject",
                  "_reject() no longer sets the done event",
                  "done_set",
                  lambda p, fn: extract.calls_method(fn, "set")),
        ),
        marks=(
            RequiredMark("future", "resolve", ".ServeFuture._resolve"),
            RequiredMark("future", "reject", ".ServeFuture._reject"),
        ),
        kinds={LOST_FUTURE: "RV402", DEADLOCK: "RV401"},
    ),
    ProtocolSpec(
        name="pool",
        title="PersistentWorkerPool lifecycle",
        anchor=".PersistentWorkerPool.next_result",
        build=build_pool_model,
        facts=(
            _fact("death-detect", ".PersistentWorkerPool.next_result",
                  "next_result() no longer polls worker exit codes and "
                  "raises PoolError on a dead rank",
                  "death_detect",
                  lambda p, fn: (extract.reads_attr(fn, "exitcode")
                                 and extract.raises(fn, "PoolError"))),
        ),
        marks=(
            RequiredMark("pool", "submit", ".PersistentWorkerPool.submit"),
            RequiredMark("pool", "next_result",
                         ".PersistentWorkerPool.next_result"),
            RequiredMark("pool", "respawn",
                         ".PersistentWorkerPool.respawn"),
            RequiredMark("pool", "shutdown",
                         ".PersistentWorkerPool.shutdown"),
        ),
        kinds={DEADLOCK: "RV401", LOST_FUTURE: "RV402"},
    ),
    ProtocolSpec(
        name="shm",
        title="sliced-scratch shm segment lifecycle",
        anchor=".ProcessFleet.run_sliced",
        build=build_shm_model,
        facts=(
            _fact("scratch-lifecycle", ".ProcessFleet.run_sliced",
                  "the scratch finally block no longer closes the "
                  "segment before unlinking it",
                  "scratch_lifecycle",
                  lambda p, fn:
                  extract.close_precedes_unlink_in_finally(fn)),
        ),
        marks=(
            RequiredMark("shm", "publish", ".SharedArrayBundle.create"),
            RequiredMark("shm", "close", ".SharedArrayBundle.close"),
            RequiredMark("shm", "unlink", ".SharedArrayBundle.unlink"),
        ),
        kinds={INVARIANT: "RV404", OBLIGATION: "RV404",
               DEADLOCK: "RV401"},
    ),
    ProtocolSpec(
        name="cluster",
        title="ClusterRouter routing/donation",
        anchor=".ClusterRouter._forward",
        build=build_router_model,
        facts=(
            _fact("reject-propagates", ".ClusterRouter._forward",
                  "_forward() no longer re-raises the shard's "
                  "RejectedError to the submitting client: a bounced "
                  "request is silently swallowed",
                  "swallow_reject",
                  lambda p, fn: extract.raises(fn, "RejectedError")),
            _fact("donation-bounds", ".ClusterRouter._donate",
                  "_donate() no longer cuts row ranges with "
                  "donation_bounds(): donated ranges can overlap and a "
                  "range may execute more than once",
                  "donate_once",
                  lambda p, fn: extract.calls_name(fn, "donation_bounds")),
        ),
        marks=(
            RequiredMark("cluster", "submit", ".ClusterRouter.submit"),
            RequiredMark("cluster", "forward", ".ClusterRouter._forward"),
            RequiredMark("cluster", "reject",
                         ".ClusterRouter._shard_rejected"),
            RequiredMark("cluster", "donate", ".ClusterRouter._donate"),
            RequiredMark("cluster", "exec", ".ClusterRouter._donate_phase"),
            RequiredMark("cluster", "reduce",
                         ".ClusterRouter._donate_finish"),
        ),
        kinds={LOST_FUTURE: "RV402", INVARIANT: "RV406",
               OBLIGATION: "RV406", DEADLOCK: "RV401"},
    ),
)


def alphabet(model: Model) -> frozenset[str]:
    """Observable event labels of a model (conformance alphabet)."""
    return frozenset(t.label for t in model.transitions if not t.internal)


def build_models(
    program: Program,
) -> dict[str, tuple[ProtocolSpec, Model, list[tuple[CodeFact, FunctionInfo]]]]:
    """Build every applicable model against ``program``.

    Returns ``{spec.name: (spec, model, failed_facts)}`` where ``model``
    was built with the weakenings implied by the failed facts -- callers
    both report the failures (RV405) and explore the weakened model for
    their consequences (RV401--RV404)."""
    out = {}
    for spec in SPECS:
        if extract.find_function(program, spec.anchor) is None:
            continue
        weak: set[str] = set()
        failed: list[tuple[CodeFact, FunctionInfo]] = []
        for fact in spec.facts:
            fn = extract.find_function(program, fact.anchor)
            if fn is None:
                continue
            if not fact.check(program, fn):
                weak.add(fact.weakens)
                failed.append((fact, fn))
        out[spec.name] = (spec, spec.build(frozenset(weak)), failed)
    return out
