"""AST extraction: code facts, annotations, and config defaults.

The protocol models in :mod:`.protocols` are hand-written labelled
transition systems, but they are *anchored* to the implementation by
**code facts**: small AST-checkable properties of the real source ("the
``except SliceError`` handler rejects the future", "``scratch.close()``
precedes ``scratch.unlink()`` in the finally block").  Each fact backs
one model transition's guarantee.  When a fact stops holding -- someone
edits the code -- the conformance check reports it (RV405) *and* the
model is rebuilt without that guarantee, so re-exploration produces the
concrete interleaving the regression makes possible (RV401--RV404 with
the counterexample trace).

Everything here works on :class:`~..verify.program.Program`'s AST model
and never imports the analysed code (same rule as the rest of
repro-verify).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from ..verify.program import FunctionInfo, Program

#: Last-component decorator names recognised as protocol-event marks.
_MARK_NAMES = ("protocol_event",)


def find_function(program: Program, suffix: str) -> FunctionInfo | None:
    """The unique function whose qualname ends with ``suffix``.

    Suffix matching (``.EpolServer.submit``) instead of exact qualnames
    keeps anchors working when a test copies a module into a tmp dir
    (its modname becomes the file stem).  Ambiguity resolves to the
    lexicographically first match -- deterministic, and unambiguous on
    the real tree.
    """
    dotted = suffix if suffix.startswith(".") else "." + suffix
    hits = sorted(q for q in program.functions
                  if q.endswith(dotted) or q == suffix.lstrip("."))
    return program.functions[hits[0]] if hits else None


def find_class_line(program: Program, suffix: str) -> tuple[str, int] | None:
    """(modname, lineno) of the class whose qualname ends with ``suffix``."""
    dotted = suffix if suffix.startswith(".") else "." + suffix
    hits = sorted(q for q in program.classes
                  if q.endswith(dotted) or q == suffix.lstrip("."))
    if not hits:
        return None
    info = program.classes[hits[0]]
    return info.modname, info.lineno


# ---------------------------------------------------------------------------
# Individual code-fact predicates
# ---------------------------------------------------------------------------

def _call_attr(node: ast.AST) -> str | None:
    """``x.y(...)`` -> ``"y"``; None otherwise."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _handler_matches(handler: ast.ExceptHandler, exc_name: str) -> bool:
    t = handler.type
    names: list[ast.expr] = []
    if t is None:
        return False
    names = list(t.elts) if isinstance(t, ast.Tuple) else [t]
    for n in names:
        last = None
        if isinstance(n, ast.Name):
            last = n.id
        elif isinstance(n, ast.Attribute):
            last = n.attr
        if last == exc_name:
            return True
    return False


def handler_calls(fn: FunctionInfo, exc_name: str, method: str) -> bool:
    """Does some ``except <exc_name>`` handler in ``fn`` call
    ``<recv>.<method>(...)``?  The fact behind "a slice failure rejects
    the future" and "a fleet failure rejects the batch"."""
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _handler_matches(node, exc_name):
            continue
        for inner in node.body:
            for sub in ast.walk(inner):
                if _call_attr(sub) == method:
                    return True
    return False


def close_precedes_unlink_in_finally(fn: FunctionInfo) -> bool:
    """In every ``finally`` block of ``fn`` that unlinks a segment, a
    ``close()`` call on the same receiver comes first.

    The PR-5 typestate pass checks ordering *along resolved call
    chains*; this is the belt-and-braces local fact the shm lifecycle
    model's ``published -> closed -> unlinked`` path is anchored to.
    """
    from ..verify.program import receiver_text

    saw_unlink = False
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        closed: set[str] = set()
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                attr = _call_attr(sub)
                if attr not in ("close", "unlink"):
                    continue
                assert isinstance(sub, ast.Call)
                assert isinstance(sub.func, ast.Attribute)
                recv = receiver_text(sub.func.value) or "<expr>"
                if attr == "close":
                    closed.add(recv)
                else:
                    saw_unlink = True
                    if recv not in closed:
                        return False
    return saw_unlink


def has_admission_guard(fn: FunctionInfo, *, capacity_attr: str,
                        reject_exc: str) -> bool:
    """Does ``fn`` compare against the capacity attribute and raise the
    rejection error?  The fact behind the queue-occupancy bound."""
    saw_cap = False
    saw_raise = False
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Attribute) and node.attr == capacity_attr:
            saw_cap = True
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name):
                name = exc.id
            elif isinstance(exc, ast.Attribute):
                name = exc.attr
            if name == reject_exc:
                saw_raise = True
    return saw_cap and saw_raise


def calls_method(fn: FunctionInfo, method: str) -> bool:
    """Does ``fn`` call ``<anything>.<method>(...)`` somewhere?"""
    return any(_call_attr(node) == method for node in ast.walk(fn.node))


def reads_attr(fn: FunctionInfo, attr: str) -> bool:
    """Does ``fn`` mention attribute ``attr`` at all?"""
    return any(isinstance(node, ast.Attribute) and node.attr == attr
               for node in ast.walk(fn.node))


def calls_name(fn: FunctionInfo, name: str) -> bool:
    """Does ``fn`` call plain ``name(...)`` (an ``ast.Name`` callee --
    module-level functions, unlike :func:`calls_method`'s attributes)?"""
    return any(isinstance(node, ast.Call)
               and isinstance(node.func, ast.Name)
               and node.func.id == name
               for node in ast.walk(fn.node))


def raises(fn: FunctionInfo, exc_name: str) -> bool:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = exc.id if isinstance(exc, ast.Name) else (
                exc.attr if isinstance(exc, ast.Attribute) else None)
            if name == exc_name:
                return True
    return False


# ---------------------------------------------------------------------------
# Decorator scan (static side of @protocol_event)
# ---------------------------------------------------------------------------

def _parse_mark(deco: ast.expr) -> tuple[str, str] | None:
    if not isinstance(deco, ast.Call):
        return None
    func = deco.func
    last = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    if last not in _MARK_NAMES:
        return None
    lits = [a.value for a in deco.args
            if isinstance(a, ast.Constant) and isinstance(a.value, str)]
    if len(lits) != 2:
        return ("<malformed>", "<malformed>")
    return (lits[0], lits[1])


def scan_protocol_marks(
    program: Program,
) -> dict[tuple[str, str], list[FunctionInfo]]:
    """Every ``@protocol_event(protocol, event)`` annotation in the
    analysed tree, keyed by ``(protocol, event)``."""
    out: dict[tuple[str, str], list[FunctionInfo]] = {}
    for qual in sorted(program.functions):
        fn = program.functions[qual]
        for deco in fn.node.decorator_list:
            mark = _parse_mark(deco)
            if mark is not None:
                out.setdefault(mark, []).append(fn)
    return out


# ---------------------------------------------------------------------------
# Config defaults (the "one source of truth" satellite)
# ---------------------------------------------------------------------------

def dataclass_defaults(program: Program, class_suffix: str) -> dict[str, object]:
    """Literal field defaults of a dataclass, read from the AST.

    Backs the model checker's liveness bounds: the scheduler model
    requires ``ServeConfig`` to *name* its timeout fields
    (``result_timeout_seconds``, ``stop_join_seconds``) so the model and
    the implementation share one source of truth, without importing the
    code."""
    dotted = class_suffix if class_suffix.startswith(".") else "." + class_suffix
    hits = sorted(q for q in program.classes
                  if q.endswith(dotted) or q == class_suffix.lstrip("."))
    if not hits:
        return {}
    cls = program.classes[hits[0]]
    out: dict[str, object] = {}
    for stmt in cls.node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name) or stmt.value is None:
            continue
        try:
            out[stmt.target.id] = ast.literal_eval(stmt.value)
        except ValueError:
            continue
    return out


# ---------------------------------------------------------------------------
# The fact record protocols.py registers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CodeFact:
    """One AST-checkable guarantee backing one model transition.

    ``weakens`` names the model feature switched off when the fact fails
    (the :mod:`.protocols` builders understand the names); the rebuilt
    model then exhibits the regression as a counterexample trace.
    """

    name: str
    anchor: str  # qualname suffix of the implementing function
    describe: str  # RV405 message when the fact fails
    check: Callable[[Program, FunctionInfo], bool]
    weakens: str  # weakening switch understood by the model builder
