"""Protocol-event annotations: the bridge between models and code.

``@protocol_event("scheduler", "admit")`` marks a method as the
implementation of one observable event of one protocol model.  The mark
serves two masters:

* **statically**, :mod:`repro.analysis_static.model.extract` scans for
  the decorator in the AST, so the conformance checker can assert that
  every event a model requires is implemented (and that no annotation
  names an event the model does not know) -- RV405;
* **at runtime**, tests wrap a scenario in :func:`record_events` and the
  decorated methods append ``"protocol:event"`` entries to a recorder,
  which :meth:`repro.analysis_static.model.machine.Model.accepts` then
  replays against the model -- the conformance test the tentpole asks
  for.

Outside an active recorder the wrapper is a tuple check and an attribute
read -- no locks, no allocation -- so annotating the hot serving path is
free in production.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Attribute stamped on annotated callables (read by the AST scan and
#: by :func:`protocol_marks`).
MARK_ATTR = "__protocol_event__"


class _Recorder:
    """Process-global event sink.

    Global rather than thread-local on purpose: the protocols under test
    span threads (a client submits, the scheduler thread dispatches and
    resolves), and the conformance trace must see both sides.
    ``list.append`` is atomic under the GIL, so concurrent emitters
    interleave without tearing.  Worker *processes* are invisible to the
    recorder -- their model transitions are ``internal`` for exactly
    that reason.
    """

    events: list[str] | None = None


_recorder = _Recorder()


def protocol_event(protocol: str, event: str) -> Callable[[F], F]:
    """Mark ``fn`` as emitting observable ``event`` of ``protocol``."""
    if not protocol or not event:
        raise ValueError("protocol_event requires non-empty names")

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            events = _recorder.events
            if events is not None:
                events.append(f"{protocol}:{event}")
            return fn(*args, **kwargs)

        setattr(wrapper, MARK_ATTR, (protocol, event))
        return wrapper  # type: ignore[return-value]

    return deco


def protocol_marks(obj: Any) -> tuple[str, str] | None:
    """The ``(protocol, event)`` mark of ``obj``, or None."""
    return getattr(obj, MARK_ATTR, None)


@contextmanager
def record_events() -> Iterator[list[str]]:
    """Collect ``"protocol:event"`` entries from annotated calls made
    anywhere in this process while the context is active."""
    events: list[str] = []
    prev = _recorder.events
    _recorder.events = events
    try:
        yield events
    finally:
        _recorder.events = prev


def events_for(events: Iterable[str], protocol: str) -> list[str]:
    """Filter a recorded stream down to one protocol's observable trace,
    rewritten to the ``"process:label"`` alphabet-free form the models
    use (``protocol:event`` -> ``event``)."""
    prefix = protocol + ":"
    return [e[len(prefix):] for e in events if e.startswith(prefix)]
