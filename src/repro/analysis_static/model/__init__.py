"""repro-model: protocol model checking + slice-disjointness proofs.

The static counterpart of the serving stack's concurrency claims (see
docs/ANALYSIS.md section 5):

* :mod:`.machine` -- a deterministic bounded explicit-state model
  checker (labelled transition systems, BFS over all interleavings,
  counterexample traces);
* :mod:`.annotations` -- the runtime ``@protocol_event`` mark linking
  implementation methods to model events, plus the trace recorder the
  conformance tests replay through :meth:`~.machine.Model.accepts`;
* :mod:`.extract` -- AST code facts anchoring model transitions to the
  real source (a failed fact weakens the model, whose re-exploration
  then shows the regression as an interleaving);
* :mod:`.protocols` -- the scheduler / future / pool / shm models;
* :mod:`.disjoint` -- the symbolic chain/span/axiom proof that sliced
  execution writes pairwise-disjoint, exactly-covering flat ranges;
* :mod:`.checks` -- the repro-verify pass emitting RV401--RV405.

Wired into ``python -m repro.verify`` (check families ``model`` and
``disjoint``); findings flow through the standard reporters, baseline
ratchet and ``allow=`` suppressions.
"""

from .annotations import (events_for, protocol_event, protocol_marks,
                          record_events)
from .checks import ModelChecker
from .disjoint import DisjointProver, ProofStep, prove
from .machine import (ExploreResult, Invariant, Model, Obligation,
                      Transition, Violation)
from .protocols import (SPECS, build_future_model, build_models,
                        build_pool_model, build_scheduler_model,
                        build_shm_model)

__all__ = [
    "DisjointProver",
    "ExploreResult",
    "Invariant",
    "Model",
    "ModelChecker",
    "Obligation",
    "ProofStep",
    "SPECS",
    "Transition",
    "Violation",
    "build_future_model",
    "build_models",
    "build_pool_model",
    "build_scheduler_model",
    "build_shm_model",
    "events_for",
    "protocol_event",
    "protocol_marks",
    "prove",
    "record_events",
]
