"""Deterministic bounded explicit-state model checking.

The serving stack composes a scheduler thread, worker processes, futures
and shared-memory segments into a protocol whose safety today is argued
in docstrings and exercised by tests.  This module gives the repo a tiny
model checker so those arguments become *checked* models:

* a :class:`Model` is a set of named processes, each a labelled
  transition system over symbolic locations, plus a dictionary of shared
  variables (hashable values only);
* :meth:`Model.explore` enumerates **every** interleaving of enabled
  transitions up to a depth bound with a BFS over canonical state
  tuples, checking invariants at each state and terminal obligations at
  each quiescent state;
* every violation carries the full event trace that produced it, so a
  finding renders as a counterexample interleaving, not a shrug.

Determinism is load-bearing (REP003/REP007 apply to the checker too):
states are canonical sorted tuples, transitions fire in declaration
order, and the exploration never consults a clock or an RNG -- two runs
over the same model produce byte-identical violation lists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

#: Mutable view of a state handed to guards/updates/invariants: process
#: locations plus shared variables, merged into one dict.  Values must
#: stay hashable (tuples/frozensets, not lists/sets) -- canonicalisation
#: sorts and hashes them.
State = dict[str, Any]

# Violation kinds (mapped onto RV4xx check ids by the verify wiring).
DEADLOCK = "deadlock"
STUCK_PROCESS = "stuck-process"
INVARIANT = "invariant"
OBLIGATION = "obligation"
TRUNCATED = "truncated"


@dataclass(frozen=True)
class Transition:
    """One guarded step of one process.

    ``guard`` reads the state (process locations live under the process
    name, shared variables under their own keys) and returns whether the
    step is enabled; ``update`` mutates a *copy* of the shared variables
    in place.  ``internal`` transitions do not appear in observable
    traces (used by :meth:`Model.accepts` for conformance checking).
    """

    process: str
    label: str
    source: str
    target: str
    guard: Callable[[State], bool] | None = None
    update: Callable[[State], None] | None = None
    internal: bool = False
    #: Disambiguates same-label transitions in counterexample traces
    #: (the observable alphabet is ``label`` alone).
    detail: str = ""

    def enabled(self, state: State) -> bool:
        if state[self.process] != self.source:
            return False
        return True if self.guard is None else bool(self.guard(state))

    def event(self) -> str:
        base = f"{self.process}:{self.label}"
        return f"{base}({self.detail})" if self.detail else base


@dataclass(frozen=True)
class Invariant:
    """A predicate that must hold in every reachable state."""

    name: str
    check: Callable[[State], bool]
    describe: str = ""


@dataclass(frozen=True)
class Obligation:
    """A predicate that must hold in every *terminal* reachable state
    (a state where no transition is enabled and every process is in a
    final location)."""

    name: str
    check: Callable[[State], bool]
    describe: str = ""


@dataclass(frozen=True)
class Violation:
    """One property failure with its counterexample interleaving."""

    kind: str
    name: str
    trace: tuple[str, ...]
    state: tuple[tuple[str, Hashable], ...]

    def render_trace(self) -> str:
        if not self.trace:
            return "<initial state>"
        return " -> ".join(self.trace)


@dataclass
class ExploreResult:
    violations: list[Violation] = field(default_factory=list)
    states_explored: int = 0
    truncated: bool = False


def _canon(state: State) -> tuple[tuple[str, Hashable], ...]:
    return tuple(sorted(state.items()))


class Model:
    """A named protocol model: processes + shared variables + properties."""

    def __init__(self, name: str, *,
                 processes: Mapping[str, str],
                 final: Mapping[str, Iterable[str]],
                 shared: Mapping[str, Hashable],
                 transitions: Iterable[Transition],
                 invariants: Iterable[Invariant] = (),
                 obligations: Iterable[Obligation] = (),
                 stuck_kinds: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.processes = dict(processes)
        self.final = {p: frozenset(locs) for p, locs in final.items()}
        self.shared = dict(shared)
        self.transitions = list(transitions)
        self.invariants = list(invariants)
        self.obligations = list(obligations)
        #: ``{process: violation-kind}`` -- when the model wedges with
        #: this process outside a final location, report that kind
        #: instead of the generic deadlock (e.g. a client stuck in
        #: ``waiting`` is a *lost future*, not a mutual deadlock).
        self.stuck_kinds = dict(stuck_kinds or {})
        overlap = set(self.processes) & set(self.shared)
        if overlap:
            raise ValueError(f"process/shared name clash: {sorted(overlap)}")
        for t in self.transitions:
            if t.process not in self.processes:
                raise ValueError(f"transition {t.label!r} names unknown "
                                 f"process {t.process!r}")

    # -- exploration -----------------------------------------------------
    def initial_state(self) -> State:
        state: State = dict(self.processes)
        state.update(self.shared)
        return state

    def explore(self, max_depth: int = 40,
                max_states: int = 200_000) -> ExploreResult:
        """BFS over every interleaving up to ``max_depth`` steps.

        Returns all distinct violations (deduplicated by ``(kind, name,
        state)`` keeping the shortest trace -- BFS order guarantees the
        first trace seen *is* shortest).
        """
        result = ExploreResult()
        root = self.initial_state()
        seen: set[tuple[tuple[str, Hashable], ...]] = {_canon(root)}
        queue: deque[tuple[State, tuple[str, ...]]] = deque([(root, ())])
        reported: set[tuple[str, str, tuple[tuple[str, Hashable], ...]]] = set()

        def report(kind: str, name: str, trace: tuple[str, ...],
                   state: State) -> None:
            key = (kind, name, _canon(state))
            if key in reported:
                return
            reported.add(key)
            result.violations.append(
                Violation(kind=kind, name=name, trace=trace,
                          state=_canon(state)))

        while queue:
            state, trace = queue.popleft()
            result.states_explored += 1
            for inv in self.invariants:
                if not inv.check(state):
                    report(INVARIANT, inv.name, trace, state)
            enabled = [t for t in self.transitions if t.enabled(state)]
            if not enabled:
                self._check_terminal(state, trace, report)
                continue
            if len(trace) >= max_depth:
                result.truncated = True
                continue
            for t in enabled:
                nxt = dict(state)
                nxt[t.process] = t.target
                if t.update is not None:
                    t.update(nxt)
                key = _canon(nxt)
                if key in seen:
                    continue
                seen.add(key)
                if len(seen) > max_states:
                    result.truncated = True
                    return result
                queue.append((nxt, trace + (t.event(),)))
        return result

    def _check_terminal(self, state: State, trace: tuple[str, ...],
                        report: Callable[..., None]) -> None:
        stuck = [p for p in self.processes
                 if state[p] not in self.final.get(p, frozenset())]
        if stuck:
            # Prefer the most specific classification: a process with a
            # registered stuck-kind names the property that failed.
            for p in sorted(stuck):
                kind = self.stuck_kinds.get(p, DEADLOCK)
                report(kind, f"{p}@{state[p]}", trace, state)
            return
        for ob in self.obligations:
            if not ob.check(state):
                report(OBLIGATION, ob.name, trace, state)

    # -- trace conformance ----------------------------------------------
    def accepts(self, events: Iterable[str]) -> bool:
        """Can the model produce ``events`` as its observable trace?

        Events are bare transition *labels*: a recorded implementation
        event matches any process's transition with that label (which
        symbolic client played the role is the NFA's nondeterminism to
        resolve).  Internal transitions are epsilon moves: the closure
        runs them silently between observable events.  Used by
        conformance tests to assert that a recorded implementation trace
        is a behaviour of the model.
        """
        frontier = {_canon(self.initial_state())}
        states = {next(iter(frontier)): self.initial_state()}

        def closure(frontier: set, states: dict) -> tuple[set, dict]:
            work = deque(frontier)
            while work:
                key = work.popleft()
                state = states[key]
                for t in self.transitions:
                    if not t.internal or not t.enabled(state):
                        continue
                    nxt = dict(state)
                    nxt[t.process] = t.target
                    if t.update is not None:
                        t.update(nxt)
                    nkey = _canon(nxt)
                    if nkey not in frontier:
                        frontier.add(nkey)
                        states[nkey] = nxt
                        work.append(nkey)
            return frontier, states

        frontier, states = closure(frontier, states)
        for event in events:
            nxt_frontier: set = set()
            nxt_states: dict = {}
            for key in frontier:
                state = states[key]
                for t in self.transitions:
                    if t.internal or t.label != event:
                        continue
                    if not t.enabled(state):
                        continue
                    nxt = dict(state)
                    nxt[t.process] = t.target
                    if t.update is not None:
                        t.update(nxt)
                    nkey = _canon(nxt)
                    if nkey not in nxt_frontier:
                        nxt_frontier.add(nkey)
                        nxt_states[nkey] = nxt
            if not nxt_frontier:
                return False
            frontier, states = closure(nxt_frontier, nxt_states)
        return True
