"""Symbolic slice-disjointness proofs (RV501--RV504).

The sliced serving path (PR 6) is race-free because three facts compose:

1. **row chain** -- ``segment_by_weight`` (and its zero-total fallback
   ``segment_range``) emits bounds ``(s_0, e_0), (s_1, e_1), ...`` with
   ``s_0 = 0``, ``s_{k+1} = e_k`` and a final cut forced to ``n``: a
   *chained fold* whose segments are pairwise disjoint and exactly cover
   ``[0, n)`` for arbitrary weights and part counts.  ``slice_bounds``
   only drops *empty* segments, which preserves both properties.
2. **span image** -- each worker writes the flat CSR span
   ``[A[lo], A[hi])`` of its row range, where ``A`` is one shared offset
   array (``far_start`` / ``near_point_start``) indexed at exactly the
   chain endpoints.  The image of a chain through one fixed array is a
   chain, so the write spans are pairwise disjoint and exactly cover
   ``[A[0], A[n])``.
3. **monotone axiom** -- step 2 needs ``A`` nondecreasing with
   ``A[0] == 0``; that is precisely what
   ``InteractionPlan.validate()`` rejects at runtime, so the axiom is a
   checked precondition, not a hope.
4. **donation cover** (RV504) -- the cluster donation path
   (``cluster/donate.py::donation_bounds``) cuts plan rows along
   coarsened SFC keys.  It is a chain for the same reason ``slice_bounds``
   is: ``segment_by_key_range`` re-folds a verified
   ``segment_by_weight`` chain with forward key snapping (``end =
   max(snap, start)`` keeps ends monotone, the final cut is re-forced to
   ``n``), and ``donation_bounds`` only guards ``nparts`` and filters
   empty ranges (``hi > lo``).  So donated cuts are pairwise disjoint
   and exactly cover ``[0, nrows)`` -- the static twin of the runtime
   RV406 model invariant ("every plan row donated exactly once"), which
   the protocol model checker exercises dynamically.

This module verifies each fact *structurally* on the AST -- the loop
really appends ``(start, end)`` and rebinds ``start = end``, the span
endpoints really are ``int(A[lo])``/``int(A[hi])`` with no arithmetic in
between, the validator really checks ``np.diff(start) < 0`` -- and emits
an RV5xx finding naming the broken step otherwise.  An off-by-one
mutation (``A[hi] + 1``, ``cuts[-1] = n - 1``) breaks the structure and
is reported with the failed proof step.  The runtime race detector
(``REPRO_CHECKS=1``) cross-validates the same claim dynamically on real
slice executions; tests assert both agree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..verify.program import FunctionInfo, Program
from ..verify.report import CheckContext
from . import extract

#: Offset arrays whose spans the sliced Born kernels write.
SPAN_ARRAYS = ("far_start", "near_point_start")


@dataclass(frozen=True)
class ProofStep:
    """One verified (or refuted) lemma of the disjointness proof."""

    check: str  # RV id this step reports under when it fails
    name: str
    anchor: str  # qualname suffix of the verified function
    ok: bool
    detail: str


# ---------------------------------------------------------------------------
# Lemma 1: the row chain
# ---------------------------------------------------------------------------

def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _chain_loop(fn: FunctionInfo) -> tuple[bool, str]:
    """Verify the fold shape: ``start = 0`` before a loop that appends
    ``(start, X)`` and immediately rebinds ``start`` to ``X`` (or
    ``start += size`` after appending ``(start, start + size)``)."""
    init_zero = any(
        isinstance(node, ast.Assign)
        and any(_is_name(t, "start") for t in node.targets)
        and isinstance(node.value, ast.Constant) and node.value.value == 0
        for node in ast.walk(fn.node))
    if not init_zero:
        return False, "no `start = 0` chain origin"
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.For):
            continue
        append_second: str | None = None  # expr text of the appended end
        appended_plus: str | None = None  # `start + <var>` increment form
        rebound = False
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "append"
                        and len(sub.args) == 1
                        and isinstance(sub.args[0], ast.Tuple)
                        and len(sub.args[0].elts) == 2
                        and _is_name(sub.args[0].elts[0], "start")):
                    end = sub.args[0].elts[1]
                    if isinstance(end, ast.Name):
                        append_second = end.id
                    elif (isinstance(end, ast.BinOp)
                          and isinstance(end.op, ast.Add)
                          and _is_name(end.left, "start")
                          and isinstance(end.right, ast.Name)):
                        appended_plus = end.right.id
            if (isinstance(stmt, ast.Assign)
                    and any(_is_name(t, "start") for t in stmt.targets)
                    and append_second is not None
                    and _is_name(stmt.value, append_second)):
                rebound = True
            if (isinstance(stmt, ast.AugAssign)
                    and isinstance(stmt.op, ast.Add)
                    and _is_name(stmt.target, "start")
                    and appended_plus is not None
                    and _is_name(stmt.value, appended_plus)):
                rebound = True
        if rebound:
            return True, ""
    return False, "no loop appending (start, end) then rebinding start = end"


def verify_segment_range(fn: FunctionInfo) -> tuple[bool, str]:
    """Chain + coverage for the equal-split fallback: sizes come from
    ``divmod(n, nparts)`` (whose identity ``base * nparts + extra == n``
    gives exact coverage) and the append/rebind fold gives the chain."""
    has_divmod = any(
        isinstance(node, ast.Call) and _is_name(node.func, "divmod")
        for node in ast.walk(fn.node))
    if not has_divmod:
        return False, "sizes are not the divmod(n, nparts) identity"
    return _chain_loop(fn)


def verify_segment_by_weight(fn: FunctionInfo) -> tuple[bool, str]:
    """Chain + coverage for the weighted split: cuts are clamped to
    ``n``, the last cut is forced to ``n`` (coverage), the fold appends
    ``(start, end)`` with ``end = max(int(c), start)`` and rebinds
    ``start = end`` (chain + monotone ends), and the zero-weight path
    delegates to the separately-verified ``segment_range``."""
    forced_last = False
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        for t in node.targets:
            if (isinstance(t, ast.Subscript)
                    and isinstance(t.slice, ast.UnaryOp)
                    and isinstance(t.slice.op, ast.USub)
                    and isinstance(t.slice.operand, ast.Constant)
                    and t.slice.operand.value == 1
                    and _is_name(node.value, "n")):
                forced_last = True
    if not forced_last:
        return False, "last cut is not forced to n (`cuts[-1] = n`): " \
            "the final segment need not end at n"
    clamped = any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "minimum"
        for node in ast.walk(fn.node))
    if not clamped:
        return False, "cuts are not clamped to n (`np.minimum(cuts, n)`)"
    fallback = any(
        isinstance(node, ast.Call) and (
            _is_name(node.func, "segment_range")
            or (isinstance(node.func, ast.Attribute)
                and node.func.attr == "segment_range"))
        for node in ast.walk(fn.node))
    if not fallback:
        return False, "zero-total path does not delegate to segment_range"
    monotone_end = any(
        isinstance(node, ast.Assign)
        and any(_is_name(t, "end") for t in node.targets)
        and isinstance(node.value, ast.Call)
        and _is_name(node.value.func, "max")
        and any(_is_name(a, "start") for a in node.value.args)
        for node in ast.walk(fn.node))
    if not monotone_end:
        return False, "segment end is not clamped below by start " \
            "(`end = max(int(c), start)`)"
    return _chain_loop(fn)


def verify_slice_bounds(fn: FunctionInfo) -> tuple[bool, str]:
    """``slice_bounds`` may only *filter empty* segments out of the
    verified chain -- a ``hi > lo`` comprehension guard over a
    ``segment_by_weight`` result.  Anything else (reordering, trimming,
    widening) would break disjointness or coverage."""
    delegates = any(
        isinstance(node, ast.Call) and (
            _is_name(node.func, "segment_by_weight")
            or (isinstance(node.func, ast.Attribute)
                and node.func.attr == "segment_by_weight"))
        for node in ast.walk(fn.node))
    if not delegates:
        return False, "bounds do not come from segment_by_weight"
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.ListComp):
            continue
        for gen in node.generators:
            for cond in gen.ifs:
                if (isinstance(cond, ast.Compare)
                        and len(cond.ops) == 1
                        and isinstance(cond.ops[0], ast.Gt)
                        and isinstance(cond.left, ast.Name)
                        and isinstance(cond.comparators[0], ast.Name)):
                    return True, ""
        # A comprehension with no guard passes the chain through intact.
        if not any(gen.ifs for gen in node.generators):
            return True, ""
    return False, "no empty-segment filter (`if hi > lo`) or identity " \
        "comprehension over the chain"


# ---------------------------------------------------------------------------
# Lemma 2: span image through the shared offset arrays
# ---------------------------------------------------------------------------

def _int_subscript(value: ast.expr) -> ast.Subscript | None:
    """``int(A[i])`` or ``A[i]`` -> the subscript; None for anything
    else (arithmetic around the offset read breaks the chain image)."""
    if (isinstance(value, ast.Call) and _is_name(value.func, "int")
            and len(value.args) == 1 and not value.keywords):
        value = value.args[0]
    return value if isinstance(value, ast.Subscript) else None


def verify_span_pairing(fn: FunctionInfo) -> tuple[bool, str]:
    """Every flat slice ``view[v0:v1]`` in ``fn`` must have its bounds
    assigned as ``v0 = int(A[lo])`` / ``v1 = int(A[hi])`` from the same
    offset array ``A`` in :data:`SPAN_ARRAYS`, with one shared ``(lo,
    hi)`` index pair across all arrays -- the chain-image shape.  Any
    arithmetic on an endpoint or a mixed index pair refutes the proof.
    """
    # var -> (array attr, index name), from single- and tuple-assigns.
    spans: dict[str, tuple[str, str]] = {}

    def record(target: ast.expr, value: ast.expr) -> bool:
        """True if `target = value` binds a span endpoint; False when the
        value touches an offset array in any non-canonical way."""
        sub = _int_subscript(value)
        if sub is None:
            # Reject arithmetic like `int(A[hi]) + 1` on span variables.
            touched = any(
                isinstance(n, ast.Attribute) and n.attr in SPAN_ARRAYS
                for n in ast.walk(value))
            return not touched
        if not (isinstance(sub.value, ast.Attribute)
                and sub.value.attr in SPAN_ARRAYS):
            return True  # subscript of something else; not our lemma
        if not isinstance(sub.slice, ast.Name):
            return False  # offset array indexed by an expression
        if isinstance(target, ast.Name):
            spans[target.id] = (sub.value.attr, sub.slice.id)
            return True
        return False

    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        tgt, val = node.targets[0], node.value
        pairs: list[tuple[ast.expr, ast.expr]]
        if (isinstance(tgt, ast.Tuple) and isinstance(val, ast.Tuple)
                and len(tgt.elts) == len(val.elts)):
            pairs = list(zip(tgt.elts, val.elts))
        else:
            pairs = [(tgt, val)]
        for t, v in pairs:
            if not record(t, v):
                return False, (
                    "span endpoint is not a plain `int(A[row])` read of "
                    f"an offset array at line {node.lineno}")

    # Index pair per array: first index is the range lower bound, second
    # the upper; every array must agree on the same (lo, hi) names.
    by_array: dict[str, list[str]] = {}
    for var in spans:
        arr, idx = spans[var]
        by_array.setdefault(arr, []).append(idx)
    if not by_array:
        return False, "no offset-array span endpoints found"
    index_pairs = {tuple(v) for v in by_array.values()}
    if len(index_pairs) != 1 or len(next(iter(index_pairs))) != 2:
        return False, (f"offset arrays use mismatched row-index pairs: "
                       f"{sorted(by_array.items())}")
    lo_name, hi_name = next(iter(index_pairs))
    if lo_name == hi_name:
        return False, "span endpoints index the same row bound"

    # Every slice built from recorded endpoints must pair (lo-var,
    # hi-var) of one array, in that order.
    used = False
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Slice)):
            continue
        lower, upper = node.slice.lower, node.slice.upper
        if not (isinstance(lower, ast.Name) and isinstance(upper, ast.Name)):
            continue
        in_spans = [n.id in spans for n in (lower, upper)]
        if not any(in_spans):
            continue
        if not all(in_spans):
            return False, (f"slice [{lower.id}:{upper.id}] mixes a span "
                           "endpoint with a foreign bound")
        arr0, idx0 = spans[lower.id]
        arr1, idx1 = spans[upper.id]
        if arr0 != arr1 or idx0 != lo_name or idx1 != hi_name:
            return False, (f"slice [{lower.id}:{upper.id}] does not pair "
                           f"A[{lo_name}]:A[{hi_name}] of one array "
                           f"(got {arr0}[{idx0}] : {arr1}[{idx1}])")
        used = True
    if not used:
        return False, "span endpoints are computed but never slice a view"
    return True, ""


# ---------------------------------------------------------------------------
# Lemma 4 (RV504): the donation cover
# ---------------------------------------------------------------------------

def _calls(fn: FunctionInfo, callee: str) -> list[ast.Call]:
    """All calls to ``callee`` by last name (``f(...)`` or ``m.f(...)``)."""
    return [node for node in ast.walk(fn.node)
            if isinstance(node, ast.Call)
            and (_is_name(node.func, callee)
                 or (isinstance(node.func, ast.Attribute)
                     and node.func.attr == callee))]


def _empty_filter_comp(fn: FunctionInfo) -> bool:
    """A comprehension whose only guard is a ``hi > lo`` name compare --
    the shape that drops empty segments without touching the chain."""
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.ListComp):
            continue
        for gen in node.generators:
            for cond in gen.ifs:
                if (isinstance(cond, ast.Compare)
                        and len(cond.ops) == 1
                        and isinstance(cond.ops[0], ast.Gt)
                        and isinstance(cond.left, ast.Name)
                        and isinstance(cond.comparators[0], ast.Name)):
                    return True
    return False


def verify_segment_by_key_range(fn: FunctionInfo) -> tuple[bool, str]:
    """The key-interval cutter must preserve the chain it re-folds: a
    non-decreasing key precondition, forward snapping via
    ``np.searchsorted(..., side="right")``, ends clamped below by
    ``start`` (monotone under snapping), the final cut re-forced to
    ``n`` (coverage), on top of a ``segment_by_weight`` delegation and
    the append/rebind fold."""
    if not _calls(fn, "segment_by_weight"):
        return False, "raw cuts do not come from segment_by_weight"
    sorted_guard = any(
        isinstance(node, ast.Compare) and len(node.ops) == 1
        and isinstance(node.ops[0], ast.Lt)
        and isinstance(node.left, ast.Subscript)
        and isinstance(node.comparators[0], ast.Subscript)
        for node in ast.walk(fn.node))
    if not sorted_guard:
        return False, "keys are not checked non-decreasing " \
            "(`k[1:] < k[:-1]` guard missing): snapping needs sorted keys"
    snap_forward = any(
        any(kw.arg == "side" and isinstance(kw.value, ast.Constant)
            and kw.value.value == "right" for kw in call.keywords)
        for call in _calls(fn, "searchsorted"))
    if not snap_forward:
        return False, "cuts are not snapped forward to the next key " \
            "change (`np.searchsorted(..., side=\"right\")` missing)"
    monotone_end = any(
        isinstance(node, ast.Assign)
        and any(_is_name(t, "end") for t in node.targets)
        and isinstance(node.value, ast.Call)
        and _is_name(node.value.func, "max")
        and any(_is_name(a, "start") for a in node.value.args)
        for node in ast.walk(fn.node))
    if not monotone_end:
        return False, "snapped end is not clamped below by start " \
            "(`end = max(end, start)`): backward snaps would overlap"
    forced_last = any(
        isinstance(node, ast.Assign)
        and any(isinstance(t, ast.Subscript)
                and isinstance(t.slice, ast.UnaryOp)
                and isinstance(t.slice.op, ast.USub)
                and isinstance(t.slice.operand, ast.Constant)
                and t.slice.operand.value == 1
                for t in node.targets)
        and isinstance(node.value, ast.Tuple)
        and len(node.value.elts) == 2
        and _is_name(node.value.elts[1], "n")
        for node in ast.walk(fn.node))
    if not forced_last:
        return False, "final cut is not re-forced to n " \
            "(`bounds[-1] = (bounds[-1][0], n)`): snapping the last " \
            "interior cut past n-1 would truncate coverage"
    return _chain_loop(fn)


def verify_donation_bounds(fn: FunctionInfo) -> tuple[bool, str]:
    """``donation_bounds`` may only *select a verified chain* and filter
    empty ranges: a ``nparts`` guard, the keys-None fallback to
    ``segment_by_weight``, the keyed path through
    ``segment_by_key_range`` over ``coarsen_keys`` blocks, and a
    ``hi > lo`` comprehension.  Any arithmetic on the bounds themselves
    would break the exact cover the donees rely on."""
    guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and len(node.test.ops) == 1
        and isinstance(node.test.ops[0], ast.Lt)
        and _is_name(node.test.left, "nparts")
        and any(isinstance(s, ast.Raise) for s in node.body)
        for node in ast.walk(fn.node))
    if not guard:
        return False, "no `if nparts < 1: raise` guard: zero parts " \
            "would yield an empty (non-covering) cut list"
    if not _calls(fn, "segment_by_weight"):
        return False, "keys-None fallback does not delegate to " \
            "segment_by_weight"
    keyed = [call for call in _calls(fn, "segment_by_key_range")
             if call.args and isinstance(call.args[0], ast.Call)
             and (_is_name(call.args[0].func, "coarsen_keys")
                  or (isinstance(call.args[0].func, ast.Attribute)
                      and call.args[0].func.attr == "coarsen_keys"))]
    if not keyed:
        return False, "keyed path does not cut coarsen_keys(...) blocks " \
            "via segment_by_key_range"
    if not _empty_filter_comp(fn):
        return False, "no empty-range filter (`if hi > lo`) over the " \
            "chain; any other transform could break disjointness"
    return True, ""


# ---------------------------------------------------------------------------
# Lemma 3: the monotone-CSR axiom
# ---------------------------------------------------------------------------

def verify_monotone_axiom(fn: FunctionInfo) -> tuple[bool, str]:
    """``InteractionPlan.validate`` must reject non-monotone offset
    arrays (``np.diff(start) < 0``) anchored at zero (``start[0] != 0``)
    -- the runtime-checked precondition lemma 2 stands on."""
    saw_diff = False
    saw_zero = False
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left, op, right = node.left, node.ops[0], node.comparators[0]
            if (isinstance(op, ast.Lt)
                    and isinstance(left, ast.Call)
                    and isinstance(left.func, ast.Attribute)
                    and left.func.attr == "diff"):
                saw_diff = True
            if (isinstance(op, (ast.NotEq, ast.Eq))
                    and isinstance(left, ast.Subscript)
                    and isinstance(left.slice, ast.Constant)
                    and left.slice.value == 0
                    and isinstance(right, ast.Constant)
                    and right.value == 0):
                saw_zero = True
    if not saw_diff:
        return False, "validate() no longer rejects decreasing offsets " \
            "(np.diff(start) < 0 check missing)"
    if not saw_zero:
        return False, "validate() no longer anchors offsets at zero " \
            "(start[0] != 0 check missing)"
    return True, ""


# ---------------------------------------------------------------------------
# The prover
# ---------------------------------------------------------------------------

#: (RV id, lemma name, anchor suffix, verifier)
_LEMMAS = (
    ("RV501", "chain:segment_range", ".segment_range",
     verify_segment_range),
    ("RV501", "chain:segment_by_weight", ".segment_by_weight",
     verify_segment_by_weight),
    ("RV501", "chain:slice_bounds", ".slice_bounds", verify_slice_bounds),
    ("RV502", "span:worker-born-slice", "._run_born_slice",
     verify_span_pairing),
    ("RV502", "span:inline-run-sliced", ".InlineFleet.run_sliced",
     verify_span_pairing),
    ("RV503", "axiom:monotone-csr", ".InteractionPlan.validate",
     verify_monotone_axiom),
    ("RV504", "donation:key-range-chain", ".segment_by_key_range",
     verify_segment_by_key_range),
    ("RV504", "donation:bounds-filter", ".donation_bounds",
     verify_donation_bounds),
)


def prove(program: Program) -> list[ProofStep]:
    """Run every applicable lemma; absent anchors are skipped (fixture
    trees), present anchors yield a pass/fail :class:`ProofStep`."""
    steps: list[ProofStep] = []
    for check, name, anchor, verifier in _LEMMAS:
        fn = extract.find_function(program, anchor)
        if fn is None:
            continue
        ok, detail = verifier(fn)
        steps.append(ProofStep(check=check, name=name, anchor=anchor,
                               ok=ok, detail=detail))
    return steps


class DisjointProver:
    """repro-verify checker facade over :func:`prove` (RV501--RV504)."""

    def __init__(self, program: Program) -> None:
        self.program = program

    def run_checks(self, ctx: CheckContext) -> None:
        for step in prove(self.program):
            if step.ok:
                continue
            fn = extract.find_function(self.program, step.anchor)
            assert fn is not None  # prove() only emits for present anchors
            mod = self.program.modules[fn.modname]
            ctx.emit(step.check, str(mod.path), fn.lineno, 1, fn.qualname,
                     f"slice-disjointness proof step {step.name!r} "
                     f"refuted: {step.detail}")
