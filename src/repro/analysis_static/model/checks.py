"""repro-verify integration for the protocol models (RV401--RV406).

:class:`ModelChecker` runs three passes over the loaded program:

1. **conformance** (RV405) -- every code fact backing a model transition
   must hold on the implementation, every protocol component the models
   require must carry its ``@protocol_event`` annotation, every
   annotation must name an event the model knows, and the scheduler's
   liveness bounds must be named ``ServeConfig`` fields (one source of
   truth, see docs/ANALYSIS.md section 5);
2. **weakening** -- each failed fact removes the guarantee it backed
   from the model (see :func:`~.protocols.build_models`);
3. **exploration** -- every applicable model is explored exhaustively;
   violations render as counterexample interleavings under RV401
   (deadlock), RV402 (lost future), RV403 (admission bound), RV404
   (shm lifecycle) or RV406 (router routing/donation).

Models whose anchor function is absent from the program are skipped
silently, so fixture trees and single-file runs only ever see the
protocols they contain.
"""

from __future__ import annotations

from ..verify.program import Program
from ..verify.report import CheckContext
from . import extract
from .protocols import SPECS, ProtocolSpec, alphabet, build_models

#: Depth bound for exploration.  Every model here quiesces well inside
#: this bound; raising it only matters for future, larger models.
MAX_DEPTH = 48

#: ServeConfig fields the scheduler model reads as its liveness bounds.
LIVENESS_FIELDS = ("result_timeout_seconds", "stop_join_seconds")


class ModelChecker:
    """Protocol model checking as a repro-verify pass."""

    def __init__(self, program: Program, *, max_depth: int = MAX_DEPTH) -> None:
        self.program = program
        self.max_depth = max_depth

    # -- helpers ---------------------------------------------------------
    def _emit_at(self, ctx: CheckContext, check: str,
                 fn_suffix: str, message: str) -> None:
        fn = extract.find_function(self.program, fn_suffix)
        if fn is None:
            return
        mod = self.program.modules[fn.modname]
        ctx.emit(check, str(mod.path), fn.lineno, 1, fn.qualname, message)

    # -- the pass --------------------------------------------------------
    def run_checks(self, ctx: CheckContext) -> None:
        built = build_models(self.program)
        marks = extract.scan_protocol_marks(self.program)
        self._check_annotations(ctx, built, marks)
        self._check_liveness_bounds(ctx, built)
        for name in sorted(built):
            spec, model, failed = built[name]
            for fact, fn in failed:
                mod = self.program.modules[fn.modname]
                ctx.emit("RV405", str(mod.path), fn.lineno, 1, fn.qualname,
                         f"protocol {spec.name!r} conformance: "
                         f"{fact.describe}")
            result = model.explore(max_depth=self.max_depth)
            for v in result.violations:
                self._emit_at(
                    ctx, spec.classify(v.kind), spec.anchor,
                    f"{spec.title}: {v.kind} at '{v.name}' -- "
                    f"counterexample interleaving: {v.render_trace()}")

    def _check_annotations(
        self, ctx: CheckContext,
        built: dict[str, tuple[ProtocolSpec, object, list]],
        marks: dict[tuple[str, str], list],
    ) -> None:
        known = {spec.name for spec in SPECS}
        # Marks pointing at nothing the models know.
        for (proto, event), fns in sorted(marks.items()):
            for fn in fns:
                mod = self.program.modules[fn.modname]
                if proto == "<malformed>":
                    ctx.emit("RV405", str(mod.path), fn.lineno, 1,
                             fn.qualname,
                             "@protocol_event needs exactly two string "
                             "literals (protocol, event)")
                elif proto in built:
                    spec, model, _ = built[proto]
                    if event not in alphabet(model):  # type: ignore[arg-type]
                        ctx.emit(
                            "RV405", str(mod.path), fn.lineno, 1,
                            fn.qualname,
                            f"@protocol_event names unknown event "
                            f"{event!r} of protocol {proto!r} "
                            f"(model alphabet: "
                            f"{sorted(alphabet(model))})")  # type: ignore[arg-type]
                elif proto not in known:
                    ctx.emit("RV405", str(mod.path), fn.lineno, 1,
                             fn.qualname,
                             f"@protocol_event names unknown protocol "
                             f"{proto!r} (known: {sorted(known)})")
        # Required annotations that are missing.
        for name in sorted(built):
            spec, _, _ = built[name]
            for rm in spec.marks:
                fn = extract.find_function(self.program, rm.anchor)
                if fn is None:
                    continue
                carried = any(f.qualname == fn.qualname
                              for f in marks.get((rm.protocol, rm.event), []))
                if not carried:
                    mod = self.program.modules[fn.modname]
                    ctx.emit(
                        "RV405", str(mod.path), fn.lineno, 1, fn.qualname,
                        f"protocol component lost its annotation: expected "
                        f"@protocol_event({rm.protocol!r}, {rm.event!r})")

    def _check_liveness_bounds(
        self, ctx: CheckContext,
        built: dict[str, tuple[ProtocolSpec, object, list]],
    ) -> None:
        if "scheduler" not in built:
            return
        defaults = extract.dataclass_defaults(self.program, ".ServeConfig")
        if not defaults:
            return  # scheduler copied without its config class
        for fname in LIVENESS_FIELDS:
            value = defaults.get(fname)
            if isinstance(value, (int, float)) and value > 0:
                continue
            self._emit_at(
                ctx, "RV405", ".ServeConfig.__post_init__",
                f"scheduler liveness bound {fname!r} must be a positive "
                f"ServeConfig field (model and implementation share one "
                f"source of truth); found {value!r}")
