"""Shared-memory race detector: shadow tracking of write intents.

The procpool determinism contract says every
:class:`~repro.parallel.procpool.shm.SharedArrayBundle` /
:class:`~repro.parallel.procpool.shm.ScratchBuffer` element has **one
writer rank per epoch**, where an epoch is the interval between two
barrier arrivals (every collective is two barrier phases, so epochs
advance at least twice per collective).  This module makes that checkable:

* :func:`tracked_view` wraps a NumPy view in :class:`TrackedArray`, whose
  ``__setitem__`` records a :class:`WriteIntent` -- (rank, array name,
  covering flat slice, epoch, call stack) -- before delegating;
* :class:`WriteIntentTracker` is the per-rank recorder; the backend
  advances its epoch at every barrier;
* :func:`find_races` merges all ranks' intents and reports overlapping
  same-epoch writes from *different* ranks, with both stacks.

Tracking is strictly opt-in: with no tracker attached the shm classes
return plain ``np.ndarray`` views and allocate nothing (asserted by a
regression test).  Slices are reduced to a conservative *covering* flat
interval, so exotic fancy-indexed writes may report a superset of the
touched elements -- fine for a checker whose clean state must be exact
(disjoint single-writer slices produce disjoint covers).

Derived views (``tracked[2:5]`` then writing through the result) do not
inherit tracking; the procpool write sites all write through the base
view, which is the pattern the single-writer contract is stated in.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

#: Frames of context captured per write intent.
_STACK_DEPTH = 6


@dataclass(frozen=True)
class WriteIntent:
    """One recorded write: ``rank`` wrote ``[start, stop)`` (flat, covering)
    of ``array`` during ``epoch``."""

    rank: int
    array: str
    start: int
    stop: int
    epoch: int
    stack: str

    def span(self) -> str:
        return f"{self.array}[{self.start}:{self.stop}]"


@dataclass(frozen=True)
class RaceFinding:
    """Two ranks wrote overlapping elements in the same epoch."""

    array: str
    epoch: int
    a: WriteIntent
    b: WriteIntent

    def describe(self) -> str:
        return (f"race on {self.array} in epoch {self.epoch}: "
                f"rank {self.a.rank} wrote {self.a.span()} and "
                f"rank {self.b.rank} wrote {self.b.span()}\n"
                f"  rank {self.a.rank} stack:\n{_indent(self.a.stack)}"
                f"  rank {self.b.rank} stack:\n{_indent(self.b.stack)}")


def _indent(text: str, pad: str = "    ") -> str:
    return "".join(pad + line + "\n" for line in text.splitlines())


def flat_cover(shape: Sequence[int], key: Any) -> tuple[int, int] | None:
    """Covering flat interval ``[lo, hi)`` of a C-contiguous ``__setitem__``
    key, or None for a provably empty write.

    Ints and slices (any step) are covered exactly per axis; anything
    fancier (masks, index arrays) conservatively covers the whole array.
    """
    shape = tuple(int(d) for d in shape)
    size = 1
    for d in shape:
        size *= d
    if size == 0:
        return None
    if not shape:
        return (0, 1)
    keys = key if isinstance(key, tuple) else (key,)
    if any(k is Ellipsis for k in keys):
        i = next(j for j, k in enumerate(keys) if k is Ellipsis)
        fill = len(shape) - (len(keys) - 1)
        keys = keys[:i] + (slice(None),) * max(fill, 0) + keys[i + 1:]
    if len(keys) > len(shape):
        return (0, size)
    mins: list[int] = []
    maxs: list[int] = []
    for dim, k in zip(shape, keys):
        if isinstance(k, (int, np.integer)):
            i = int(k) + (dim if int(k) < 0 else 0)
            if not 0 <= i < dim:
                return (0, size)
            mins.append(i)
            maxs.append(i)
        elif isinstance(k, slice):
            start, stop, step = k.indices(dim)
            n = len(range(start, stop, step))
            if n == 0:
                return None
            last = start + (n - 1) * step
            mins.append(min(start, last))
            maxs.append(max(start, last))
        else:
            return (0, size)
    for dim in shape[len(keys):]:
        mins.append(0)
        maxs.append(dim - 1)
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    lo = sum(m * s for m, s in zip(mins, strides))
    hi = sum(m * s for m, s in zip(maxs, strides)) + 1
    return (lo, hi)


class WriteIntentTracker:
    """Per-rank write-intent recorder with a barrier-driven epoch counter.

    Intents deduplicate on (array, interval, epoch) so hot write loops do
    not balloon the log; the first occurrence keeps its stack.
    """

    def __init__(self, rank: int, *, capture_stacks: bool = True,
                 max_intents: int = 100_000) -> None:
        self.rank = int(rank)
        self.epoch = 0
        self.capture_stacks = capture_stacks
        self.max_intents = max_intents
        self.intents: list[WriteIntent] = []
        self._seen: set[tuple[str, int, int, int]] = set()
        self.dropped = 0

    def record_write(self, array: str, shape: Sequence[int],
                     key: Any) -> None:
        """Record one ``__setitem__`` against ``array`` of ``shape``."""
        cover = flat_cover(shape, key)
        if cover is None:
            return
        lo, hi = cover
        dedup = (array, lo, hi, self.epoch)
        if dedup in self._seen:
            return
        if len(self.intents) >= self.max_intents:
            self.dropped += 1
            return
        self._seen.add(dedup)
        stack = ""
        if self.capture_stacks:
            frames = traceback.extract_stack()[:-2][-_STACK_DEPTH:]
            stack = "".join(traceback.format_list(frames))
        self.intents.append(WriteIntent(
            rank=self.rank, array=array, start=lo, stop=hi,
            epoch=self.epoch, stack=stack))

    def advance_epoch(self) -> None:
        """Called at every barrier arrival; writes before and after a
        barrier can never race."""
        self.epoch += 1

    # -- cross-process transport ---------------------------------------
    def payload(self) -> list[tuple[int, str, int, int, int, str]]:
        """Picklable flat form of the recorded intents."""
        return [(i.rank, i.array, i.start, i.stop, i.epoch, i.stack)
                for i in self.intents]


def intents_from_payload(
        payload: Iterable[tuple[int, str, int, int, int, str]]
) -> list[WriteIntent]:
    """Inverse of :meth:`WriteIntentTracker.payload`."""
    return [WriteIntent(*row) for row in payload]


def find_races(intents: Iterable[WriteIntent],
               max_findings: int = 20) -> list[RaceFinding]:
    """Overlapping same-epoch writes from different ranks, across all
    ranks' merged intent logs."""
    groups: dict[tuple[str, int], list[WriteIntent]] = {}
    for intent in intents:
        groups.setdefault((intent.array, intent.epoch), []).append(intent)
    findings: list[RaceFinding] = []
    for (array, epoch), group in sorted(groups.items()):
        group.sort(key=lambda i: (i.start, i.stop, i.rank))
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if b.start >= a.stop:
                    break  # sorted by start: no later entry overlaps a
                if a.rank != b.rank:
                    findings.append(RaceFinding(array=array, epoch=epoch,
                                                a=a, b=b))
                    if len(findings) >= max_findings:
                        return findings
    return findings


class TrackedArray(np.ndarray):
    """ndarray view that reports writes to a :class:`WriteIntentTracker`.

    Created only via :func:`tracked_view`; views *derived* from a tracked
    array deliberately drop the tracker (see module docstring).
    """

    def __array_finalize__(self, obj: Any) -> None:
        self._repro_tracker = None
        self._repro_name = None

    def __setitem__(self, key: Any, value: Any) -> None:
        tracker = self._repro_tracker
        if tracker is not None:
            tracker.record_write(self._repro_name, self.shape, key)
        np.ndarray.__setitem__(self, key, value)


def tracked_view(arr: np.ndarray, name: str,
                 tracker: WriteIntentTracker) -> TrackedArray:
    """Wrap ``arr`` (zero-copy) so writes through the returned view are
    recorded under ``name``."""
    view = arr.view(TrackedArray)
    view._repro_tracker = tracker
    view._repro_name = name
    return view
