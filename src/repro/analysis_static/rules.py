"""The ``repro-lint`` rule catalogue.

Each rule guards one leg of the determinism contract (see
``docs/ANALYSIS.md`` for bad/good examples).  Rules are scoped by *module
role*; roles are inferred from the file path (``infer_roles``) and may be
overridden with a magic comment near the top of a file::

    # repro-lint: roles=parallel,simtime

Individual findings are silenced per line::

    total = sum(phase_t.values())  # repro-lint: disable=REP001 -- why...
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Directories whose files do float accumulation that feeds energies.
NUMERIC_DIRS = frozenset({
    "core", "octree", "surface", "baselines", "loadbalance", "parallel",
    "experiments", "analysis", "plan",
})

#: Directories holding the energy/Born kernels (dtype-drift sensitive).
KERNEL_DIRS = frozenset({"core", "surface", "plan"})

#: The only files allowed to implement cross-rank reductions directly.
REDUCTION_HOME_FILES = (
    "parallel/simmpi/collectives.py",
    "parallel/procpool/backend.py",
)

#: The only files in a wall-clock-restricted role allowed to read the
#: wall clock: the serving layer's latency instrumentation and the
#: cluster fabric's clock/traffic module.  Everything else in
#: ``repro/serve/`` takes timestamps through ``serve.metrics.now()`` and
#: everything else in ``repro/cluster/`` through
#: ``cluster.metrics.cluster_now()``, so latency accounting stays in one
#: auditable place per layer (REP003 exemption).
CLOCK_HOME_FILES = (
    "serve/metrics.py",
    "cluster/metrics.py",
)

#: The only production file allowed to draw random numbers (always from an
#: explicit seed): the molecule generators.  Tests and benchmarks also
#: carry the ``rng`` role -- they seed their own fixtures (REP007
#: exemption).
RNG_HOME_FILES = (
    "molecule/generators.py",
)

_ROLES_RE = re.compile(r"#\s*repro-lint:\s*roles=([A-Za-z0-9_,\- ]+)")
_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, ]+)")


@dataclass(frozen=True)
class Rule:
    """One lint rule: id, scoping roles, and the fix hint shown with every
    finding."""

    id: str
    title: str
    roles: frozenset[str]
    hint: str
    #: When True the rule applies everywhere *except* files carrying one of
    #: ``roles`` (used by REP004, whose roles name the exemption).
    invert_roles: bool = field(default=False)


RULES: dict[str, Rule] = {r.id: r for r in (
    Rule(
        id="REP001",
        title="float accumulation over an unordered container",
        roles=frozenset({"numeric"}),
        hint=("sum() over set/frozenset/dict.values() has no defined "
              "order and float addition is not associative; materialise a "
              "deterministically ordered sequence (e.g. sorted(...) or a "
              "list built in fixed order) before accumulating"),
    ),
    Rule(
        id="REP002",
        title="cross-rank reduction outside the collective modules",
        roles=frozenset({"parallel"}),
        hint=("rank-order reductions live in "
              "parallel/simmpi/collectives.py (reduce_values) and "
              "parallel/procpool/backend.py; route this through the "
              "backend's allreduce/reduce so every substrate shares one "
              "reduction order"),
    ),
    Rule(
        id="REP003",
        title="wall-clock call inside simulated-time or service code",
        roles=frozenset({"simtime", "service", "cluster"}),
        hint=("simmpi/ and cilk/ model time; use "
              "repro.runtime.clock.SimClock (ctx.advance/advance_to) "
              "instead of time.time/perf_counter/monotonic.  In "
              "repro/serve/ the latency clock lives in serve/metrics.py "
              "only (call repro.serve.metrics.now() elsewhere); in "
              "repro/cluster/ it lives in cluster/metrics.py only (call "
              "repro.cluster.metrics.cluster_now() elsewhere)"),
    ),
    Rule(
        id="REP004",
        title="raw multiprocessing/shared_memory use outside procpool",
        roles=frozenset({"procpool"}),
        hint=("OS-process and shared-memory plumbing is confined to "
              "parallel/procpool/ (SharedArrayBundle, ScratchBuffer, "
              "ProcessBackend); build on those abstractions instead"),
        invert_roles=True,
    ),
    Rule(
        id="REP005",
        title="non-float64 array construction in an energy kernel",
        roles=frozenset({"kernel"}),
        hint=("energy/Born kernels are float64 end to end (the "
              "bit-compatibility contract); drop the narrower dtype or "
              "cast at the boundary, not inside the kernel"),
    ),
    Rule(
        id="REP006",
        title="per-element Python loop over leaf arrays in an executor",
        roles=frozenset({"executor"}),
        hint=("plan executors are batched: gather plan rows into "
              "bucketed/padded arrays and issue one vectorised NumPy call "
              "per bucket; a per-leaf (or per-row scalar-accumulation) "
              "Python loop reintroduces exactly the interpreter overhead "
              "the plan/execute split removes"),
    ),
    Rule(
        id="REP007",
        title="unseeded random-number generation outside the RNG home",
        roles=frozenset({"rng"}),
        hint=("randomness enters the pipeline only through "
              "molecule/generators.py, and always from an explicit seed; "
              "np.random.default_rng()/np.random.normal()/random.random() "
              "without a seed makes runs unreproducible -- thread an "
              "np.random.Generator built from a seed through instead"),
        invert_roles=True,
    ),
    Rule(
        id="REP008",
        title="unbounded blocking call in service code",
        roles=frozenset({"service", "cluster"}),
        hint=("a Queue.get()/Event.wait()/Thread.join() with no timeout "
              "can park a serving thread forever when its peer dies; the "
              "protocol models (docs/ANALYSIS.md section 5) assume every "
              "wait is bounded -- pass timeout=... (hoist the constant "
              "into ServeConfig) and handle the timeout path"),
    ),
    Rule(
        id="REP009",
        title="bare numeric-literal chain in kernel arithmetic",
        roles=frozenset({"kernel", "executor"}),
        hint=("a multiplicative chain mixing an array with several bare "
              "numeric literals (e.g. `x * 1 / 3`) evaluates one scalar "
              "op at a time, re-applying NumPy's promotion rules at each "
              "intermediate; fold the literals into one named float64 "
              "constant (e.g. `THIRD = 1.0 / 3.0`) so the kernel issues "
              "a single well-typed multiply"),
    ),
)}


def is_rng_home(path: str) -> bool:
    """Whether ``path`` may draw random numbers (REP007 exemption):
    the seeded molecule generators, plus tests and benchmarks."""
    posix = PurePosixPath(path).as_posix()
    if any(posix.endswith(home) for home in RNG_HOME_FILES):
        return True
    parts = PurePosixPath(path).parts
    name = PurePosixPath(path).name
    return ("tests" in parts or "benchmarks" in parts
            or name.startswith("test_") or name == "conftest.py")


def infer_roles(path: str) -> frozenset[str]:
    """Derive the role set of a file from its (posix) path components."""
    parts = set(PurePosixPath(path).parts)
    roles: set[str] = set()
    if is_rng_home(path):
        roles.add("rng")
    if "procpool" in parts:
        roles.add("procpool")
    if "simmpi" in parts or "cilk" in parts:
        roles.add("simtime")
    if "serve" in parts:
        roles.add("service")
    if "cluster" in parts:
        roles.add("cluster")
    if "parallel" in parts:
        roles.add("parallel")
    if parts & NUMERIC_DIRS:
        roles.add("numeric")
    if parts & KERNEL_DIRS:
        roles.add("kernel")
    if "plan" in parts:
        roles.add("executor")
    return frozenset(roles)


def roles_for(path: str, source: str) -> frozenset[str]:
    """Roles of a file: a magic ``roles=`` comment in the first lines wins
    over path inference (used by lint fixtures and generated code)."""
    for line in source.splitlines()[:10]:
        m = _ROLES_RE.search(line)
        if m:
            return frozenset(
                r.strip() for r in m.group(1).split(",") if r.strip())
    return infer_roles(path)


def is_reduction_home(path: str) -> bool:
    """Whether ``path`` is one of the two files allowed to spell out
    rank-order reductions (REP002 exemption)."""
    posix = PurePosixPath(path).as_posix()
    return any(posix.endswith(home) for home in REDUCTION_HOME_FILES)


def is_clock_home(path: str) -> bool:
    """Whether ``path`` is a layer's designated latency-clock module
    (``serve/metrics.py`` for the ``service`` role, ``cluster/metrics.py``
    for the ``cluster`` role) -- the only wall-clock-restricted files
    allowed to call the wall clock (REP003 exemption; ``simtime`` files
    get no such exemption)."""
    posix = PurePosixPath(path).as_posix()
    return any(posix.endswith(home) for home in CLOCK_HOME_FILES)


def suppressed_rules(line: str) -> frozenset[str]:
    """Rule ids disabled on one physical source line (``all`` disables
    every rule)."""
    m = _DISABLE_RE.search(line)
    if not m:
        return frozenset()
    return frozenset(r.strip().upper()
                     for r in m.group(1).split(",") if r.strip())
