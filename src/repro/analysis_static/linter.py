"""The ``repro-lint`` AST engine (stdlib :mod:`ast`, no dependencies).

:func:`lint_source` runs every applicable rule over one parsed module;
:func:`lint_paths` walks files/directories.  The CLI lives in
:mod:`repro.analysis_static.cli` (``python -m repro.lint``).
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass
from pathlib import Path

from .rules import (RULES, is_clock_home, is_reduction_home, roles_for,
                    suppressed_rules)

#: Wall-clock callables of the :mod:`time` module (REP003).
_WALLCLOCK_ATTRS = frozenset({
    "time", "perf_counter", "monotonic", "process_time",
    "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
})

#: Reduction entry points whose argument order matters (REP001).
_SUM_NAMES = frozenset({"sum", "fsum"})
_NUMPY_SUM_ATTRS = frozenset({"sum", "nansum"})
_NUMPY_ALIASES = frozenset({"np", "numpy"})

#: Array constructors that accept ``dtype=`` (REP005).
_ARRAY_CTORS = frozenset({
    "array", "asarray", "ascontiguousarray", "asfortranarray", "zeros",
    "ones", "empty", "full", "zeros_like", "ones_like", "empty_like",
    "full_like", "frombuffer", "fromiter", "arange", "linspace",
})

#: Explicit dtypes narrower than (or different from) float64 that would
#: silently change energies (REP005).  int/bool dtypes are index bookkeeping
#: and stay allowed.
_BAD_DTYPES = frozenset({
    "float32", "float16", "half", "single", "longdouble", "float128",
    "complex64", "f2", "f4", "<f4", ">f4", "e", "<f2", ">f2",
})

#: Identifier substrings marking a ``range()`` bound as a rank count
#: (REP002's manual-rank-loop heuristic).
_RANK_COUNT_MARKERS = ("size", "nranks", "nworkers", "ranks_per_node", "P")

#: ``np.random`` draws that are fine *when made through a seeded Generator*
#: but unreproducible as module-level calls (REP007): the legacy global
#: state underneath ``np.random.normal()`` et al. has no recorded seed.
_SEEDED_RNG_CTORS = frozenset({
    "default_rng", "RandomState", "SeedSequence", "Generator", "Philox",
    "PCG64", "PCG64DXSM", "MT19937", "SFC64",
})

#: ``random``-module entry points that never take a seed (REP007).
_ALWAYS_UNSEEDED = frozenset({"SystemRandom"})

#: Blocking methods that accept a ``timeout`` and wait forever without one
#: (REP008).  Only the zero-argument spelling is flagged: any positional
#: or keyword argument is taken as a bound (or a non-blocking use like
#: ``dict.get(key)`` / ``str.join(parts)``).
_BLOCKING_ATTRS = frozenset({"get", "wait", "join"})


@dataclass(frozen=True)
class Finding:
    """One lint finding, ``file:line:col`` addressable."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by ``--baseline`` files, so a
        recorded finding survives unrelated edits above it."""
        return f"{self.rule}|{self.path}|{self.message}"

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.message}\n    hint: {self.hint}")

    def to_dict(self) -> dict:
        return asdict(self)


def _call_name(node: ast.expr) -> str | None:
    """Dotted name of a call's func when statically obvious."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _call_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _unordered_container(node: ast.expr) -> str | None:
    """Why iterating ``node`` has no defined order, or None if it does."""
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "values" and not node.args):
            return ".values()"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    return None


def _range_rank_bound(node: ast.expr) -> str | None:
    """The source text of a ``range(...)`` bound that names a rank count,
    else None."""
    if not (isinstance(node, ast.Call)
            and _call_name(node.func) == "range" and node.args):
        return None
    bound = node.args[-1 if len(node.args) == 1 else 1]
    text = ast.unparse(bound)
    ident = text.rsplit(".", 1)[-1]
    for marker in _RANK_COUNT_MARKERS:
        if marker == "P":
            if ident == "P":
                return text
        elif marker in ident.lower():
            return text
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, roles: frozenset[str],
                 active: dict[str, bool]) -> None:
        self.path = path
        self.roles = roles
        self.active = active
        self.raw: list[Finding] = []
        self._time_aliases: set[str] = set()
        self._module_aliases: set[str] = set()
        self._random_aliases: set[str] = set()
        self._random_from: dict[str, str] = {}
        self._nprandom_from: dict[str, str] = {}
        self._chain_seen: set[int] = set()

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if not self.active.get(rule_id, False):
            return
        rule = RULES[rule_id]
        self.raw.append(Finding(
            rule=rule_id, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message, hint=rule.hint))

    # -- imports (REP003 aliases, REP004) ------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if alias.name == "time" or alias.name.startswith("time."):
                self._module_aliases.add(alias.asname or root)
            if alias.name == "random":
                self._random_aliases.add(alias.asname or "random")
            if root == "multiprocessing":
                self._emit("REP004", node,
                           f"import of {alias.name!r} outside procpool/")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_ATTRS:
                    self._time_aliases.add(alias.asname or alias.name)
        if mod == "random":
            for alias in node.names:
                self._random_from[alias.asname or alias.name] = alias.name
        if mod == "numpy.random":
            for alias in node.names:
                self._nprandom_from[alias.asname or alias.name] = alias.name
        if mod.split(".", 1)[0] == "multiprocessing":
            names = ", ".join(a.name for a in node.names)
            self._emit("REP004", node,
                       f"'from {mod} import {names}' outside procpool/")
        self.generic_visit(node)

    # -- calls (REP001, REP002, REP003, REP005, REP007, REP008) --------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_unordered_sum(node)
        self._check_foreign_reduction(node)
        self._check_wallclock(node)
        self._check_dtype(node)
        self._check_rng(node)
        self._check_service_block(node)
        self.generic_visit(node)

    def _check_unordered_sum(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        is_sum = (name in _SUM_NAMES or name == "math.fsum"
                  or (isinstance(node.func, ast.Attribute)
                      and node.func.attr in _NUMPY_SUM_ATTRS
                      and isinstance(node.func.value, ast.Name)
                      and node.func.value.id in _NUMPY_ALIASES))
        if not is_sum or not node.args:
            return
        arg = node.args[0]
        why = _unordered_container(arg)
        if why is None and isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                            ast.SetComp)):
            why = _unordered_container(arg.generators[0].iter)
            if why is not None:
                why = f"a comprehension over {why}"
        if why is not None:
            self._emit("REP001", node,
                       f"float accumulation over {why} has no defined "
                       "iteration order")

    def _check_foreign_reduction(self, node: ast.Call) -> None:
        if is_reduction_home(self.path):
            return
        # np.stack(...).sum(...) / np.vstack(...).sum(...)
        if (isinstance(node.func, ast.Attribute) and node.func.attr == "sum"
                and isinstance(node.func.value, ast.Call)):
            inner = node.func.value
            iname = _call_name(inner.func)
            if iname and iname.split(".", 1)[0] in _NUMPY_ALIASES \
                    and iname.rsplit(".", 1)[-1] in ("stack", "vstack"):
                self._emit("REP002", node,
                           "stack-and-sum reduction spelled outside the "
                           "collective modules")
                return
        # sum(... for r in range(<rank count>))
        if _call_name(node.func) in _SUM_NAMES and node.args:
            arg = node.args[0]
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                bound = _range_rank_bound(arg.generators[0].iter)
                if bound is not None:
                    self._emit("REP002", node,
                               f"manual rank-loop reduction over "
                               f"range({bound})")

    def _check_wallclock(self, node: ast.Call) -> None:
        if is_clock_home(self.path):
            return  # serve/metrics.py is the sanctioned latency clock
        where = ("service" if "service" in self.roles
                 else "simulated-time") + " code"
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _WALLCLOCK_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id in (self._module_aliases | {"time"})):
            self._emit("REP003", node,
                       f"wall-clock call time.{func.attr}() in {where}")
        elif isinstance(func, ast.Name) and func.id in self._time_aliases:
            self._emit("REP003", node,
                       f"wall-clock call {func.id}() in {where}")

    def _check_dtype(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        is_ctor = (name is not None
                   and name.split(".", 1)[0] in _NUMPY_ALIASES
                   and name.rsplit(".", 1)[-1] in _ARRAY_CTORS)
        is_astype = (isinstance(node.func, ast.Attribute)
                     and node.func.attr == "astype")
        if not (is_ctor or is_astype):
            return
        candidates: list[ast.expr] = []
        for kw in node.keywords:
            if kw.arg == "dtype":
                candidates.append(kw.value)
        if is_astype and node.args:
            candidates.append(node.args[0])
        for cand in candidates:
            text = ast.unparse(cand).strip("\"'").lower()
            leaf = text.rsplit(".", 1)[-1]
            if leaf in _BAD_DTYPES:
                self._emit("REP005", node,
                           f"explicit dtype {leaf!r} in an energy kernel "
                           "(contract is float64)")

    def _check_rng(self, node: ast.Call) -> None:
        """REP007: random-number draws outside the RNG home.

        Seeded constructors (``default_rng(seed)``, ``Random(seed)``) and
        explicit ``seed()`` calls pass; zero-argument constructors and the
        module-level draws (``np.random.normal``, ``random.random``) that
        read hidden global state are flagged.
        """
        func = node.func
        origin: str | None = None
        leaf: str | None = None
        if isinstance(func, ast.Attribute):
            base = func.value
            if (isinstance(base, ast.Attribute) and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in _NUMPY_ALIASES):
                origin, leaf = "np.random", func.attr
            elif isinstance(base, ast.Name) \
                    and base.id in self._random_aliases:
                origin, leaf = "random", func.attr
        elif isinstance(func, ast.Name):
            if func.id in self._nprandom_from:
                origin, leaf = "np.random", self._nprandom_from[func.id]
            elif func.id in self._random_from:
                origin, leaf = "random", self._random_from[func.id]
        if origin is None or leaf is None or leaf == "seed":
            return
        if leaf in _ALWAYS_UNSEEDED:
            self._emit("REP007", node,
                       f"{origin}.{leaf}() cannot be seeded and is "
                       "unreproducible by construction")
            return
        seedable = (leaf in _SEEDED_RNG_CTORS
                    or (origin == "random" and leaf == "Random"))
        if seedable:
            if not node.args and not node.keywords:
                self._emit("REP007", node,
                           f"unseeded {origin}.{leaf}() (pass an explicit "
                           "seed)")
            return
        self._emit("REP007", node,
                   f"{origin}.{leaf}() draws from hidden global RNG state")

    def _check_service_block(self, node: ast.Call) -> None:
        """REP008: ``x.get()`` / ``x.wait()`` / ``x.join()`` with neither
        arguments nor a ``timeout=`` keyword blocks a serving thread
        forever if the producing side dies."""
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_ATTRS
                and not node.args and not node.keywords):
            return
        self._emit("REP008", node,
                   f"unbounded blocking .{func.attr}() in service code "
                   "(no timeout)")

    # -- multiplicative literal chains (REP009) ------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_literal_chain(node)
        self.generic_visit(node)

    def _check_literal_chain(self, node: ast.BinOp) -> None:
        """REP009: a ``*``/``/`` chain mixing a non-literal operand with
        two or more bare numeric literals (``x * 1 / 3``).  NumPy applies
        its promotion rules once per scalar op, so the intermediate's
        dtype -- not the kernel author -- decides the result type.  Only
        the chain root is checked; nested sub-chains are part of it."""
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        if id(node) in self._chain_seen:
            return

        leaves: list[ast.expr] = []

        def collect(n: ast.expr) -> None:
            if isinstance(n, ast.BinOp) and isinstance(n.op,
                                                       (ast.Mult, ast.Div)):
                self._chain_seen.add(id(n))
                collect(n.left)
                collect(n.right)
            else:
                leaves.append(n)

        collect(node)

        def bare_literal(n: ast.expr) -> bool:
            if isinstance(n, ast.UnaryOp) and isinstance(n.op,
                                                         (ast.USub, ast.UAdd)):
                n = n.operand
            return (isinstance(n, ast.Constant)
                    and isinstance(n.value, (int, float))
                    and not isinstance(n.value, bool))

        literals = [n for n in leaves if bare_literal(n)]
        if len(literals) >= 2 and len(literals) < len(leaves):
            text = ", ".join(ast.unparse(n) for n in literals)
            self._emit("REP009", node,
                       f"bare numeric literals ({text}) chained through "
                       "*// with a non-literal operand promote "
                       "per-intermediate")

    # -- bare for-loops (REP002 rank reductions, REP006 leaf loops) ----
    def visit_For(self, node: ast.For) -> None:
        if not is_reduction_home(self.path):
            bound = _range_rank_bound(node.iter)
            if bound is not None and any(
                    isinstance(stmt, ast.AugAssign)
                    and isinstance(stmt.op, ast.Add)
                    for stmt in ast.walk(node)):
                self._emit("REP002", node,
                           f"manual accumulation loop over range({bound})")
        self._check_leaf_loop(node)
        self.generic_visit(node)

    def _check_leaf_loop(self, node: ast.For) -> None:
        """REP006: per-element Python iteration over leaf data (or a
        scalar-accumulation ``range`` loop) inside an executor module."""
        idents = {n.id for n in ast.walk(node.iter)
                  if isinstance(n, ast.Name)}
        idents |= {a.attr for a in ast.walk(node.iter)
                   if isinstance(a, ast.Attribute)}
        leafy = any("leaf" in ident.lower() or "leaves" in ident.lower()
                    for ident in idents)
        accumulates = any(isinstance(stmt, ast.AugAssign)
                          and isinstance(stmt.op, ast.Add)
                          for stmt in ast.walk(node))
        scalar_range = (isinstance(node.iter, ast.Call)
                        and _call_name(node.iter.func) == "range"
                        and accumulates)
        if leafy:
            self._emit("REP006", node,
                       "per-element Python loop over leaf arrays in an "
                       "executor module")
        elif scalar_range:
            self._emit("REP006", node,
                       "scalar accumulation range-loop in an executor "
                       "module")


def lint_source(source: str, path: str = "<string>",
                only_rules: frozenset[str] | None = None) -> list[Finding]:
    """Lint one module's source; returns the surviving findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Finding(rule="REP000", path=path, line=err.lineno or 1,
                        col=err.offset or 0,
                        message=f"syntax error: {err.msg}",
                        hint="repro-lint requires parseable Python")]
    roles = roles_for(path, source)
    active = {}
    for rule in RULES.values():
        applies = (not (roles & rule.roles) if rule.invert_roles
                   else bool(roles & rule.roles))
        if only_rules is not None and rule.id not in only_rules:
            applies = False
        active[rule.id] = applies
    visitor = _Visitor(path, roles, active)
    visitor.visit(tree)
    lines = source.splitlines()
    out = []
    for f in visitor.raw:
        text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        disabled = suppressed_rules(text)
        if f.rule in disabled or "ALL" in disabled:
            continue
        out.append(f)
    return sorted(out, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_file(path: str | Path,
              only_rules: frozenset[str] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), p.as_posix(),
                       only_rules=only_rules)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files,
    skipping caches and hidden directories."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(f for f in sorted(p.rglob("*.py"))
                       if "__pycache__" not in f.parts
                       and not any(part.startswith(".") for part in f.parts))
        elif p.suffix == ".py":
            out.append(p)
    return out


def lint_paths(paths: list[str | Path],
               only_rules: frozenset[str] | None = None) -> list[Finding]:
    """Lint every Python file under ``paths``."""
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, only_rules=only_rules))
    return findings
