"""Numpy-operation transfer functions for the repro-flow interpreter.

One table entry per numpy callable the pipeline uses, keyed by the
call's last name component (``zeros`` for ``np.zeros``).  A handler
maps the *abstract* arguments to an abstract result --
``np.zeros(far_total)`` becomes an ``(nnz_far,) float64 C`` array when
``far_total`` is bound to the ``nnz_far`` dimension symbol -- and
returns ``None`` when nothing useful is decidable (the interpreter
then drops to unknown rather than guessing).

Handlers receive the :class:`ast.Call` node plus the interpreter's
evaluator facade (``ev.value``/``ev.dim``/``ev.dtype_ast``), so each
stays a few lines of shape algebra.  Everything conservative: a
handler asserts a fact only when the inputs carry it.
"""

from __future__ import annotations

import ast
from typing import Callable

from .domain import CONTIG, UNKNOWN, VIEW, ArrayVal, promote

#: Dtype aliases as they appear in source (``np.float32``, ``"f8"``...).
_DTYPE_ALIASES = {
    "float64": "float64", "double": "float64", "f8": "float64",
    "float32": "float32", "single": "float32", "f4": "float32",
    "float16": "float32", "half": "float32",
    "int64": "int64", "i8": "int64", "intp": "int64",
    "int32": "int32", "i4": "int32", "intc": "int32",
    "uint64": "uint64", "u8": "uint64",
    "bool": "bool", "bool_": "bool",
    "float": "float64", "int": "int64",
}


def dtype_from_ast(expr: ast.expr | None) -> str:
    """Dtype named by a ``dtype=`` argument expression, or ``?``."""
    if expr is None:
        return UNKNOWN
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _DTYPE_ALIASES.get(expr.value.strip().lower(), UNKNOWN)
    if isinstance(expr, ast.Attribute):
        return _DTYPE_ALIASES.get(expr.attr, UNKNOWN)
    if isinstance(expr, ast.Name):
        return _DTYPE_ALIASES.get(expr.id, UNKNOWN)
    return UNKNOWN


def _kw(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _shape_from_arg(call: ast.Call, ev) -> tuple[str, ...] | None:
    """Symbolic shape tuple from a constructor's shape argument."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Tuple):
        return tuple(ev.dim(e) for e in arg.elts)
    return (ev.dim(arg),)


def _alloc(call: ast.Call, ev, *, default_dtype: str) -> ArrayVal:
    dtype = dtype_from_ast(_kw(call, "dtype"))
    if dtype == UNKNOWN:
        dtype = default_dtype
    return ArrayVal(shape=_shape_from_arg(call, ev), dtype=dtype,
                    contig=CONTIG, origin=call.lineno)


def _zeros(call: ast.Call, ev) -> ArrayVal:
    return _alloc(call, ev, default_dtype="float64")


def _arange(call: ast.Call, ev) -> ArrayVal:
    dtype = dtype_from_ast(_kw(call, "dtype"))
    if dtype == UNKNOWN:
        dtype = "int64" if all(
            isinstance(a, ast.Constant) and isinstance(a.value, int)
            for a in call.args) and call.args else UNKNOWN
    shape = (ev.dim(call.args[0]),) if len(call.args) == 1 else None
    return ArrayVal(shape=shape, dtype=dtype, contig=CONTIG,
                    origin=call.lineno)


def _like(call: ast.Call, ev) -> ArrayVal | None:
    src = ev.value(call.args[0]) if call.args else None
    if not isinstance(src, ArrayVal):
        return None
    dtype = dtype_from_ast(_kw(call, "dtype"))
    return ArrayVal(shape=src.shape,
                    dtype=dtype if dtype != UNKNOWN else src.dtype,
                    contig=CONTIG, contracted=src.contracted,
                    origin=call.lineno)


def _asarray(call: ast.Call, ev) -> ArrayVal | None:
    """``np.asarray`` passes an already-conforming array through
    *including its view-ness*; an explicit dtype conversion allocates."""
    src = ev.value(call.args[0]) if call.args else None
    dtype = dtype_from_ast(_kw(call, "dtype"))
    if not isinstance(src, ArrayVal):
        if dtype == UNKNOWN:
            return None
        return ArrayVal(dtype=dtype, origin=call.lineno)
    if dtype == UNKNOWN or dtype == src.dtype:
        return src.with_(origin=call.lineno)
    return src.with_(dtype=dtype, contig=CONTIG, origin=call.lineno)


def _ascontiguous(call: ast.Call, ev) -> ArrayVal | None:
    src = ev.value(call.args[0]) if call.args else None
    dtype = dtype_from_ast(_kw(call, "dtype"))
    if not isinstance(src, ArrayVal):
        return ArrayVal(dtype=dtype, contig=CONTIG, origin=call.lineno)
    return src.with_(dtype=dtype if dtype != UNKNOWN else src.dtype,
                     contig=CONTIG, origin=call.lineno)


def _array(call: ast.Call, ev) -> ArrayVal | None:
    out = _asarray(call, ev)
    # np.array copies by default: always a fresh contiguous buffer.
    return None if out is None else out.with_(contig=CONTIG)


def _diff(call: ast.Call, ev) -> ArrayVal | None:
    src = ev.value(call.args[0]) if call.args else None
    if not isinstance(src, ArrayVal):
        return None
    shape = None
    if src.shape is not None and len(src.shape) == 1:
        shape = (ev.dim_minus_one(src.shape[0]),)
    return ArrayVal(shape=shape, dtype=src.dtype, contig=CONTIG,
                    contracted=src.contracted, origin=call.lineno)


def _elementwise(call: ast.Call, ev) -> ArrayVal | None:
    """Shape/dtype-preserving ufuncs that allocate a fresh result."""
    src = ev.value(call.args[0]) if call.args else None
    if not isinstance(src, ArrayVal):
        return None
    return src.with_(contig=CONTIG, origin=call.lineno)


def _float_elementwise(call: ast.Call, ev) -> ArrayVal | None:
    src = ev.value(call.args[0]) if call.args else None
    if not isinstance(src, ArrayVal):
        return None
    dtype = src.dtype if src.dtype in ("float32", "float64") else (
        UNKNOWN if src.dtype == UNKNOWN else "float64")
    return ArrayVal(shape=src.shape, dtype=dtype, contig=CONTIG,
                    contracted=src.contracted, origin=call.lineno)


def _concatenate(call: ast.Call, ev) -> ArrayVal | None:
    parts: list[ArrayVal] = []
    if call.args and isinstance(call.args[0], (ast.Tuple, ast.List)):
        for e in call.args[0].elts:
            v = ev.value(e)
            if isinstance(v, ArrayVal):
                parts.append(v)
    dtype = UNKNOWN
    for p in parts:
        dtype = p.dtype if dtype == UNKNOWN else promote(dtype, p.dtype)
    return ArrayVal(dtype=dtype, contig=CONTIG, origin=call.lineno)


def _searchsorted(call: ast.Call, ev) -> ArrayVal:
    return ArrayVal(dtype="int64", contig=CONTIG, origin=call.lineno)


def _where_nonzero(call: ast.Call, ev) -> ArrayVal:
    return ArrayVal(dtype="int64", contig=CONTIG, origin=call.lineno)


def _broadcast_to(call: ast.Call, ev) -> ArrayVal | None:
    src = ev.value(call.args[0]) if call.args else None
    dtype = src.dtype if isinstance(src, ArrayVal) else UNKNOWN
    return ArrayVal(dtype=dtype, contig=VIEW, origin=call.lineno)


#: Last-name -> transfer function.  Anything absent falls to unknown.
NUMPY_TRANSFER: dict[str, Callable[[ast.Call, object], ArrayVal | None]] = {
    "zeros": _zeros, "ones": _zeros, "empty": _zeros, "full": _zeros,
    "zeros_like": _like, "ones_like": _like, "empty_like": _like,
    "full_like": _like,
    "arange": _arange,
    "asarray": _asarray, "ascontiguousarray": _ascontiguous,
    "array": _array,
    "diff": _diff,
    "cumsum": _elementwise, "sort": _elementwise, "copy": _elementwise,
    "abs": _elementwise, "minimum": _elementwise, "maximum": _elementwise,
    "sqrt": _float_elementwise, "exp": _float_elementwise,
    "log": _float_elementwise,
    "concatenate": _concatenate, "hstack": _concatenate,
    "stack": _concatenate, "vstack": _concatenate,
    "searchsorted": _searchsorted, "argsort": _where_nonzero,
    "flatnonzero": _where_nonzero,
    "broadcast_to": _broadcast_to,
}
