"""The flow-sensitive abstract interpreter over numpy dataflow.

One :class:`FlowInterpreter` instance analyses one function: it seeds an
environment from ``@array_contract`` parameter specs and contracted-class
annotations (an ``InteractionPlan`` parameter makes ``plan.far_start`` an
``(nrows+1,) int64 C`` fact and ``plan.nrows`` the ``nrows`` dimension
symbol), pushes facts through assignments with the transfer table of
:mod:`.transfer`, and checks five things along the way:

* **RV601** -- an argument whose inferred symbolic shape *definitely*
  mismatches the callee's ``@array_contract`` spec (rank or any dim);
* **RV602** -- float32/float64 drift on an energy path: a silent
  promotion in arithmetic, a ``float64 -> float32`` downcast, or a
  delivered dtype that contradicts a contract;
* **RV603** -- a view-aliased / non-contiguous array where a contract
  demands ``C``, or published to ``SharedArrayBundle`` (the bundle's
  ``ascontiguousarray`` normalisation would silently *copy*, so writes
  through the original would never reach the shared segment);
* **RV604** -- an ``int32`` index array gathering into a 64-bit-keyed
  CSR/key array (the Hilbert-key / CSR-index width seam);
* **RV605** -- an array crossing a process/shm/cluster boundary with no
  covering contract (an uncontracted publication key, payload or
  donation kernel).

Branches are analysed independently and joined by agreement; loops are
walked once (facts proven inside a body are definite *in* that body,
which is where the checks run).  Everything undecidable stays unknown,
and unknown never refutes a contract -- repro-flow reports definite
evidence only, which is why the clean tree stays clean.
"""

from __future__ import annotations

import ast
import re
from typing import Callable

from ..verify.program import FunctionInfo, Program, receiver_text
from .contracts import ContractSpec, dims_match
from .domain import (CONTIG, FLOAT_DTYPES, UNKNOWN, VIEW, ArrayVal, DimVal,
                     Env, ObjVal, TupleVal, promote, shape_str)
from .transfer import NUMPY_TRANSFER, dtype_from_ast

#: In-program functions that move arrays across the cluster/donation
#: boundary; each must carry an ``@array_contract`` stamp (RV605).
BOUNDARY_CALLEES = frozenset({
    "execute_born_rows", "execute_epol_rows",
    "donation_bounds", "plan_row_keys",
})

#: Receiver class of the shared-memory publication boundary.
PUBLISH_RECEIVER = "SharedArrayBundle"

_NUMPY_NAMES = ("np", "numpy")
_DIM_TERM_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)?([+-]\d+)?$|^(\d+)$")

#: ``np.<name>(x)`` scalar/array dtype-cast constructors.
_CAST_CTORS = {
    "float64": "float64", "float32": "float32", "int64": "int64",
    "int32": "int32", "uint64": "uint64",
}


def dim_add(dim: str, delta: int) -> str:
    """Symbolic ``dim + delta`` (``nrows+1`` - 1 -> ``nrows``)."""
    if dim == UNKNOWN:
        return UNKNOWN
    m = _DIM_TERM_RE.match(dim)
    if m is None:
        return UNKNOWN
    if m.group(3) is not None:
        return str(int(m.group(3)) + delta)
    sym = m.group(1) or ""
    off = int(m.group(2) or 0) + delta
    if not sym:
        return str(off)
    return sym if off == 0 else f"{sym}{off:+d}"


class FlowInterpreter:
    """Abstract interpretation of one function body."""

    def __init__(self, program: Program, index, fn: FunctionInfo, *,
                 energy_path: bool,
                 emit: Callable[[str, int, int, str], None]) -> None:
        self.program = program
        self.index = index
        self.fn = fn
        self.energy_path = energy_path
        self._emit_cb = emit
        self._seen: set[tuple[str, int, str]] = set()

    # -- reporting -----------------------------------------------------
    def emit(self, check: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.fn.lineno)
        col = getattr(node, "col_offset", 0) + 1
        key = (check, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self._emit_cb(check, line, col, message)

    # -- entry ---------------------------------------------------------
    def run(self) -> None:
        env = self._seed_env()
        self.exec_block(self.fn.node.body, env)

    def _seed_env(self) -> Env:
        env = Env()
        # Contracted-class parameters/locals (flow-insensitive seeds).
        for var, cq in self.program.local_types(self.fn).items():
            if cq in self.index.classes:
                env.set(var, ObjVal(cq))
        # The function's own parameter contracts are stronger facts.
        specs = self.index.functions.get(self.fn.qualname, {})
        for name, spec in specs.items():
            if name != "returns" and spec.kind == "array":
                env.set(name, self._from_spec(spec, self.fn.lineno))
        return env

    @staticmethod
    def _from_spec(spec: ContractSpec, lineno: int) -> ArrayVal:
        return ArrayVal(
            shape=spec.shape,
            dtype=spec.dtype if spec.dtype != "any" else UNKNOWN,
            contig=CONTIG if spec.contiguous else UNKNOWN,
            contracted=True, origin=lineno)

    # -- statements ----------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt], env: Env) -> Env:
        for stmt in stmts:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for tgt in stmt.targets:
                self._bind(tgt, value, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                if stmt.target is not None:
                    self._bind(stmt.target, value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            left = self.eval(stmt.target, env)
            right = self.eval(stmt.value, env)
            result = self._binop_value(stmt, left, right)
            if isinstance(stmt.target, ast.Name):
                env.set(stmt.target.id, result)
            return env
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if getattr(stmt, "value", None) is not None:
                self.eval(stmt.value, env)
            return env
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = self.exec_block(stmt.body, env.copy())
            else_env = self.exec_block(stmt.orelse, env.copy())
            return then_env.merge(else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            body_env = env.copy()
            self._bind(stmt.target, None, body_env)
            body_env = self.exec_block(stmt.body, body_env)
            body_env = self.exec_block(stmt.orelse, body_env)
            return env.merge(body_env)
        if isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            body_env = self.exec_block(stmt.body, env.copy())
            return env.merge(body_env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, env)
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            env = self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                self.exec_block(handler.body, env.copy())
            env = self.exec_block(stmt.orelse, env)
            return self.exec_block(stmt.finalbody, env)
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test, env)
            elif stmt.exc is not None:
                self.eval(stmt.exc, env)
            return env
        if isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                self._bind(tgt, None, env)
            return env
        # Nested defs/classes analyse as their own functions; everything
        # else (pass, import, global, ...) carries no dataflow.
        return env

    def _bind(self, target: ast.expr, value, env: Env) -> None:
        if isinstance(target, ast.Name):
            env.set(target.id, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = (value.items if isinstance(value, TupleVal)
                     else [None] * len(target.elts))
            if len(items) != len(target.elts):
                items = [None] * len(target.elts)
            for sub, val in zip(target.elts, items):
                self._bind(sub, val, env)
            return
        if isinstance(target, ast.Subscript):
            # Writing into a slice: evaluate for checks, binds nothing.
            self.eval(target.value, env)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, None, env)

    # -- expressions ---------------------------------------------------
    def eval(self, expr: ast.expr, env: Env):
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                    expr.value, int):
                return None
            return DimVal(str(expr.value))
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            return self._binop_value(expr, left, right)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, env)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return TupleVal(tuple(self.eval(e, env) for e in expr.elts))
        if isinstance(expr, ast.Dict):
            for v in expr.values:
                if v is not None:
                    self.eval(v, env)
            return None
        if isinstance(expr, (ast.Compare, ast.BoolOp)):
            children = ([expr.left] + list(expr.comparators)
                        if isinstance(expr, ast.Compare) else expr.values)
            for child in children:
                self.eval(child, env)
            return None
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, env)
            a = self.eval(expr.body, env)
            b = self.eval(expr.orelse, env)
            return a if a == b else None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in expr.generators:
                self.eval(gen.iter, env)
            return None
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        return None

    # -- attribute reads -----------------------------------------------
    def _class_qual_of(self, expr: ast.expr, env: Env) -> str | None:
        val = self.eval(expr, env) if not isinstance(expr, ast.Name) \
            else env.get(expr.id)
        if isinstance(val, ObjVal):
            return val.class_qual
        return self.program.type_of_receiver(self.fn, expr)

    def _eval_attribute(self, expr: ast.Attribute, env: Env):
        base = self.eval(expr.value, env)
        if isinstance(base, ArrayVal):
            if expr.attr == "T":
                return base.with_(contig=VIEW, origin=expr.lineno)
            if expr.attr in ("dtype", "shape", "size", "nbytes"):
                return None
            return None
        cq = (base.class_qual if isinstance(base, ObjVal)
              else self.program.type_of_receiver(self.fn, expr.value))
        if cq is None:
            return None
        specs = self.index.classes.get(cq)
        if specs is not None:
            spec = specs.get(expr.attr)
            if spec is not None and spec.kind == "array":
                return self._from_spec(spec, expr.lineno)
            if expr.attr in self.index.class_dims.get(cq, ()):
                return DimVal(expr.attr)
        # Attribute of a known class that is itself a contracted object.
        cinfo = self.program.classes.get(cq)
        if cinfo is not None:
            sub = cinfo.attr_types.get(expr.attr)
            if sub is not None and sub in self.index.classes:
                return ObjVal(sub)
        return None

    # -- subscripts (slices are views; gathers check RV604) ------------
    def _eval_subscript(self, expr: ast.Subscript, env: Env):
        base = self.eval(expr.value, env)
        idx = expr.slice
        if not isinstance(base, ArrayVal):
            self.eval(idx, env)
            return None
        if isinstance(idx, ast.Slice):
            for part in (idx.lower, idx.upper, idx.step):
                if part is not None:
                    self.eval(part, env)
            return base.with_(shape=None, contig=VIEW, origin=expr.lineno)
        idx_val = self.eval(idx, env)
        if isinstance(idx_val, ArrayVal):
            self._check_gather(expr, base, idx_val)
            # Fancy indexing gathers into a fresh buffer.
            return ArrayVal(shape=idx_val.shape, dtype=base.dtype,
                            contig=CONTIG, contracted=base.contracted,
                            origin=expr.lineno)
        # Scalar element read.
        return DimVal(UNKNOWN) if base.dtype not in FLOAT_DTYPES else None

    def _check_gather(self, node: ast.AST, base: ArrayVal,
                      idx: ArrayVal) -> None:
        if idx.dtype == "int32" and base.dtype in ("int64", "uint64"):
            self.emit(
                "RV604", node,
                f"int32 index array gathers into a {base.dtype} "
                "CSR/key array: index widths must agree (int64) or the "
                "gather silently truncates past 2^31 entries")

    # -- calls ---------------------------------------------------------
    def _eval_call(self, call: ast.Call, env: Env):
        func = call.func
        # Evaluate keyword values for nested checks (args are evaluated
        # by the specific handlers below, which need the exprs).
        for kw in call.keywords:
            self.eval(kw.value, env)

        # Method-style transfers: astype / copy / sum / view-makers.
        if isinstance(func, ast.Attribute):
            recv = func.value
            if func.attr == "astype":
                return self._astype(call, recv, env)
            if func.attr in ("copy",):
                src = self.eval(recv, env)
                for a in call.args:
                    self.eval(a, env)
                if isinstance(src, ArrayVal):
                    return src.with_(contig=CONTIG, origin=call.lineno)
                return None
            if func.attr in ("sum", "min", "max", "mean", "prod"):
                self.eval(recv, env)
                for a in call.args:
                    self.eval(a, env)
                return None
            if func.attr == "create" and self._is_publish_receiver(recv):
                return self._check_publish(call, env)
            if (isinstance(recv, ast.Name) and recv.id in _NUMPY_NAMES):
                if func.attr in NUMPY_TRANSFER:
                    for a in call.args:
                        self.eval(a, env)
                    return NUMPY_TRANSFER[func.attr](call, _EvalView(
                        self, env))
                if func.attr in _CAST_CTORS:
                    return self._cast_ctor(call, _CAST_CTORS[func.attr],
                                           env)

        # Builtins that matter to the dim algebra.
        if isinstance(func, ast.Name):
            if func.id == "int" and len(call.args) == 1:
                inner = self.eval(call.args[0], env)
                if isinstance(inner, DimVal):
                    return inner
                return DimVal(self.dim(call.args[0], env))
            if func.id == "len" and len(call.args) == 1:
                target = self.eval(call.args[0], env)
                if isinstance(target, ArrayVal) and target.shape \
                        and len(target.shape) == 1:
                    return DimVal(target.shape[0])
                return DimVal(UNKNOWN)

        for a in call.args:
            self.eval(a, env)

        # Boundary-callee coverage (RV605) and contracted-call checks.
        leaf = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        callee = self._resolve_callee(call)
        if leaf in BOUNDARY_CALLEES:
            self._check_boundary(call, leaf, callee)
        if callee is not None:
            specs = self.index.functions.get(callee.qualname)
            if specs:
                self._check_contract_call(call, callee, specs, env)
                return self._returns_value(call, specs)
        return None

    def _is_publish_receiver(self, recv: ast.expr) -> bool:
        text = receiver_text(recv)
        return text is not None and text.split(".")[-1] == PUBLISH_RECEIVER

    def _resolve_callee(self, call: ast.Call) -> FunctionInfo | None:
        ref = self.program.resolve_call(self.fn, call)
        if ref.kind == "function":
            return self.program.functions.get(ref.target)
        return None

    def _astype(self, call: ast.Call, recv: ast.expr, env: Env):
        src = self.eval(recv, env)
        dtype = dtype_from_ast(call.args[0]) if call.args else (
            dtype_from_ast(next((kw.value for kw in call.keywords
                                 if kw.arg == "dtype"), None)))
        if (self.energy_path and isinstance(src, ArrayVal)
                and src.dtype == "float64" and dtype == "float32"):
            self.emit("RV602", call,
                      "float64 -> float32 downcast on an energy path "
                      "(astype): Born/E_pol values are float64 end to end")
        if isinstance(src, ArrayVal):
            return src.with_(dtype=dtype, contig=CONTIG,
                             origin=call.lineno)
        return ArrayVal(dtype=dtype, contig=CONTIG, origin=call.lineno)

    def _cast_ctor(self, call: ast.Call, dtype: str, env: Env):
        src = self.eval(call.args[0], env) if call.args else None
        if isinstance(src, ArrayVal):
            if (self.energy_path and src.dtype == "float64"
                    and dtype == "float32"):
                self.emit("RV602", call,
                          "float64 -> float32 downcast on an energy path "
                          "(np.float32 constructor)")
            return src.with_(dtype=dtype, contig=CONTIG,
                             origin=call.lineno)
        return None

    # -- arithmetic (RV602 promotion) ----------------------------------
    def _binop_value(self, node: ast.AST, left, right):
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            ldt = left.dtype if isinstance(left, ArrayVal) else UNKNOWN
            rdt = right.dtype if isinstance(right, ArrayVal) else UNKNOWN
            if self.energy_path and {ldt, rdt} == FLOAT_DTYPES:
                self.emit(
                    "RV602", node,
                    "float32 operand silently promotes against float64 "
                    "on an energy path: the float32 side carries rounded "
                    "values into a float64 contract")
            shape = None
            contracted = False
            for side in (left, right):
                if isinstance(side, ArrayVal):
                    contracted = contracted or side.contracted
                    if side.shape is not None and shape is None:
                        shape = side.shape
                    elif side.shape is not None and shape != side.shape:
                        shape = None
            both = isinstance(left, ArrayVal) and isinstance(right, ArrayVal)
            return ArrayVal(
                shape=shape if (not both or (
                    isinstance(left, ArrayVal) and isinstance(right, ArrayVal)
                    and left.shape == right.shape)) else None,
                dtype=promote(ldt, rdt) if both else (ldt if ldt != UNKNOWN
                                                      else rdt),
                contig=CONTIG, contracted=contracted,
                origin=getattr(node, "lineno", 0))
        if isinstance(left, DimVal) or isinstance(right, DimVal):
            return DimVal(self._dim_binop(node, left, right))
        return None

    def _dim_binop(self, node: ast.AST, left, right) -> str:
        if not isinstance(node, (ast.BinOp, ast.AugAssign)):
            return UNKNOWN
        op = node.op
        lexpr = left.expr if isinstance(left, DimVal) else UNKNOWN
        rexpr = right.expr if isinstance(right, DimVal) else UNKNOWN
        if isinstance(op, (ast.Add, ast.Sub)):
            sign = 1 if isinstance(op, ast.Add) else -1
            if rexpr.lstrip("+-").isdigit():
                return dim_add(lexpr, sign * int(rexpr))
            if lexpr.lstrip("+-").isdigit() and isinstance(op, ast.Add):
                return dim_add(rexpr, int(lexpr))
        return UNKNOWN

    # -- the dim oracle ------------------------------------------------
    def dim(self, expr: ast.expr, env: Env) -> str:
        """Symbolic dimension denoted by an integer expression."""
        val = self.eval(expr, env)
        if isinstance(val, DimVal):
            return val.expr
        return UNKNOWN

    # -- contract-call checking (RV601/RV602/RV603) --------------------
    def _callee_params(self, callee: FunctionInfo) -> list[str]:
        args = callee.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if callee.cls is not None and not callee.is_staticmethod and names:
            names = names[1:]
        return names + [a.arg for a in args.kwonlyargs]

    def _check_contract_call(self, call: ast.Call, callee: FunctionInfo,
                             specs: dict[str, ContractSpec],
                             env: Env) -> None:
        positional = self._callee_params(callee)
        mapped: list[tuple[str, ast.expr]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(positional):
                mapped.append((positional[i], arg))
        for kw in call.keywords:
            if kw.arg is not None:
                mapped.append((kw.arg, kw.value))
        for name, expr in mapped:
            spec = specs.get(name)
            if spec is None or spec.kind != "array":
                continue
            got = self.eval(expr, env)
            if not isinstance(got, ArrayVal):
                continue
            self._check_against_spec(expr, callee.name, name, spec, got)

    def _check_against_spec(self, node: ast.AST, callee_name: str,
                            arg_name: str, spec: ContractSpec,
                            got: ArrayVal) -> None:
        want = spec.shape
        if got.shape is not None:
            if len(got.shape) != len(want):
                self.emit(
                    "RV601", node,
                    f"rank mismatch for {callee_name}({arg_name}=...): "
                    f"contract wants {shape_str(want)}, caller delivers "
                    f"{shape_str(got.shape)}")
            elif not all(dims_match(w, g)
                         for w, g in zip(want, got.shape)):
                self.emit(
                    "RV601", node,
                    f"shape mismatch for {callee_name}({arg_name}=...): "
                    f"contract wants {shape_str(want)}, caller delivers "
                    f"{shape_str(got.shape)}")
        if (spec.dtype != "any" and got.dtype != UNKNOWN
                and got.dtype != spec.dtype):
            self.emit(
                "RV602", node,
                f"dtype drift for {callee_name}({arg_name}=...): contract "
                f"wants {spec.dtype}, caller delivers {got.dtype}")
        if spec.contiguous and got.contig == VIEW:
            self.emit(
                "RV603", node,
                f"view-aliased array for {callee_name}({arg_name}=...): "
                "the contract demands a C-contiguous owning buffer")

    def _returns_value(self, call: ast.Call,
                       specs: dict[str, ContractSpec]):
        spec = specs.get("returns")
        if spec is None:
            return None
        if spec.kind == "dims":
            vals = tuple(DimVal(name) for name in spec.dims)
            return vals[0] if len(vals) == 1 else TupleVal(vals)
        if spec.kind == "array":
            return self._from_spec(spec, call.lineno)
        return None

    # -- boundary checks (RV603/RV605) ---------------------------------
    def _check_boundary(self, call: ast.Call, leaf: str,
                        callee: FunctionInfo | None) -> None:
        if callee is None:
            from ..model import extract
            callee = extract.find_function(self.program, "." + leaf)
        if callee is None:
            return  # not defined in the analysed tree
        if callee.qualname not in self.index.functions:
            self.emit(
                "RV605", call,
                f"arrays cross the cluster/donation boundary through "
                f"{leaf}(), which carries no @array_contract")

    def _check_publish(self, call: ast.Call, env: Env):
        specs = self.index.functions.get(self.fn.qualname, {})
        arg = call.args[0] if call.args else None
        if isinstance(arg, ast.Dict):
            for k_expr, v_expr in zip(arg.keys, arg.values):
                if v_expr is None:
                    continue
                val = self.eval(v_expr, env)
                if isinstance(val, ArrayVal) and val.contig == VIEW:
                    self.emit(
                        "RV603", v_expr,
                        "view-aliased array published to "
                        "SharedArrayBundle: create() would copy it into "
                        "the segment, so later writes through the "
                        "original never reach the shared memory")
                if isinstance(k_expr, ast.Constant) and isinstance(
                        k_expr.value, str):
                    if not self._covered(k_expr.value, specs):
                        self.emit(
                            "RV605", k_expr,
                            f"array {k_expr.value!r} published to "
                            "SharedArrayBundle without an @array_contract "
                            "covering it (stamp the publishing function)")
                elif not specs:
                    self.emit(
                        "RV605", k_expr if k_expr is not None else call,
                        "dynamically-keyed SharedArrayBundle publication "
                        "in a function with no @array_contract")
        elif isinstance(arg, ast.Call):
            producer = self._resolve_callee(arg)
            if producer is not None and \
                    producer.qualname not in self.index.functions:
                self.emit(
                    "RV605", arg,
                    f"SharedArrayBundle payload produced by "
                    f"{producer.name}(), which carries no @array_contract")
        elif arg is not None:
            val = self.eval(arg, env)
            if isinstance(val, ArrayVal) and val.contig == VIEW:
                self.emit("RV603", arg,
                          "view-aliased array published to "
                          "SharedArrayBundle")
            if not specs:
                self.emit(
                    "RV605", call,
                    "SharedArrayBundle publication in a function with no "
                    "@array_contract covering its payload")
        return None

    @staticmethod
    def _covered(key: str, specs: dict[str, ContractSpec]) -> bool:
        if key in specs:
            return True
        return any(spec.kind == "plan" and key.startswith(name + "_")
                   for name, spec in specs.items())


class _EvalView:
    """The evaluator facade handed to transfer functions."""

    def __init__(self, interp: FlowInterpreter, env: Env) -> None:
        self._interp = interp
        self._env = env

    def value(self, expr: ast.expr):
        return self._interp.eval(expr, self._env)

    def dim(self, expr: ast.expr) -> str:
        return self._interp.dim(expr, self._env)

    @staticmethod
    def dim_minus_one(dim: str) -> str:
        return dim_add(dim, -1)
