"""The ``@array_contract`` trust boundary for repro-flow.

A contract states, per named array (a parameter, a published shared-
memory payload entry, or a dataclass field), the *symbolic* shape, the
exact dtype, and the contiguity status every caller must deliver.  Like
``@declares_effects`` (effects) and ``@protocol_event`` (protocols) the
decorator is a runtime no-op apart from eager spec validation -- a typo
fails the first import, not the analysis -- and the static side
(:mod:`.interp`) reads the same specs from the AST without importing
the analysed code.

Spec grammar (one string per array name)::

    "(dim, dim, ...) dtype [flag]"

* ``dim`` -- a symbolic plan dimension (``nrows``, ``nnz_far``,
  ``npoints``, ...), optionally with an integer offset (``nrows+1``),
  a plain integer (``3``), or ``?`` (statically unknown: matches any).
* ``dtype`` -- one of ``bool int32 int64 uint64 float32 float64``, or
  ``any``.
* ``flag`` -- ``C`` (must be C-contiguous and own its buffer; the
  default) or ``view-ok`` (slices/views are acceptable here).

Two special forms::

    returns="dims: nnz_far, nnz_near"

declares that the function returns a tuple of Python ints *binding*
those dimension symbols at the call site (``far_total, near_total =
born_flat_sizes(plan)`` makes ``np.zeros(far_total)`` an
``(nnz_far,)`` array to the interpreter), and::

    plan_born="plan"

declares that every :class:`~repro.plan.schema.InteractionPlan` array
field is published under this key as a ``<key>_<field>`` prefix family
(the shared-memory publication shape).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, TypeVar

#: Attribute stamped on decorated callables/classes.
CONTRACT_ATTR = "__array_contracts__"

#: Dtypes the lattice knows (see :mod:`.domain` for promotion).
DTYPE_NAMES = frozenset({
    "bool", "int32", "int64", "uint64", "float32", "float64", "any",
})

#: Decorator last-component names the static scan recognises.
MARK_NAMES = ("array_contract",)

_SPEC_RE = re.compile(
    r"^\(\s*(?P<dims>[^()]*?)\s*,?\s*\)\s+(?P<dtype>\w+)"
    r"(?:\s+(?P<flag>C|view-ok))?$")
_DIM_RE = re.compile(r"^(\?|\d+|[A-Za-z_][A-Za-z0-9_]*(?:[+-]\d+)?)$")
_DIMS_FORM_RE = re.compile(r"^dims:\s*(?P<names>[A-Za-z0-9_,\s]+)$")

_F = TypeVar("_F")


@dataclass(frozen=True)
class ContractSpec:
    """One parsed contract entry.

    ``kind`` is ``"array"`` (shape/dtype/contiguity), ``"dims"`` (a
    returns-spec binding dimension symbols), or ``"plan"`` (the
    InteractionPlan field family under a publication prefix).
    """

    kind: str
    shape: tuple[str, ...] = ()
    dtype: str = "any"
    contiguous: bool = True
    dims: tuple[str, ...] = field(default=())

    def render(self) -> str:
        if self.kind == "dims":
            return "dims: " + ", ".join(self.dims)
        if self.kind == "plan":
            return "plan"
        flag = "C" if self.contiguous else "view-ok"
        return f"({', '.join(self.shape)},) {self.dtype} {flag}"


def canon_dim(text: str) -> str:
    """Canonical form of one symbolic dimension (whitespace-free)."""
    return re.sub(r"\s+", "", text)


def dims_match(want: str, got: str) -> bool:
    """Whether a delivered dimension satisfies a contract dimension.

    ``?`` on either side matches anything (statically unknown never
    *refutes* a contract -- repro-flow reports only definite evidence).
    """
    if want == "?" or got == "?":
        return True
    return canon_dim(want) == canon_dim(got)


def parse_spec(text: str) -> ContractSpec:
    """Parse one spec string; raises :class:`ValueError` on malformed
    input (the runtime decorator calls this at import time)."""
    if not isinstance(text, str):
        raise ValueError(f"array contract spec must be a string, got "
                         f"{type(text).__name__}")
    stripped = text.strip()
    if stripped == "plan":
        return ContractSpec(kind="plan")
    m = _DIMS_FORM_RE.match(stripped)
    if m:
        names = tuple(n.strip() for n in m.group("names").split(",")
                      if n.strip())
        if not names or not all(n.isidentifier() for n in names):
            raise ValueError(f"malformed dims spec {text!r}; expected "
                             "'dims: name, name, ...'")
        return ContractSpec(kind="dims", dims=names)
    m = _SPEC_RE.match(stripped)
    if m is None:
        raise ValueError(
            f"malformed array contract spec {text!r}; expected "
            "'(dims,) dtype [C|view-ok]', 'dims: names', or 'plan'")
    raw_dims = [d.strip() for d in m.group("dims").split(",") if d.strip()]
    dims: list[str] = []
    for d in raw_dims:
        cd = canon_dim(d)
        if not _DIM_RE.match(cd):
            raise ValueError(f"malformed dimension {d!r} in spec {text!r}")
        dims.append(cd)
    if not dims:
        raise ValueError(f"spec {text!r} declares no dimensions")
    dtype = m.group("dtype")
    if dtype not in DTYPE_NAMES:
        raise ValueError(
            f"unknown dtype {dtype!r} in spec {text!r}; expected one of "
            f"{sorted(DTYPE_NAMES)}")
    return ContractSpec(kind="array", shape=tuple(dims), dtype=dtype,
                        contiguous=(m.group("flag") != "view-ok"))


def array_contract(**specs: str) -> Callable[[_F], _F]:
    """Declare the array contracts of a callable or class.

    Keyword names address parameter names, published payload keys, or
    dataclass array fields; ``returns=`` addresses the return value.
    Specs are validated eagerly; the decorated object is otherwise
    untouched (repro-flow reads the declaration statically, never by
    import)."""
    parsed = {name: parse_spec(text) for name, text in specs.items()}

    def wrap(obj: _F) -> _F:
        setattr(obj, CONTRACT_ATTR, parsed)
        return obj

    return wrap


def contracts_of(obj: object) -> dict[str, ContractSpec] | None:
    """The runtime contract table stamped on ``obj``, or None."""
    value = getattr(obj, CONTRACT_ATTR, None)
    if value is None:
        return None
    return dict(value)


# ---------------------------------------------------------------------------
# Static side: read the same decorator from the AST
# ---------------------------------------------------------------------------

def parse_contract_decorator(
    deco: ast.expr,
) -> tuple[dict[str, ContractSpec] | None, str | None]:
    """(contract table, error) for an ``@array_contract(...)`` decorator
    node; ``(None, None)`` when the decorator is something else.

    A malformed spec returns ``({}, message)`` so the checker can report
    it (RV601) instead of silently dropping the contract.
    """
    if not isinstance(deco, ast.Call):
        return None, None
    func = deco.func
    last = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    if last not in MARK_NAMES:
        return None, None
    if deco.args:
        return {}, "array_contract takes keyword arguments only"
    out: dict[str, ContractSpec] = {}
    for kw in deco.keywords:
        if kw.arg is None:
            return {}, "array_contract does not accept **kwargs"
        if not (isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)):
            return {}, f"contract for {kw.arg!r} must be a string literal"
        try:
            out[kw.arg] = parse_spec(kw.value.value)
        except ValueError as exc:
            return {}, str(exc)
    return out, None


def contracts_from_node(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef,
) -> tuple[dict[str, ContractSpec] | None, str | None]:
    """Contract table of a def/class AST node (first matching decorator
    wins; mirrors the runtime, which stamps once)."""
    for deco in node.decorator_list:
        table, err = parse_contract_decorator(deco)
        if table is not None or err is not None:
            return table, err
    return None, None
