"""repro-flow: shape/dtype/contiguity abstract interpretation (RV6xx).

A flow-sensitive abstract interpreter over the numpy dataflow of the
plan/kernel/serve/cluster modules.  It infers, per variable, a symbolic
shape in plan dimensions (``nrows``, ``nnz_far``, ``npoints``...), a
dtype from a closed promotion lattice, and a contiguity/view status,
then checks the inferred facts against the machine-readable
``@array_contract`` declarations stamped on the
:class:`~repro.plan.schema.InteractionPlan` schema and on every
executor/fleet/donation entry point:

* **RV601** ``flow-shape-mismatch`` -- delivered symbolic shape
  contradicts the callee's contract;
* **RV602** ``flow-dtype-drift`` -- silent float32/float64 promotion or
  a float64 -> float32 downcast on an energy path;
* **RV603** ``flow-view-published`` -- a view-aliased/non-contiguous
  array reaches ``SharedArrayBundle`` or a ``C``-contract;
* **RV604** ``flow-index-width`` -- an int32 index array gathers into a
  64-bit CSR/key array;
* **RV605** ``flow-uncontracted-boundary`` -- arrays cross a
  process/shm/cluster boundary without a covering contract.

Run it with ``python -m repro.verify src/repro --check flow``.  See
docs/ANALYSIS.md section 6 for the domains and the contract grammar.
"""

from .checks import ContractIndex, FlowChecker
from .contracts import (CONTRACT_ATTR, ContractSpec, array_contract,
                        contracts_of, dims_match, parse_spec)
from .domain import ArrayVal, DimVal, Env, ObjVal, TupleVal, promote
from .interp import BOUNDARY_CALLEES, FlowInterpreter

__all__ = [
    "ArrayVal", "BOUNDARY_CALLEES", "CONTRACT_ATTR", "ContractIndex",
    "ContractSpec", "DimVal", "Env", "FlowChecker", "FlowInterpreter",
    "ObjVal", "TupleVal", "array_contract", "contracts_of", "dims_match",
    "parse_spec", "promote",
]
