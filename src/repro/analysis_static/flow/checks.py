"""FlowChecker: the RV6xx pass over a repro-verify :class:`Program`.

Builds the whole-program contract index (every ``@array_contract`` on a
function or class, read from the AST), decides which modules sit on an
energy path (the float64 end-to-end guarantee, RV602), and runs the
:class:`~.interp.FlowInterpreter` over every analysed function.  The
interpreter reports definite evidence only, so the pass is safe to run
over the whole tree -- unknown facts never refute a contract.
"""

from __future__ import annotations

import re

from ..verify.program import ModuleInfo, Program
from ..verify.report import CheckContext
from .contracts import ContractSpec, contracts_from_node
from .interp import FlowInterpreter

#: Module-path suffixes that are energy paths by construction even
#: without a pure-module policy (they fold Born/E_pol float64 values).
ENERGY_PATH_SUFFIXES: tuple[str, ...] = (
    "repro/serve/sliced.py",
    "repro/core/born.py",
    "repro/core/epol.py",
)

_DIM_SYM_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*")


class ContractIndex:
    """qualname -> contract table, plus the per-class dim vocabulary."""

    def __init__(self, program: Program) -> None:
        self.functions: dict[str, dict[str, ContractSpec]] = {}
        self.classes: dict[str, dict[str, ContractSpec]] = {}
        #: class qualname -> dimension symbols its contracts mention
        #: (attribute reads of these names yield DimVal facts).
        self.class_dims: dict[str, frozenset[str]] = {}
        #: (modname, lineno, qualname, message) per malformed decorator.
        self.errors: list[tuple[str, int, str, str]] = []
        for qual, fn in program.functions.items():
            table, err = contracts_from_node(fn.node)
            if err is not None:
                self.errors.append((fn.modname, fn.lineno, qual, err))
            elif table:
                self.functions[qual] = table
        for qual, cls in program.classes.items():
            table, err = contracts_from_node(cls.node)
            if err is not None:
                self.errors.append((cls.modname, cls.lineno, qual, err))
            elif table:
                self.classes[qual] = table
                self.class_dims[qual] = _dim_vocabulary(table)


def _dim_vocabulary(table: dict[str, ContractSpec]) -> frozenset[str]:
    syms: set[str] = set()
    for spec in table.values():
        for dim in (*spec.shape, *spec.dims):
            m = _DIM_SYM_RE.match(dim)
            if m:
                syms.add(m.group(0))
    return frozenset(syms)


class FlowChecker:
    """Entry point called by :func:`repro.analysis_static.verify.run_verify`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.index = ContractIndex(program)

    def _is_energy_path(self, mod: ModuleInfo) -> bool:
        if mod.is_pure_policy() or "energy-path" in mod.policies:
            return True
        posix = mod.path.as_posix()
        return any(posix.endswith(sfx) for sfx in ENERGY_PATH_SUFFIXES)

    def run_checks(self, ctx: CheckContext) -> None:
        for modname, lineno, qual, message in sorted(self.index.errors):
            mod = self.program.modules.get(modname)
            if mod is None:
                continue
            ctx.emit("RV601", str(mod.path), lineno, 1, qual,
                     f"malformed @array_contract on {qual}: {message}")
        for qual in sorted(self.program.functions):
            fn = self.program.functions[qual]
            mod = self.program.modules.get(fn.modname)
            if mod is None:
                continue
            path = str(mod.path)

            def emit(check: str, line: int, col: int, message: str,
                     _path: str = path, _qual: str = qual) -> None:
                ctx.emit(check, _path, line, col, _qual, message)

            FlowInterpreter(
                self.program, self.index, fn,
                energy_path=self._is_energy_path(mod),
                emit=emit,
            ).run()
