"""Abstract domains for repro-flow (see docs/ANALYSIS.md section 6).

Three facts per array value, each a small lattice with an explicit
``unknown`` top that never refutes a contract:

* **shape** -- a tuple of symbolic dimensions over the plan vocabulary
  (``nrows``, ``nnz_far``, ``npoints``, integer literals, ``?``).
  Dimensions enter the analysis only through contracts (a
  ``dims:``-spec return binding, an attribute read of a contracted
  dataclass, an integer literal) -- a bare local variable name is
  *never* promoted to a dimension symbol, so two facts compare equal
  only when they provably denote the same quantity.
* **dtype** -- the closed promotion lattice below, mirroring numpy's
  rules for the dtypes the pipeline uses.  ``promote`` is total;
  ``unknown`` absorbs.
* **contiguity** -- ``C`` (freshly allocated, owns its buffer),
  ``view`` (a basic-slice/transpose/broadcast alias of another array)
  or ``?``.

Everything here is pure data -- the transfer functions live in
:mod:`.transfer`, the statement walk in :mod:`.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

UNKNOWN = "?"

#: Contiguity lattice elements.
CONTIG = "C"
VIEW = "view"

#: Integer dtypes (index arithmetic, RV604).
INT_DTYPES = frozenset({"bool", "int32", "int64", "uint64"})
#: Floating dtypes (energy values, RV602).
FLOAT_DTYPES = frozenset({"float32", "float64"})

#: Width in bits of each integer dtype (int32/int64 mixing is the RV604
#: seam; bool is 8 but never an index width concern).
INT_WIDTH = {"bool": 8, "int32": 32, "int64": 64, "uint64": 64}

_RANK = {"bool": 0, "int32": 1, "int64": 2, "uint64": 2,
         "float32": 3, "float64": 4}


def promote(a: str, b: str) -> str:
    """Numpy-style result dtype of combining ``a`` and ``b``; ``?``
    absorbs.  The one non-monotone numpy rule the pipeline can hit --
    ``int64 (+) float32 -> float64`` -- is modelled explicitly."""
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == b:
        return a
    ra, rb = _RANK.get(a), _RANK.get(b)
    if ra is None or rb is None:
        return UNKNOWN
    lo, hi = (a, b) if ra <= rb else (b, a)
    # 64-bit integers do not fit float32: numpy widens to float64.
    if hi == "float32" and lo in ("int64", "uint64"):
        return "float64"
    if {a, b} == {"int64", "uint64"}:
        return "float64"  # numpy has no common integer type for these
    return hi


@dataclass(frozen=True)
class ArrayVal:
    """Abstract array: symbolic shape, dtype, contiguity, provenance."""

    shape: tuple[str, ...] | None = None  # None == rank unknown
    dtype: str = UNKNOWN
    contig: str = UNKNOWN
    #: True when the fact came from (or through) an @array_contract.
    contracted: bool = False
    #: Line the value was created on (finding anchor for derived facts).
    origin: int = 0

    def with_(self, **kw) -> "ArrayVal":
        return replace(self, **kw)

    def dim(self, axis: int = 0) -> str:
        if self.shape is None or axis >= len(self.shape):
            return UNKNOWN
        return self.shape[axis]


@dataclass(frozen=True)
class DimVal:
    """Abstract Python int carrying a symbolic dimension expression."""

    expr: str = UNKNOWN


@dataclass(frozen=True)
class ObjVal:
    """Instance of a contracted class (attribute reads yield facts)."""

    class_qual: str


@dataclass(frozen=True)
class TupleVal:
    """Fixed-arity tuple of abstract values (``dims:`` returns,
    parallel assignment)."""

    items: tuple = ()


@dataclass
class Env:
    """One flow-sensitive binding environment (variable -> fact)."""

    vars: dict = field(default_factory=dict)

    def copy(self) -> "Env":
        return Env(vars=dict(self.vars))

    def get(self, name: str):
        return self.vars.get(name)

    def set(self, name: str, value) -> None:
        if value is None:
            self.vars.pop(name, None)
        else:
            self.vars[name] = value

    def merge(self, other: "Env") -> "Env":
        """Join of two branch environments: keep only bindings both
        branches agree on (anything else becomes unknown-by-absence)."""
        out = {}
        for name, val in self.vars.items():
            if other.vars.get(name) == val:
                out[name] = val
        return Env(vars=out)


def shape_str(shape: tuple[str, ...] | None) -> str:
    if shape is None:
        return "(?)"
    return "(" + ", ".join(shape) + ("," if len(shape) == 1 else "") + ")"
