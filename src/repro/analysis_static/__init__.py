"""Determinism & race analysis suite.

The repo's headline guarantee -- serial, simulated-MPI and real
process-pool backends produce bit-compatible energies -- rests on three
conventions:

1. every cross-rank reduction uses the fixed rank-order sums of
   :func:`repro.parallel.simmpi.collectives.reduce_values`;
2. every shared-memory segment has a single writer rank between barriers;
3. every rank issues the identical collective sequence.

This package makes those conventions *executable*:

* :mod:`.linter` / :mod:`.rules` -- ``repro-lint``, an AST pass with
  repo-specific rules (REP001..REP007), driven by ``python -m repro.lint``;
* :mod:`.verify` -- ``repro-verify``, the whole-program pass
  (interprocedural effect inference, shm typestate, static
  collective-matching), driven by ``python -m repro.verify``;
* :mod:`.baseline` -- the shared fingerprint-baseline ratchet used by
  both CLIs' ``--baseline`` flags;
* :mod:`.races` -- an opt-in shadow-tracking write-intent recorder for
  :class:`~repro.parallel.procpool.shm.SharedArrayBundle` /
  :class:`~repro.parallel.procpool.shm.ScratchBuffer` that reports
  overlapping same-epoch writes from different ranks;
* :mod:`.ordering` -- a collective-ordering verifier that diffs each
  rank's collective call sequence at run end;
* :mod:`.checks` -- the ``REPRO_CHECKS=1`` gate and the combined
  :class:`~.checks.DeterminismReport`.

See ``docs/ANALYSIS.md`` for the rule catalogue and the epoch model.
"""

from .baseline import BaselineError, load_baseline, write_baseline
from .checks import (DeterminismReport, ReproCheckError, checks_enabled)
from .linter import Finding, lint_file, lint_paths, lint_source
from .ordering import (CollectiveLog, CollectiveRecord, OrderingReport,
                       diff_collective_logs)
from .races import (RaceFinding, TrackedArray, WriteIntent,
                    WriteIntentTracker, find_races, tracked_view)
from .rules import RULES, Rule

__all__ = [
    "BaselineError",
    "CollectiveLog",
    "CollectiveRecord",
    "DeterminismReport",
    "Finding",
    "OrderingReport",
    "RULES",
    "RaceFinding",
    "ReproCheckError",
    "Rule",
    "TrackedArray",
    "WriteIntent",
    "WriteIntentTracker",
    "checks_enabled",
    "diff_collective_logs",
    "find_races",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "tracked_view",
    "write_baseline",
]
