"""The ``REPRO_CHECKS`` gate and the combined determinism report.

Setting ``REPRO_CHECKS=1`` in the environment arms the runtime checkers:
the procpool workers shadow-track shared-memory write intents
(:mod:`.races`) and log their collective sequences (:mod:`.ordering`); the
parent merges both at run end and raises :class:`ReproCheckError` on any
finding, so CI runs with the flag set fail loudly instead of silently
producing irreproducible numbers.  The simulated engine uses the same gate
to attach a structured ordering report to collective-mismatch deadlocks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .ordering import OrderingReport
from .races import RaceFinding

#: Environment variable arming the runtime determinism checkers.
ENV_VAR = "REPRO_CHECKS"

_FALSY = frozenset({"", "0", "false", "off", "no"})


def checks_enabled() -> bool:
    """Whether the runtime determinism checkers are armed."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


class ReproCheckError(RuntimeError):
    """A runtime determinism checker found a violation."""


@dataclass
class DeterminismReport:
    """Merged outcome of one checked run: races + collective ordering."""

    nranks: int
    races: list[RaceFinding] = field(default_factory=list)
    ordering: OrderingReport | None = None
    intents_recorded: int = 0

    @property
    def ok(self) -> bool:
        return not self.races and (self.ordering is None
                                   or self.ordering.ok)

    def format(self) -> str:
        lines = [f"determinism checks over {self.nranks} rank(s): "
                 f"{'ok' if self.ok else 'FAILED'} "
                 f"({self.intents_recorded} write intent(s), "
                 f"{len(self.races)} race(s))"]
        for race in self.races:
            lines.append(race.describe())
        if self.ordering is not None:
            lines.append(self.ordering.format())
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ReproCheckError(self.format())
