"""Collective-ordering verifier.

Every rank of an SPMD run must issue the identical sequence of collective
calls; a divergence is a deadlock on real MPI and a
:class:`~repro.parallel.simmpi.requests.DeadlockError` on the simulated
engine.  This module records each rank's sequence as
:class:`CollectiveRecord` entries -- (kind, op, root, dtype, shape) -- and
:func:`diff_collective_logs` diffs the sequences at run end, turning a
would-be hang into a structured report naming the first divergent call.

Payload normalisation: ``allgather`` legitimately carries different
per-rank shapes (variable segment lengths) so only its dtype is recorded;
``bcast``/``gather`` payloads are root-defined (non-roots often pass
None) so neither dtype nor shape is recorded for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

#: Kinds whose per-rank payload shape legitimately differs.
_SHAPE_FREE = frozenset({"allgather"})
#: Kinds whose payload is root-defined (ignore payload entirely).
_PAYLOAD_FREE = frozenset({"bcast", "gather", "barrier"})


def describe_payload(data: Any) -> tuple[str | None, tuple[int, ...] | None]:
    """(dtype, shape) of a collective payload, for sequence comparison."""
    if data is None:
        return (None, None)
    if isinstance(data, np.ndarray):
        return (str(data.dtype), tuple(int(d) for d in data.shape))
    if isinstance(data, (bool, np.bool_)):
        return ("bool", ())
    if isinstance(data, (int, np.integer)):
        return ("int", ())
    if isinstance(data, (float, np.floating)):
        return ("float", ())
    return (type(data).__name__, None)


@dataclass(frozen=True)
class CollectiveRecord:
    """One collective call as seen by one rank."""

    kind: str
    op: str | None = None
    root: int | None = None
    dtype: str | None = None
    shape: tuple[int, ...] | None = None

    def format(self) -> str:
        parts = [self.kind]
        if self.op is not None:
            parts.append(f"op={self.op}")
        if self.root is not None:
            parts.append(f"root={self.root}")
        if self.dtype is not None:
            parts.append(f"dtype={self.dtype}")
        if self.shape is not None:
            parts.append(f"shape={self.shape}")
        return f"<{' '.join(parts)}>"


class CollectiveLog:
    """Ordered record of one rank's collective calls."""

    def __init__(self, rank: int) -> None:
        self.rank = int(rank)
        self.records: list[CollectiveRecord] = []

    def record(self, kind: str, *, op: str | None = None,
               root: int | None = None, data: Any = None) -> None:
        dtype: str | None = None
        shape: tuple[int, ...] | None = None
        if kind not in _PAYLOAD_FREE:
            dtype, shape = describe_payload(data)
            if kind in _SHAPE_FREE:
                shape = None
        self.records.append(CollectiveRecord(
            kind=kind, op=op, root=root, dtype=dtype, shape=shape))

    def __len__(self) -> int:
        return len(self.records)

    # -- cross-process transport ---------------------------------------
    def payload(self) -> list[tuple]:
        return [(r.kind, r.op, r.root, r.dtype, r.shape)
                for r in self.records]

    @classmethod
    def from_payload(cls, rank: int,
                     payload: Iterable[tuple]) -> "CollectiveLog":
        log = cls(rank)
        for kind, op, root, dtype, shape in payload:
            log.records.append(CollectiveRecord(
                kind=kind, op=op, root=root, dtype=dtype,
                shape=tuple(shape) if shape is not None else None))
        return log


@dataclass(frozen=True)
class OrderingMismatch:
    """First-class description of one divergent sequence position."""

    index: int
    per_rank: dict[int, CollectiveRecord | None]

    def format(self) -> str:
        lines = [f"call #{self.index}:"]
        for rank in sorted(self.per_rank):
            rec = self.per_rank[rank]
            lines.append(f"  rank {rank}: "
                         f"{rec.format() if rec else '<no collective>'}")
        return "\n".join(lines)


@dataclass
class OrderingReport:
    """Result of diffing every rank's collective sequence."""

    nranks: int
    length: int
    mismatches: list[OrderingMismatch]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        if self.ok:
            return (f"collective ordering ok: {self.nranks} rank(s), "
                    f"{self.length} collective call(s) in lockstep")
        head = (f"collective-ordering mismatch across {self.nranks} "
                f"rank(s):")
        return "\n".join([head] + [m.format() for m in self.mismatches])


def diff_collective_logs(logs: Sequence[CollectiveLog],
                         max_mismatches: int = 5) -> OrderingReport:
    """Diff per-rank collective sequences; every divergent position (up to
    ``max_mismatches``) becomes an :class:`OrderingMismatch`."""
    if not logs:
        return OrderingReport(nranks=0, length=0, mismatches=[])
    length = max(len(log) for log in logs)
    mismatches: list[OrderingMismatch] = []
    for i in range(length):
        per_rank = {log.rank: (log.records[i] if i < len(log.records)
                               else None) for log in logs}
        if len(set(per_rank.values())) > 1:
            mismatches.append(OrderingMismatch(index=i, per_rank=per_rank))
            if len(mismatches) >= max_mismatches:
                break
    return OrderingReport(nranks=len(logs), length=length,
                          mismatches=mismatches)
