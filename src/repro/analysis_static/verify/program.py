"""Whole-program model for repro-verify.

Loads every module under the analysed roots *without importing them*
(stdlib ``ast`` only, same constraint as repro-lint), and builds:

* a module table with resolved import aliases and re-exports,
* a function table keyed by dotted qualname (nested functions and
  methods included),
* a class table with method dispatch maps and inferred attribute types,
* a call resolver that maps ``ast.Call`` nodes to qualnames where the
  receiver is decidable (module attribute chains, ``self.``/``cls.``
  dispatch, locals whose type is inferred from annotations or
  constructor/classmethod-constructor assignments).

Resolution is deliberately conservative: anything undecidable resolves
to an :class:`Ref` of kind ``unknown`` and downstream analyses treat it
as effect-free rather than guessing.  The checked
``@declares_effects`` boundaries (see :mod:`.annotations`) exist
precisely so the important seams do not depend on deep resolution.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .annotations import validate_effect

_POLICY_RE = re.compile(r"#\s*repro-verify:\s*policy=([a-z-]+)")

#: Module-path suffixes whose functions must be provably effect-free.
#: These are the batched executors and the analytic energy layer -- the
#: precondition for the bit-identity claims in docs/ALGORITHMS §6c.
PURE_MODULE_SUFFIXES: tuple[str, ...] = (
    "repro/plan/executor.py",
    "repro/core/energy.py",
    "repro/core/gbmodels.py",
    "repro/core/integrals.py",
)

#: Module-path suffixes that *implement* collectives (their bodies are
#: naturally rank-dependent) and are exempt from collective-matching.
COLLECTIVE_HOME_SUFFIXES: tuple[str, ...] = (
    "parallel/procpool/backend.py",
    "parallel/procpool/pool.py",
)
COLLECTIVE_HOME_PARTS: tuple[str, ...] = ("simmpi",)


@dataclass(frozen=True)
class Ref:
    """Result of resolving a name or call target."""

    kind: str  # "function" | "class" | "module" | "external" | "unknown"
    target: str  # qualname (function/class/module) or dotted external name
    attr: str | None = None  # attribute name for unresolved attribute calls


@dataclass
class FunctionInfo:
    qualname: str
    modname: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None  # owning class qualname, None for free functions
    lineno: int
    declared: frozenset[str] | None = None  # @declares_effects(...) if present
    decl_line: int | None = None
    bad_decl: str | None = None  # malformed declaration message
    is_classmethod: bool = False
    is_staticmethod: bool = False
    #: Function-local (lazy) imports: local name -> dotted target.
    imports: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    qualname: str
    modname: str
    name: str
    node: ast.ClassDef
    lineno: int
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    bases: list[str] = field(default_factory=list)  # resolvable base exprs (dotted text)
    attr_types: dict[str, str] = field(default_factory=dict)  # self.X -> class qualname


@dataclass
class ModuleInfo:
    path: Path
    modname: str
    tree: ast.Module
    source: str
    lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)  # local name -> dotted target
    defs: dict[str, str] = field(default_factory=dict)  # top-level name -> qualname
    policies: frozenset[str] = frozenset()
    is_package: bool = False

    def is_pure_policy(self) -> bool:
        if "pure" in self.policies:
            return True
        posix = self.path.as_posix()
        return any(posix.endswith(sfx) for sfx in PURE_MODULE_SUFFIXES)

    def is_collective_home(self) -> bool:
        if "collective-home" in self.policies:
            return True
        posix = self.path.as_posix()
        if any(posix.endswith(sfx) for sfx in COLLECTIVE_HOME_SUFFIXES):
            return True
        return any(part in self.path.parts for part in COLLECTIVE_HOME_PARTS)


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``.

    ``.../src/repro/plan/builder.py`` maps to ``repro.plan.builder``;
    files outside a recognisable package root (test fixtures) map to
    their stem so fixtures analyse standalone.
    """
    parts = list(path.parts)
    if "src" in parts:
        rel = parts[parts.index("src") + 1 :]
        dotted = ".".join(rel)
        for sfx in (".py",):
            if dotted.endswith(sfx):
                dotted = dotted[: -len(sfx)]
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        return dotted
    # Walk up through package dirs (containing __init__.py).
    names = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        names.insert(0, parent.name)
        parent = parent.parent
    return ".".join(names) if names else path.stem


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py":
            yield p


def _module_policies(source: str) -> frozenset[str]:
    found = set()
    for line in source.splitlines()[:15]:
        m = _POLICY_RE.search(line)
        if m:
            found.add(m.group(1))
    return frozenset(found)


def _dotted_text(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chain as dotted text, None if not a pure chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def receiver_text(node: ast.expr) -> str | None:
    """Stable text for a call receiver (``bundle``, ``pub.bundle``,
    ``self._shm``); None for receivers that are not name/attr chains."""
    return _dotted_text(node)


def _annotation_names(ann: ast.expr | None) -> list[str]:
    """Candidate class names referenced by an annotation expression.

    Handles ``C``, ``"C"``, ``C | None``, ``Optional[C]``, ``mod.C``.
    """
    if ann is None:
        return []
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return []
    if isinstance(ann, ast.Name):
        return [ann.id]
    if isinstance(ann, ast.Attribute):
        dotted = _dotted_text(ann)
        return [dotted] if dotted else []
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_names(ann.left) + _annotation_names(ann.right)
    if isinstance(ann, ast.Subscript):
        base = _annotation_names(ann.value)
        if base and base[0].split(".")[-1] == "Optional":
            return _annotation_names(ann.slice)
        return []
    return []


def _own_import_stmts(fn_node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.stmt]:
    """Import statements in ``fn_node``'s own body (nested defs excluded)."""
    out: list[ast.stmt] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                out.append(child)
            walk(child)

    walk(fn_node)
    return out


def _parse_declaration(
    deco: ast.expr,
) -> tuple[frozenset[str] | None, str | None]:
    """(declared set, error) for a ``@declares_effects(...)`` decorator,
    (None, None) if the decorator is something else."""
    if not isinstance(deco, ast.Call):
        return None, None
    name = _dotted_text(deco.func)
    if name is None or name.split(".")[-1] != "declares_effects":
        return None, None
    effects: set[str] = set()
    if deco.keywords:
        return frozenset(), "declares_effects takes no keyword arguments"
    for arg in deco.args:
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return frozenset(), "declares_effects arguments must be string literals"
        try:
            effects.add(validate_effect(arg.value))
        except ValueError as exc:
            return frozenset(), str(exc)
    return frozenset(effects), None


class Program:
    """The loaded whole-program model."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._local_types: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Program":
        prog = cls()
        for path in iter_python_files(paths):
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            modname = module_name_for(path)
            mod = ModuleInfo(
                path=path,
                modname=modname,
                tree=tree,
                source=source,
                lines=source.splitlines(),
                policies=_module_policies(source),
                is_package=path.name == "__init__.py",
            )
            prog.modules[modname] = mod
        for mod in prog.modules.values():
            prog._index_module(mod)
        for info in prog.classes.values():
            prog._infer_attr_types(info)
        return prog

    @staticmethod
    def _collect_imports(
        mod: ModuleInfo, stmts: Iterable[ast.stmt], into: dict[str, str]
    ) -> None:
        pkg_parts = mod.modname.split(".")
        for node in stmts:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        into[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        into[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Level 1 anchors at the containing package: for
                    # repro/plan/builder.py that is repro.plan; for the
                    # package module repro/plan/__init__.py it is repro.plan
                    # itself.  Each further level drops one component.
                    container = pkg_parts if mod.is_package else pkg_parts[:-1]
                    drop = node.level - 1
                    anchor = container[: len(container) - drop] if drop else container
                    base = ".".join(anchor + ([node.module] if node.module else []))
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    into[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_module(self, mod: ModuleInfo) -> None:
        self._collect_imports(mod, mod.tree.body, mod.imports)
        self._index_scope(mod, mod.tree.body, prefix=mod.modname, cls=None)

    def _index_scope(
        self,
        mod: ModuleInfo,
        body: Iterable[ast.stmt],
        prefix: str,
        cls: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                declared: frozenset[str] | None = None
                decl_line: int | None = None
                bad_decl: str | None = None
                is_cm = False
                is_sm = False
                for deco in node.decorator_list:
                    d, err = _parse_declaration(deco)
                    if d is not None or err is not None:
                        declared, decl_line, bad_decl = d, deco.lineno, err
                    dn = _dotted_text(deco)
                    if dn == "classmethod":
                        is_cm = True
                    elif dn == "staticmethod":
                        is_sm = True
                info = FunctionInfo(
                    qualname=qual,
                    modname=mod.modname,
                    name=node.name,
                    node=node,
                    cls=cls,
                    lineno=node.lineno,
                    declared=declared,
                    decl_line=decl_line,
                    bad_decl=bad_decl,
                    is_classmethod=is_cm,
                    is_staticmethod=is_sm,
                )
                # Lazy (function-level) imports resolve like module ones.
                self._collect_imports(mod, _own_import_stmts(node), info.imports)
                self.functions[qual] = info
                if cls is not None and cls in self.classes:
                    self.classes[cls].methods[node.name] = qual
                if prefix == mod.modname:
                    mod.defs[node.name] = qual
                # Nested defs analyse as their own functions.
                self._index_scope(mod, node.body, prefix=qual, cls=None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}.{node.name}"
                bases = [b for b in (_dotted_text(x) for x in node.bases) if b]
                cinfo = ClassInfo(
                    qualname=qual,
                    modname=mod.modname,
                    name=node.name,
                    node=node,
                    lineno=node.lineno,
                    bases=bases,
                )
                self.classes[qual] = cinfo
                if prefix == mod.modname:
                    mod.defs[node.name] = qual
                self._index_scope(mod, node.body, prefix=qual, cls=qual)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Ref:
        """Resolve a dotted path against the module/def tables."""
        if _depth > 12:
            return Ref("unknown", dotted)
        if dotted in self.functions:
            return Ref("function", dotted)
        if dotted in self.classes:
            return Ref("class", dotted)
        if dotted in self.modules:
            return Ref("module", dotted)
        parts = dotted.split(".")
        # Longest known module prefix.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                mod = self.modules[prefix]
                head, rest = parts[cut], parts[cut + 1 :]
                ref = self._resolve_in_module(mod, head, _depth + 1)
                if not rest:
                    return ref
                if ref.kind == "class":
                    return self._resolve_class_attr(ref.target, rest, dotted)
                if ref.kind == "module":
                    return self.resolve_dotted(".".join([ref.target] + rest), _depth + 1)
                if ref.kind == "external":
                    return Ref("external", ".".join([ref.target] + rest))
                return Ref("unknown", dotted)
        root = parts[0]
        if root in self.modules or any(m.startswith(root + ".") for m in self.modules):
            return Ref("unknown", dotted)
        return Ref("external", dotted)

    def _resolve_class_attr(self, class_qual: str, rest: list[str], dotted: str) -> Ref:
        if len(rest) == 1:
            fn = self.lookup_method(class_qual, rest[0])
            if fn is not None:
                return Ref("function", fn.qualname)
        return Ref("unknown", dotted, attr=rest[-1])

    def _resolve_in_module(self, mod: ModuleInfo, name: str, depth: int) -> Ref:
        if name in mod.defs:
            return self.resolve_dotted(mod.defs[name], depth)
        if name in mod.imports:
            return self.resolve_dotted(mod.imports[name], depth)
        sub = f"{mod.modname}.{name}"
        if sub in self.modules:
            return Ref("module", sub)
        return Ref("unknown", f"{mod.modname}.{name}")

    def resolve_name(self, mod: ModuleInfo, name: str) -> Ref:
        """Resolve a bare name used at module scope of ``mod``."""
        if name in mod.defs:
            return self.resolve_dotted(mod.defs[name])
        if name in mod.imports:
            return self.resolve_dotted(mod.imports[name])
        import builtins

        if hasattr(builtins, name):
            return Ref("external", f"builtins.{name}")
        return Ref("unknown", f"{mod.modname}.{name}")

    def lookup_method(self, class_qual: str, attr: str, _depth: int = 0) -> FunctionInfo | None:
        if _depth > 8 or class_qual not in self.classes:
            return None
        cinfo = self.classes[class_qual]
        if attr in cinfo.methods:
            return self.functions.get(cinfo.methods[attr])
        mod = self.modules.get(cinfo.modname)
        for base in cinfo.bases:
            if mod is None:
                break
            parts = base.split(".")
            ref = self._resolve_in_module(mod, parts[0], 0)
            if ref.kind == "module" and len(parts) > 1:
                ref = self.resolve_dotted(".".join([ref.target] + parts[1:]))
            if ref.kind == "class":
                found = self.lookup_method(ref.target, attr, _depth + 1)
                if found is not None:
                    return found
        return None

    # ------------------------------------------------------------------
    # Local type inference
    # ------------------------------------------------------------------
    def class_of_expr_type(self, mod: ModuleInfo, names: list[str]) -> str | None:
        for name in names:
            parts = name.split(".")
            ref = self._resolve_in_module(mod, parts[0], 0)
            if ref.kind == "module" and len(parts) > 1:
                ref = self.resolve_dotted(".".join([ref.target] + parts[1:]))
            elif len(parts) > 1 and ref.kind == "class":
                pass
            if ref.kind == "class":
                return ref.target
        return None

    def constructed_class(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Class qualname if ``call`` constructs (or classmethod-constructs)
        an analysed class, else None."""
        ref = self.resolve_call(fn, call)
        if ref.kind == "class":
            return ref.target
        if ref.kind == "function":
            callee = self.functions[ref.target]
            if callee.cls is not None and callee.is_classmethod:
                returns = _annotation_names(callee.node.returns)
                cname = self.classes[callee.cls].name if callee.cls in self.classes else ""
                if any(r.split(".")[-1] in (cname, "Self") for r in returns) or not returns:
                    return callee.cls
            returns = _annotation_names(callee.node.returns)
            cmod = self.modules.get(callee.modname)
            if cmod is not None:
                typ = self.class_of_expr_type(cmod, returns)
                if typ is not None:
                    return typ
        return None

    def local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Map of local variable name -> class qualname, from parameter
        annotations and direct constructor assignments."""
        cached = self._local_types.get(fn.qualname)
        if cached is not None:
            return cached
        mod = self.modules[fn.modname]
        env: dict[str, str] = {}
        args = fn.node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for a in all_args:
            typ = self.class_of_expr_type(mod, _annotation_names(a.annotation))
            if typ is not None:
                env[a.arg] = typ
        if fn.cls is not None and not fn.is_staticmethod and all_args:
            env.setdefault(all_args[0].arg, fn.cls)
        # Publish the partial env before scanning assignments: resolving a
        # constructor call can re-enter local_types for this same function
        # (receiver typing), which must see the in-progress map, not recurse.
        self._local_types[fn.qualname] = env
        for node in ast.walk(fn.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.target is not None:
                targets = [node.target]
                value = node.value
                if isinstance(node.target, ast.Name):
                    typ = self.class_of_expr_type(mod, _annotation_names(node.annotation))
                    if typ is not None:
                        env[node.target.id] = typ
            if value is not None and isinstance(value, ast.Call):
                typ = self.constructed_class(fn, value)
                if typ is not None:
                    for t in targets:
                        if isinstance(t, ast.Name):
                            env.setdefault(t.id, typ)
        self._local_types[fn.qualname] = env
        return env

    def _infer_attr_types(self, cinfo: ClassInfo) -> None:
        """Infer ``self.X`` attribute types from annotations and
        ``__init__``-style constructor assignments."""
        mod = self.modules.get(cinfo.modname)
        if mod is None:
            return
        for stmt in cinfo.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                typ = self.class_of_expr_type(mod, _annotation_names(stmt.annotation))
                if typ is not None:
                    cinfo.attr_types[stmt.target.id] = typ
        for mname in cinfo.methods.values():
            fn = self.functions.get(mname)
            if fn is None:
                continue
            env = self.local_types(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        typ: str | None = None
                        if isinstance(node, ast.AnnAssign):
                            typ = self.class_of_expr_type(mod, _annotation_names(node.annotation))
                        value = node.value
                        if typ is None and isinstance(value, ast.Name):
                            typ = env.get(value.id)
                        if typ is None and isinstance(value, ast.Call):
                            typ = self.constructed_class(fn, value)
                        if typ is not None:
                            cinfo.attr_types.setdefault(t.attr, typ)

    def type_of_receiver(self, fn: FunctionInfo, recv: ast.expr) -> str | None:
        """Class qualname of a call receiver expression, where decidable."""
        env = self.local_types(fn)
        if isinstance(recv, ast.Name):
            return env.get(recv.id)
        if isinstance(recv, ast.Attribute) and isinstance(recv.value, ast.Name):
            base_t = env.get(recv.value.id)
            if base_t is not None and base_t in self.classes:
                return self.classes[base_t].attr_types.get(recv.attr)
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_name_in(self, fn: FunctionInfo, name: str) -> Ref:
        """Resolve a bare name in ``fn``'s scope (lazy imports first)."""
        if name in fn.imports:
            return self.resolve_dotted(fn.imports[name])
        return self.resolve_name(self.modules[fn.modname], name)

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> Ref:
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name_in(fn, func.id)
        if isinstance(func, ast.Attribute):
            # Typed receiver: method dispatch by class.
            recv_type = self.type_of_receiver(fn, func.value)
            if recv_type is not None:
                meth = self.lookup_method(recv_type, func.attr)
                if meth is not None:
                    return Ref("function", meth.qualname)
                return Ref("unknown", f"{recv_type}.{func.attr}", attr=func.attr)
            dotted = _dotted_text(func)
            if dotted is not None:
                parts = dotted.split(".")
                head = self.resolve_name_in(fn, parts[0])
                if head.kind in ("module", "external", "class"):
                    return self.resolve_dotted(".".join([head.target] + parts[1:]))
            return Ref("unknown", dotted or f"<expr>.{func.attr}", attr=func.attr)
        return Ref("unknown", "<call>")
