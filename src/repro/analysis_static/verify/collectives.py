"""Static collective-matching (checks RV301 / RV302).

The paper's Fig. 4 pipeline only terminates if *every* rank issues the
same collective sequence.  The runtime verifier (PR 2) checks one
execution; this pass checks all paths of every analysed function:

1. **Rank taint**: parameter names ``rank``/``my_rank``, any ``.rank``
   attribute read, and anything assigned from a tainted expression
   (iterated to a fixpoint over the function's assignments).

2. **RV301**: an ``if`` whose test is rank-tainted and whose arms emit
   different collective *kind multisets* (direct backend calls plus the
   ``COLLECTIVE(kind)`` summaries of resolved callees -- the
   interprocedural part).  An arm that terminates (return/raise) while
   the code after the branch still emits collectives counts as that arm
   skipping them.

3. **RV302**: a loop whose trip count is rank-tainted with a collective
   emission in its body -- per-rank iteration counts desynchronise the
   schedule even when each iteration is symmetric.

Multisets (not ordered sequences) are compared so that a callee whose
internal emission order is unknown does not fabricate divergence.
Collective *implementation* modules (procpool backend/pool, simmpi, or
``# repro-verify: policy=collective-home``) are exempt: their bodies
are rank-dependent by construction.
"""

from __future__ import annotations

import ast
from collections import Counter

from .effects import BACKENDISH_NAMES, COLLECTIVE_ATTRS, EffectAnalysis
from .program import FunctionInfo, Program, receiver_text
from .report import CheckContext


def _contains_rank_read(node: ast.AST, tainted: set[str]) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id in tainted:
            return True
        if isinstance(n, ast.Attribute) and n.attr in ("rank", "my_rank"):
            return True
    return False


class CollectiveChecker:
    def __init__(self, program: Program, effects: EffectAnalysis) -> None:
        self.program = program
        self.effects = effects

    def run_checks(self, ctx: CheckContext) -> None:
        for fn in self.program.functions.values():
            mod = self.program.modules[fn.modname]
            if mod.is_collective_home():
                continue
            self._check_function(fn, str(mod.path), ctx)

    # ------------------------------------------------------------------
    def _taint(self, fn: FunctionInfo) -> set[str]:
        args = fn.node.args
        tainted = {
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg in ("rank", "my_rank")
        }
        assigns: list[tuple[str, ast.expr]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        assigns.append((t.id, node.value))
                    elif isinstance(t, (ast.Tuple, ast.List)):
                        for el in t.elts:
                            if isinstance(el, ast.Name):
                                assigns.append((el.id, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.append((node.target.id, node.value))
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for name, value in assigns:
                if name not in tainted and _contains_rank_read(value, tainted):
                    tainted.add(name)
                    changed = True
        return tainted

    # ------------------------------------------------------------------
    def _call_kinds(self, fn: FunctionInfo, call: ast.Call) -> list[str]:
        """Collective kinds emitted by one call expression."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in COLLECTIVE_ATTRS:
            recv = receiver_text(func.value)
            if recv is not None:
                base = recv.split(".")[0]
                typed = self.program.type_of_receiver(fn, func.value)
                if base in BACKENDISH_NAMES or recv.split(".")[-1] in BACKENDISH_NAMES:
                    if typed is None or self._typed_is_backendish(typed, func.attr):
                        return [func.attr]
                if typed is not None and self._typed_is_backendish(typed, func.attr):
                    return [func.attr]
        ref = self.program.resolve_call(fn, call)
        if ref.kind == "function":
            kinds: list[str] = []
            for eff in sorted(self.effects.summary(ref.target)):
                if eff.startswith("COLLECTIVE(") and eff.endswith(")"):
                    kinds.append(eff[len("COLLECTIVE("):-1])
            return kinds
        return []

    def _typed_is_backendish(self, class_qual: str, attr: str) -> bool:
        meth = self.program.lookup_method(class_qual, attr)
        if meth is None:
            return False
        summ = self.effects.summary(meth.qualname)
        return any(e.startswith("COLLECTIVE(") for e in summ)

    def _stmts_kinds(self, fn: FunctionInfo, stmts: list[ast.stmt]) -> "Counter[str]":
        out: Counter[str] = Counter()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(node, ast.Call):
                    out.update(self._call_kinds(fn, node))
        return out

    @staticmethod
    def _terminates(stmts: list[ast.stmt]) -> bool:
        return bool(stmts) and isinstance(
            stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))

    # ------------------------------------------------------------------
    def _check_function(self, fn: FunctionInfo, path: str, ctx: CheckContext) -> None:
        tainted = self._taint(fn)
        if not tainted and not any(
            isinstance(n, ast.Attribute) and n.attr in ("rank", "my_rank")
            for n in ast.walk(fn.node)
        ):
            return
        self._walk_body(fn, list(fn.node.body), path, ctx, tainted)

    def _walk_body(
        self,
        fn: FunctionInfo,
        body: list[ast.stmt],
        path: str,
        ctx: CheckContext,
        tainted: set[str],
    ) -> None:
        for idx, stmt in enumerate(body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If) and _contains_rank_read(stmt.test, tainted):
                then_kinds = self._stmts_kinds(fn, stmt.body)
                else_kinds = self._stmts_kinds(fn, stmt.orelse)
                rest = body[idx + 1:]
                rest_kinds = self._stmts_kinds(fn, rest)
                eff_then, eff_else = Counter(then_kinds), Counter(else_kinds)
                if rest_kinds:
                    if not self._terminates(stmt.body):
                        eff_then += rest_kinds
                    if not self._terminates(stmt.orelse) or not stmt.orelse:
                        eff_else += rest_kinds
                if eff_then != eff_else:
                    ctx.emit(
                        "RV301", path, stmt.lineno, stmt.col_offset + 1,
                        fn.qualname,
                        "rank-dependent branch arms emit different collective "
                        f"sequences: if-arm {sorted(eff_then.elements())} vs "
                        f"else/fall-through {sorted(eff_else.elements())}")
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                ctrl = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
                if _contains_rank_read(ctrl, tainted):
                    loop_kinds = self._stmts_kinds(fn, stmt.body)
                    if loop_kinds:
                        ctx.emit(
                            "RV302", path, stmt.lineno, stmt.col_offset + 1,
                            fn.qualname,
                            "collective(s) "
                            f"{sorted(loop_kinds.elements())} inside a loop "
                            "with a rank-dependent trip count")
            # Recurse into compound statements.
            for field_body in self._sub_bodies(stmt):
                self._walk_body(fn, field_body, path, ctx, tainted)

    @staticmethod
    def _sub_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        out: list[list[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, name, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                out.append(sub)
        handlers = getattr(stmt, "handlers", None)
        if handlers:
            for h in handlers:
                out.append(h.body)
        return out
