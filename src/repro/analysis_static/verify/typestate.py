"""Typestate verification of the shared-memory segment protocol.

The protocol (docs/ANALYSIS.md):

    create -> publish -> attach -> close -> unlink
                                   ^^^^^    ^^^^^^
                                   every    exactly once,
                                   mapper   owner only

Per function we track local bindings that provably hold a segment --
``SharedArrayBundle.create/attach``, ``ScratchBuffer.create/attach``,
raw ``SharedMemory(...)`` constructions, and calls to helpers whose
return annotation is ``SharedMemory`` -- then check the event order of
``close``/``unlink``/use sites over a linear (source-order)
approximation of control flow:

* RV201  attach (unpinned) or create with no close/handoff on any path
* RV202  segment used after its close
* RV203  unlink issued on an attach-side binding
* RV204  more than one lexical unlink site for one owned binding
* RV205  unlink ordered before close (also flagged for untyped
         receivers: any receiver expression with both calls in one
         function, e.g. ``pub.bundle``)
* RV206  a class stores a segment in an attribute but no method closes
         or hands it off

Escape analysis discharges local obligations: a binding that is
returned, yielded, stored into an attribute/container, or passed to a
callee becomes that owner's responsibility (RV206 picks up the
attribute case).  Pinned attaches (``pin=True``, the process-lifetime
mapping) are exempt from RV201 by design -- the OS reclaims the mapping
at process death.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .effects import iter_own_nodes, shared_memory_creates
from .program import ClassInfo, FunctionInfo, Program, receiver_text
from .report import CheckContext

_SHARED_MEMORY_EXTERNAL = "multiprocessing.shared_memory.SharedMemory"
_SHM_CLASS_NAMES = frozenset({"SharedArrayBundle", "ScratchBuffer"})
#: ScratchBuffer.attach always pins (workers keep it mapped for life).
_ALWAYS_PINNED_ATTACH_CLASSES = frozenset({"ScratchBuffer"})


def _is_shm_like_class(cinfo: ClassInfo) -> bool:
    if cinfo.name in _SHM_CLASS_NAMES:
        return True
    return {"close", "unlink"} <= set(cinfo.methods)


@dataclass
class _Binding:
    name: str
    kind: str  # "create" | "attach"
    pinned: bool
    line: int
    col: int
    close_pos: int | None = None
    unlink_sites: list[tuple[int, int]] = field(default_factory=list)  # (pos, line)
    escaped: bool = False
    uses_after: list[int] = field(default_factory=list)  # lines of post-close uses


class TypestateChecker:
    def __init__(self, program: Program) -> None:
        self.program = program

    # ------------------------------------------------------------------
    def run_checks(self, ctx: CheckContext) -> None:
        for fn in self.program.functions.values():
            self._check_function(fn, ctx)
        for cinfo in self.program.classes.values():
            self._check_class(cinfo, ctx)

    # ------------------------------------------------------------------
    # Binding classification
    # ------------------------------------------------------------------
    def classify_binding(
        self, fn: FunctionInfo, call: ast.Call
    ) -> tuple[str, bool] | None:
        """(kind, pinned) if ``call`` yields a shared-memory segment."""
        prog = self.program
        ref = prog.resolve_call(fn, call)
        if ref.kind == "external" and ref.target == _SHARED_MEMORY_EXTERNAL:
            return ("create", False) if shared_memory_creates(call) else ("attach", False)
        if ref.kind == "function":
            callee = prog.functions[ref.target]
            if callee.cls is not None:
                cinfo = prog.classes.get(callee.cls)
                if cinfo is not None and _is_shm_like_class(cinfo):
                    if callee.name == "create":
                        return ("create", False)
                    if callee.name == "attach":
                        return ("attach", self._attach_pinned(cinfo, callee, call))
                return None
            # Helper returning a raw segment, e.g. _attach_untracked().
            returns = ast.dump(callee.node.returns) if callee.node.returns else ""
            if "SharedMemory" in returns:
                return ("attach", False)
        return None

    def _attach_pinned(
        self, cinfo: ClassInfo, callee: FunctionInfo, call: ast.Call
    ) -> bool:
        if cinfo.name in _ALWAYS_PINNED_ATTACH_CLASSES:
            return True
        for kw in call.keywords:
            if kw.arg == "pin":
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                )
        # Fall back to the callee's own default for ``pin``.
        args = callee.node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        if "pin" in names:
            kw_names = [a.arg for a in args.kwonlyargs]
            if "pin" in kw_names:
                default = args.kw_defaults[kw_names.index("pin")]
            else:
                pos = [*args.posonlyargs, *args.args]
                idx = [a.arg for a in pos].index("pin") - (len(pos) - len(args.defaults))
                default = args.defaults[idx] if 0 <= idx < len(args.defaults) else None
            return bool(
                isinstance(default, ast.Constant) and default.value is True
            )
        return False

    # ------------------------------------------------------------------
    # Per-function protocol check
    # ------------------------------------------------------------------
    def _check_function(self, fn: FunctionInfo, ctx: CheckContext) -> None:
        mod = self.program.modules[fn.modname]
        path = str(mod.path)
        nodes = iter_own_nodes(fn)

        bindings: dict[str, _Binding] = {}
        # Any receiver text with close/unlink calls (typed or not) -- this
        # is what catches ``pub.bundle.unlink(); pub.bundle.close()``.
        recv_close: dict[str, tuple[int, int]] = {}  # text -> (pos, line)
        recv_unlink: dict[str, list[tuple[int, int, int]]] = {}  # (pos, line, col)

        for pos, node in enumerate(nodes):
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if names and isinstance(value, ast.Call):
                    cls = self.classify_binding(fn, value)
                    if cls is not None:
                        kind, pinned = cls
                        for nm in names:
                            bindings[nm] = _Binding(
                                name=nm, kind=kind, pinned=pinned,
                                line=value.lineno, col=value.col_offset + 1)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                recv = receiver_text(node.func.value)
                if recv is not None and attr in ("close", "unlink"):
                    if attr == "close":
                        recv_close.setdefault(recv, (pos, node.lineno))
                    else:
                        recv_unlink.setdefault(recv, []).append(
                            (pos, node.lineno, node.func.value.col_offset + 1))
                    b = bindings.get(recv)
                    if b is not None:
                        if attr == "close" and b.close_pos is None:
                            b.close_pos = pos
                        elif attr == "unlink":
                            b.unlink_sites.append((pos, node.lineno))

        self._mark_escapes_and_uses(fn, nodes, bindings)

        qual = fn.qualname
        for b in bindings.values():
            if b.kind == "attach" and b.unlink_sites:
                ctx.emit(
                    "RV203", path, b.unlink_sites[0][1], b.col, qual,
                    f"{b.name!r} is attached here but unlinked below; only the "
                    "creating owner unlinks")
            if len(b.unlink_sites) > 1:
                ctx.emit(
                    "RV204", path, b.unlink_sites[1][1], b.col, qual,
                    f"{b.name!r} unlinked at {len(b.unlink_sites)} sites "
                    f"(lines {', '.join(str(ln) for _, ln in b.unlink_sites)})")
            if (
                not b.pinned
                and b.close_pos is None
                and not b.escaped
                and not (b.kind == "create" and b.unlink_sites)
            ):
                ctx.emit(
                    "RV201", path, b.line, b.col, qual,
                    f"{b.name!r} is {'created' if b.kind == 'create' else 'attached'} "
                    "here but never closed or handed off in this function")
            if b.close_pos is not None and b.uses_after:
                ctx.emit(
                    "RV202", path, b.uses_after[0], b.col, qual,
                    f"{b.name!r} used after its close()")

        for recv, sites in recv_unlink.items():
            close = recv_close.get(recv)
            if close is None:
                continue
            first_unlink = min(sites)
            if first_unlink[0] < close[0]:
                ctx.emit(
                    "RV205", path, first_unlink[1], first_unlink[2], qual,
                    f"{recv}.unlink() ordered before {recv}.close(); close the "
                    "mapping first, then unlink the name")

    def _mark_escapes_and_uses(
        self,
        fn: FunctionInfo,
        nodes: list[ast.AST],
        bindings: dict[str, _Binding],
    ) -> None:
        if not bindings:
            return

        def names_in(node: ast.AST) -> set[str]:
            return {
                n.id
                for n in ast.walk(node)
                if isinstance(n, ast.Name) and n.id in bindings
            }

        close_positions = {nm: b.close_pos for nm, b in bindings.items()}
        for pos, node in enumerate(nodes):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    for nm in names_in(value):
                        bindings[nm].escaped = True
            elif isinstance(node, ast.Call):
                receiver = (
                    node.func.value
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for nm in names_in(arg):
                        bindings[nm].escaped = True
                # Receiver position is not an escape, but *is* a use.
                if receiver is not None and isinstance(receiver, ast.Name):
                    nm = receiver.id
                    if nm in bindings:
                        cp = close_positions.get(nm)
                        attr = node.func.attr  # type: ignore[union-attr]
                        if (
                            cp is not None
                            and pos > cp
                            and attr not in ("close", "unlink")
                        ):
                            bindings[nm].uses_after.append(node.lineno)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, (ast.Attribute, ast.Subscript)):
                        for nm in names_in(node.value):
                            bindings[nm].escaped = True
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                for nm in names_in(node):
                    bindings[nm].escaped = True
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                base = node.value
                if isinstance(base, ast.Name) and base.id in bindings:
                    nm = base.id
                    cp = close_positions.get(nm)
                    attr_name = node.attr if isinstance(node, ast.Attribute) else ""
                    if (
                        cp is not None
                        and pos > cp
                        and attr_name not in ("close", "unlink")
                    ):
                        bindings[nm].uses_after.append(node.lineno)

    # ------------------------------------------------------------------
    # Class-level check (RV206)
    # ------------------------------------------------------------------
    def _shm_attrs_of(self, cinfo: ClassInfo) -> dict[str, int]:
        """attr name -> line for attributes provably holding a segment."""
        out: dict[str, int] = {}
        for attr, typ in cinfo.attr_types.items():
            tinfo = self.program.classes.get(typ)
            if tinfo is not None and _is_shm_like_class(tinfo):
                out[attr] = cinfo.lineno
        # Class-body annotations / __init__ params typed as raw SharedMemory.
        for stmt in cinfo.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if "SharedMemory" in ast.dump(stmt.annotation):
                    out.setdefault(stmt.target.id, stmt.lineno)
        for mname, mqual in cinfo.methods.items():
            mfn = self.program.functions.get(mqual)
            if mfn is None:
                continue
            ann_shm = {
                a.arg
                for a in [*mfn.node.args.posonlyargs, *mfn.node.args.args,
                          *mfn.node.args.kwonlyargs]
                if a.annotation is not None
                and "SharedMemory" in ast.dump(a.annotation)
            }
            if not ann_shm:
                continue
            for node in iter_own_nodes(mfn):
                if not isinstance(node, ast.Assign):
                    continue
                if not (isinstance(node.value, ast.Name)
                        and node.value.id in ann_shm):
                    continue
                for t in node.targets:
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        out.setdefault(t.attr, node.lineno)
        return out

    def _check_class(self, cinfo: ClassInfo, ctx: CheckContext) -> None:
        regular = [m for m in cinfo.methods if not m.startswith("__")]
        if not regular:
            return  # passive record (dataclass field holder): owner closes
        shm_attrs = self._shm_attrs_of(cinfo)
        if not shm_attrs:
            return
        mod = self.program.modules[cinfo.modname]
        path = str(mod.path)
        for attr, line in shm_attrs.items():
            if self._class_releases(cinfo, attr):
                continue
            ctx.emit(
                "RV206", path, line, 1, cinfo.qualname,
                f"class {cinfo.name} stores a shared-memory segment in "
                f"self.{attr} but no method closes or hands it off")

    def _class_releases(self, cinfo: ClassInfo, attr: str) -> bool:
        target = f"self.{attr}"
        for mqual in cinfo.methods.values():
            mfn = self.program.functions.get(mqual)
            if mfn is None:
                continue
            for node in iter_own_nodes(mfn):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and receiver_text(node.func.value) == target
                ):
                    return True
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if receiver_text(arg) == target:
                        return True  # handed off (finalizer, helper, ...)
        return False
