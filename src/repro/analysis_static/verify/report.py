"""Check catalogue, findings, suppressions and renderers for repro-verify.

Suppression syntax (same line as the finding or the immediately
preceding line)::

    # repro-verify: allow=RV205(finalizer reaps an abandoned segment)

The reason inside the parentheses is mandatory -- an ``allow`` without
one is itself a finding (``RV001``), so every waiver in the tree carries
a written justification.  Checks may be named by id (``RV205``) or by
slug (``shm-unlink-before-close``).  Reasons must not contain
parentheses.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping


@dataclass(frozen=True)
class Check:
    id: str
    slug: str
    title: str
    hint: str


CHECKS: dict[str, Check] = {
    c.id: c
    for c in (
        Check(
            "RV001",
            "bad-suppression",
            "malformed repro-verify suppression",
            "every `# repro-verify: allow=CHECK(reason)` needs a known check "
            "and a non-empty reason",
        ),
        Check(
            "RV101",
            "effect-purity",
            "effectful code in a module that must be effect-free",
            "pure modules (plan executors, core energy kernels) may not reach "
            "CLOCK/RNG/IO/collectives/shared-memory effects on any call path",
        ),
        Check(
            "RV102",
            "effect-undeclared",
            "body effects exceed the @declares_effects declaration",
            "extend the declaration or push the effect behind a declared "
            "callee; declarations are checked upper bounds, not waivers",
        ),
        Check(
            "RV201",
            "shm-missing-close",
            "shared-memory attach without a paired close",
            "every non-pinned attach must close on all paths, or hand the "
            "segment to an owner that does",
        ),
        Check(
            "RV202",
            "shm-use-after-close",
            "shared-memory segment used after close",
            "views into a closed segment dangle; reorder the close",
        ),
        Check(
            "RV203",
            "shm-unlink-by-attacher",
            "attach-side unlink of a shared-memory segment",
            "only the creating owner unlinks; attachers just close",
        ),
        Check(
            "RV204",
            "shm-double-unlink",
            "segment unlinked at more than one site in one function",
            "unlink exactly once per owner",
        ),
        Check(
            "RV205",
            "shm-unlink-before-close",
            "segment unlinked before it is closed",
            "close the local mapping first, then unlink the name "
            "(create -> ... -> close -> unlink)",
        ),
        Check(
            "RV206",
            "shm-class-missing-release",
            "class holds a shared-memory segment but no method closes it",
            "add a close/release method that closes the stored segment",
        ),
        Check(
            "RV301",
            "collective-divergence",
            "rank-dependent branch arms emit different collective sequences",
            "hoist the collective out of the branch; all ranks must issue "
            "the same collective sequence or the program deadlocks",
        ),
        Check(
            "RV302",
            "collective-rank-dep-loop",
            "collective inside a loop with a rank-dependent trip count",
            "loop bounds that differ per rank desynchronise the collective "
            "schedule; iterate a rank-invariant bound",
        ),
        Check(
            "RV401",
            "model-deadlock",
            "protocol model reaches a state with no enabled transition",
            "the finding's message carries the counterexample interleaving; "
            "replay it against the model in repro.analysis_static.model",
        ),
        Check(
            "RV402",
            "model-lost-future",
            "an admitted request can end unresolved and unrejected",
            "every path that removes a request from the queue must resolve "
            "or reject its future -- including worker-death paths",
        ),
        Check(
            "RV403",
            "model-bound",
            "a protocol invariant (e.g. the admission bound) is violated",
            "queue occupancy must never exceed queue_capacity; re-check the "
            "capacity guard in submit()",
        ),
        Check(
            "RV404",
            "model-shm-lifecycle",
            "a shm segment path skips close-before-unlink or re-unlinks",
            "every published segment must be closed by its owner before the "
            "single unlink, on every path including crash paths",
        ),
        Check(
            "RV405",
            "model-conformance",
            "implementation drifted from its protocol model",
            "restore the code fact / @protocol_event annotation the model "
            "is anchored to, or update the model in "
            "repro.analysis_static.model.protocols",
        ),
        Check(
            "RV406",
            "model-routing",
            "the router/donation protocol can lose or double-execute work",
            "donated row ranges must execute exactly once and every shard "
            "rejection must propagate to the submitting client (retry or "
            "re-raise; never a silent drop)",
        ),
        Check(
            "RV501",
            "slice-chain-unproven",
            "slice row bounds are not provably a disjoint exact cover",
            "segment_by_weight/segment_range/slice_bounds must keep the "
            "chained-fold shape (start=0; append (start, end); start=end; "
            "final cut forced to n)",
        ),
        Check(
            "RV502",
            "slice-span-mismatch",
            "flat write spans are not the chain image of one offset array",
            "slice bounds must be [int(A[lo]), int(A[hi])) of a single "
            "monotone offset array with no arithmetic on the endpoints",
        ),
        Check(
            "RV503",
            "slice-axiom-missing",
            "the monotone-CSR axiom is no longer runtime-checked",
            "InteractionPlan.validate() must reject np.diff(start) < 0 and "
            "start[0] != 0 -- the precondition of the span-image proof",
        ),
        Check(
            "RV504",
            "donation-cover-unproven",
            "donated key-range cuts are not provably a disjoint exact cover",
            "donation_bounds must keep the guarded delegation shape "
            "(nparts guard; coarsen_keys; segment_by_key_range snap-forward "
            "with the final cut forced to n; empty ranges dropped by hi > "
            "lo) -- the code facts behind the RV406 exactly-once invariant",
        ),
        Check(
            "RV601",
            "flow-shape-mismatch",
            "array shape contradicts an @array_contract",
            "the caller's inferred symbolic shape definitely mismatches the "
            "contract; fix the argument order/size or correct the contract",
        ),
        Check(
            "RV602",
            "flow-dtype-drift",
            "silent dtype promotion or downcast on an energy path",
            "Born/E_pol values are float64 end to end; remove the float32 "
            "operand (or the float64->float32 cast) or take the value off "
            "the energy path",
        ),
        Check(
            "RV603",
            "flow-view-published",
            "view-aliased array where a C-contiguous owner is required",
            "SharedArrayBundle.create would silently copy a view into the "
            "segment; materialise with np.ascontiguousarray (or pass the "
            "owning array) so writes reach the shared memory",
        ),
        Check(
            "RV604",
            "flow-index-width",
            "int32 index array gathers into a 64-bit CSR/key array",
            "CSR indices and Hilbert keys are 64-bit end to end; cast the "
            "index to int64 at the seam (int32 truncates past 2^31)",
        ),
        Check(
            "RV605",
            "flow-uncontracted-boundary",
            "array crosses a process/shm/cluster boundary without a contract",
            "stamp the publishing/boundary function with @array_contract "
            "covering every payload key so repro-flow can check the hop",
        ),
    )
}

#: ``--check`` family groups: a family name expands to its member checks.
CHECK_FAMILIES: dict[str, tuple[str, ...]] = {
    "effects": ("RV101", "RV102"),
    "shm": ("RV201", "RV202", "RV203", "RV204", "RV205", "RV206"),
    "collectives": ("RV301", "RV302"),
    "model": ("RV401", "RV402", "RV403", "RV404", "RV405", "RV406"),
    "disjoint": ("RV501", "RV502", "RV503", "RV504"),
    "flow": ("RV601", "RV602", "RV603", "RV604", "RV605"),
}

_SLUG_TO_ID = {c.slug: c.id for c in CHECKS.values()}

_ALLOW_RE = re.compile(r"#\s*repro-verify:\s*allow=(.*)$")
_ENTRY_RE = re.compile(r"([A-Za-z0-9_-]+)\s*(?:\(([^()]*)\))?")


@dataclass
class VerifyFinding:
    check: str  # check id, e.g. "RV205"
    path: str
    line: int
    col: int
    function: str  # qualname of the enclosing function ("" for module level)
    message: str
    hint: str = ""
    suppressed: bool = False
    suppress_reason: str = ""

    def fingerprint(self) -> str:
        # Line-number free so baselines survive unrelated edits.
        return f"{self.check}|{self.path}|{self.function}|{self.message}"

    def format(self) -> str:
        slug = CHECKS[self.check].slug if self.check in CHECKS else ""
        loc = f"{self.path}:{self.line}:{self.col}"
        head = f"{loc}: {self.check} [{slug}] {self.message}"
        return f"{head}\n    hint: {self.hint}" if self.hint else head

    def to_dict(self) -> dict[str, object]:
        return {
            "check": self.check,
            "slug": CHECKS[self.check].slug if self.check in CHECKS else "",
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class Suppression:
    check_id: str
    reason: str
    line: int


def _comment_tokens(lines: list[str]) -> list[tuple[int, int, str]]:
    """(line, col, text) of every real COMMENT token -- tokenizing keeps
    ``allow=`` lookalikes inside string literals from parsing as
    suppressions."""
    source = "\n".join(lines) + "\n"
    out: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to raw lines for unparseable sources.
        return [(i, 0, t) for i, t in enumerate(lines, start=1) if "#" in t]
    return out


def parse_allows(lines: list[str]) -> tuple[dict[int, list[Suppression]], list[VerifyFinding]]:
    """Scan source comments for ``allow=`` suppressions.

    Returns (line -> suppressions that *cover* that line, RV001 findings
    for malformed entries).  A suppression on its own comment line covers
    findings on that line and the next (comment-above style); a trailing
    comment covers only its own line.
    """
    covers: dict[int, list[Suppression]] = {}
    bad: list[VerifyFinding] = []
    for idx, col, text in _comment_tokens(lines):
        m = _ALLOW_RE.search(text)
        if m is None:
            continue
        payload = m.group(1).strip()
        entries = list(_ENTRY_RE.finditer(payload))
        if not entries:
            bad.append(_bad_allow(idx, text, "empty allow list"))
            continue
        for ent in entries:
            name, reason = ent.group(1), ent.group(2)
            check_id = name if name in CHECKS else _SLUG_TO_ID.get(name, "")
            if not check_id:
                bad.append(_bad_allow(idx, text, f"unknown check {name!r}"))
                continue
            if reason is None or not reason.strip():
                bad.append(
                    _bad_allow(
                        idx, text, f"allow={name} has no reason; write allow={name}(why)"
                    )
                )
                continue
            sup = Suppression(check_id=check_id, reason=reason.strip(), line=idx)
            src_line = lines[idx - 1] if 0 < idx <= len(lines) else ""
            own_only = bool(src_line[:col].strip())  # trailing comment
            for ln in ([idx] if own_only else [idx, idx + 1]):
                covers.setdefault(ln, []).append(sup)
    return covers, bad


def _bad_allow(line: int, text: str, why: str) -> VerifyFinding:
    col = text.find("#") + 1
    return VerifyFinding(
        check="RV001",
        path="",
        line=line,
        col=max(col, 1),
        function="",
        message=why,
        hint=CHECKS["RV001"].hint,
    )


def apply_suppressions(
    findings: list[VerifyFinding],
    path: str,
    covers: Mapping[int, list[Suppression]],
) -> None:
    """Mark findings covered by an ``allow`` for their check as suppressed."""
    for f in findings:
        if f.path != path or f.check == "RV001":
            continue
        for sup in covers.get(f.line, []):
            if sup.check_id == f.check:
                f.suppressed = True
                f.suppress_reason = sup.reason
                break


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def render_text(findings: Iterable[VerifyFinding], *, show_suppressed: bool = False) -> str:
    out: list[str] = []
    shown = 0
    suppressed = 0
    for f in findings:
        if f.suppressed:
            suppressed += 1
            if not show_suppressed:
                continue
            out.append(f"{f.format()}\n    suppressed: {f.suppress_reason}")
            continue
        shown += 1
        out.append(f.format())
    tail = f"{shown} finding(s)"
    if suppressed:
        tail += f", {suppressed} suppressed"
    out.append(tail)
    return "\n".join(out)


def render_json(findings: Iterable[VerifyFinding]) -> str:
    active = [f.to_dict() for f in findings if not f.suppressed]
    suppressed = [
        {**f.to_dict(), "reason": f.suppress_reason} for f in findings if f.suppressed
    ]
    return json.dumps(
        {"findings": active, "suppressed": suppressed, "count": len(active)},
        indent=2,
        sort_keys=True,
    )


def render_sarif(findings: Iterable[VerifyFinding], *, root: Path | None = None) -> str:
    """Minimal SARIF 2.1.0 document, enough for GitHub code scanning."""
    rules = [
        {
            "id": c.id,
            "name": c.slug,
            "shortDescription": {"text": c.title},
            "help": {"text": c.hint},
        }
        for c in sorted(CHECKS.values(), key=lambda c: c.id)
    ]
    results = []
    for f in findings:
        if f.suppressed:
            continue
        uri = f.path
        if root is not None:
            try:
                uri = str(Path(f.path).resolve().relative_to(root.resolve()))
            except ValueError:
                uri = f.path
        results.append(
            {
                "ruleId": f.check,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri.replace("\\", "/")},
                            "region": {
                                "startLine": f.line,
                                "startColumn": max(f.col, 1),
                            },
                        }
                    }
                ],
            }
        )
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-verify",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


@dataclass
class CheckContext:
    """Shared bag passed to every checker: emit() routes findings."""

    findings: list[VerifyFinding] = field(default_factory=list)

    def emit(
        self,
        check: str,
        path: str,
        line: int,
        col: int,
        function: str,
        message: str,
    ) -> None:
        self.findings.append(
            VerifyFinding(
                check=check,
                path=path,
                line=line,
                col=col,
                function=function,
                message=message,
                hint=CHECKS[check].hint,
            )
        )
