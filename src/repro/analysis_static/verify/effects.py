"""Bottom-up interprocedural effect inference.

For every function in the :class:`~.program.Program` we compute an
*intrinsic* effect set (effects the body performs directly) plus call
edges, then propagate to a fixpoint::

    summary(f)  = declared(f)                  if f has @declares_effects
                  inferred(f)                  otherwise
    inferred(f) = intrinsic(f) | U summary(g)  for every resolved call g

Declarations cut propagation (callers see the declared upper bound) but
are themselves checked: ``inferred(f) ⊆ declared(f)`` or check RV102
fires.  Modules under a pure policy (plan executors, core energy
kernels, or any module carrying ``# repro-verify: policy=pure``) must
have ``inferred(f) == ∅`` for every function, or RV101 fires with the
call chain that reaches the effect.

Resolution gaps degrade soundness, not precision: an unresolvable call
contributes nothing.  The important seams -- shm lifecycle, backend
collectives, the sanctioned clock -- carry declarations precisely so
the analysis does not depend on resolving them through duck typing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from .program import FunctionInfo, Program, receiver_text
from .report import CheckContext

_AddFn = Callable[[str, ast.AST, str], None]

#: External callables that read the host wall clock.
WALLCLOCK_EXTERNALS = frozenset({
    "time.perf_counter", "time.perf_counter_ns", "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
})

#: External callables performing file/stream/process I/O.
IO_EXTERNALS = frozenset({
    "builtins.open", "builtins.print", "builtins.input",
    "os.remove", "os.unlink", "os.rename", "os.replace",
    "os.makedirs", "os.mkdir", "os.rmdir",
    "json.dump", "json.load",
    "tempfile.mkdtemp", "tempfile.mkstemp", "tempfile.TemporaryDirectory",
})
IO_PREFIXES = ("subprocess.", "shutil.", "sys.stdout.", "sys.stderr.")

#: Seedable RNG constructors: a call *with* arguments is deterministic.
_SEEDABLE_RNG = frozenset({"default_rng", "RandomState", "SeedSequence",
                           "Generator", "Philox", "PCG64", "Random"})
_ALWAYS_RNG_EXTERNALS = frozenset({"os.urandom", "uuid.uuid4", "random.SystemRandom"})

COLLECTIVE_ATTRS = frozenset({"allreduce", "allgather", "reduce",
                              "bcast", "gather", "barrier"})
#: Untyped receivers assumed to be an execution backend / rank context.
BACKENDISH_NAMES = frozenset({"backend", "ctx", "comm", "world"})

_SHM_CLASS_NAMES = frozenset({"SharedArrayBundle", "ScratchBuffer"})
_SHARED_MEMORY_EXTERNAL = "multiprocessing.shared_memory.SharedMemory"
_SHM_BUFFER_ATTRS = frozenset({"lengths", "slots", "buf"})


@dataclass(frozen=True)
class Witness:
    line: int
    col: int
    reason: str


def classify_external(dotted: str, call: ast.Call) -> dict[str, str]:
    """effect -> reason for a call to an external (non-repo) callable."""
    out: dict[str, str] = {}
    if dotted in WALLCLOCK_EXTERNALS:
        out["CLOCK"] = f"calls {dotted}()"
    elif dotted in IO_EXTERNALS or dotted.startswith(IO_PREFIXES):
        out["IO"] = f"calls {dotted}()"
    elif dotted in _ALWAYS_RNG_EXTERNALS:
        out["RNG"] = f"calls {dotted}()"
    elif dotted.startswith("numpy.random.") or dotted.startswith("random."):
        attr = dotted.rsplit(".", 1)[1]
        seeded = bool(call.args or call.keywords)
        if attr == "seed" or (attr in _SEEDABLE_RNG and seeded):
            pass  # explicit seeding / seeded construction is deterministic
        else:
            out["RNG"] = f"calls {dotted}() without a seed" if attr in _SEEDABLE_RNG \
                else f"calls process-global {dotted}()"
    elif dotted == _SHARED_MEMORY_EXTERNAL:
        if shared_memory_creates(call):
            out["SHM_CREATE"] = "constructs SharedMemory(create=True)"
        else:
            out["SHM_ATTACH"] = "attaches SharedMemory by name"
    return out


def shared_memory_creates(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and bool(kw.value.value)
    if len(call.args) >= 2:
        a = call.args[1]
        return isinstance(a, ast.Constant) and bool(a.value)
    return False


def is_stub(fn: FunctionInfo) -> bool:
    """True for Protocol-style stubs (docstring / ``...`` / ``pass`` only)."""
    for stmt in fn.node.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        if isinstance(stmt, ast.Raise):
            continue
        return False
    return True


def iter_own_nodes(fn: FunctionInfo) -> "list[ast.AST]":
    """All AST nodes of ``fn`` excluding nested def/class bodies (those are
    separate functions).  Lambdas stay included: their calls are treated
    as the enclosing function's, a deliberate over-approximation."""
    out: list[ast.AST] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            out.append(child)
            walk(child)

    walk(fn.node)
    return out


class EffectAnalysis:
    """Computes and stores per-function effect summaries."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.intrinsic: dict[str, dict[str, Witness]] = {}
        self.edges: dict[str, list[tuple[str, int]]] = {}
        self.inferred: dict[str, frozenset[str]] = {}
        self._scan_all()
        self._propagate()

    # -- public API ----------------------------------------------------
    def summary(self, qualname: str) -> frozenset[str]:
        fn = self.program.functions.get(qualname)
        if fn is not None and fn.declared is not None:
            return fn.declared
        return self.inferred.get(qualname, frozenset())

    def effects_of(self, qualname: str) -> frozenset[str]:
        """Effects inferred from the body (ignoring the function's own
        declaration -- this is what RV101/RV102 judge)."""
        return self.inferred.get(qualname, frozenset())

    def explain(self, qualname: str, effect: str, _depth: int = 0,
                _seen: frozenset[str] = frozenset()) -> str:
        """Human-readable call chain from ``qualname`` to the effect."""
        short = qualname.split(".")[-1]
        if _depth > 20 or qualname in _seen:
            return short
        wit = self.intrinsic.get(qualname, {}).get(effect)
        if wit is not None:
            return f"{short} ({wit.reason}, line {wit.line})"
        for callee, line in self.edges.get(qualname, []):
            if effect not in self.summary(callee):
                continue
            fn = self.program.functions.get(callee)
            if fn is not None and fn.declared is not None:
                return f"{short} -> {callee.split('.')[-1]} [declared {effect}]"
            tail = self.explain(callee, effect, _depth + 1, _seen | {qualname})
            return f"{short} -> {tail}"
        return short

    def witness(self, qualname: str, effect: str) -> Witness:
        wit = self.intrinsic.get(qualname, {}).get(effect)
        if wit is not None:
            return wit
        for callee, line in self.edges.get(qualname, []):
            if effect in self.summary(callee):
                return Witness(line, 0, f"call to {callee.split('.')[-1]}")
        fn = self.program.functions[qualname]
        return Witness(fn.lineno, 0, "unknown")

    # -- checks --------------------------------------------------------
    def run_checks(self, ctx: CheckContext) -> None:
        for qual, fn in self.program.functions.items():
            mod = self.program.modules[fn.modname]
            path = str(mod.path)
            if fn.bad_decl is not None:
                ctx.emit("RV102", path, fn.decl_line or fn.lineno, 1, qual, fn.bad_decl)
            if fn.declared is not None and fn.bad_decl is None:
                extra = self.inferred.get(qual, frozenset()) - fn.declared
                for effect in sorted(extra):
                    wit = self.witness(qual, effect)
                    ctx.emit(
                        "RV102", path, wit.line, wit.col, qual,
                        f"{qual} declares {sorted(fn.declared) or 'no effects'} "
                        f"but its body reaches {effect}: {self.explain(qual, effect)}",
                    )
            if mod.is_pure_policy():
                for effect in sorted(self.inferred.get(qual, frozenset())):
                    wit = self.witness(qual, effect)
                    ctx.emit(
                        "RV101", path, wit.line, wit.col, qual,
                        f"{qual} must be effect-free but reaches {effect}: "
                        f"{self.explain(qual, effect)}",
                    )

    # -- intrinsic scan ------------------------------------------------
    def _scan_all(self) -> None:
        for qual, fn in self.program.functions.items():
            intr, edges = self._scan_function(fn)
            self.intrinsic[qual] = intr
            self.edges[qual] = edges

    def _scan_function(
        self, fn: FunctionInfo
    ) -> tuple[dict[str, Witness], list[tuple[str, int]]]:
        prog = self.program
        intr: dict[str, Witness] = {}
        edges: list[tuple[str, int]] = []
        nodes = iter_own_nodes(fn)

        def add(effect: str, node: ast.AST, reason: str) -> None:
            line = getattr(node, "lineno", fn.lineno)
            col = getattr(node, "col_offset", 0) + 1
            intr.setdefault(effect, Witness(line, col, reason))

        # Pass 1: names bound to shm views / raw SharedMemory objects.
        view_names: set[str] = set()
        raw_names: set[str] = set()
        for node in nodes:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            name_targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not name_targets or not isinstance(value, ast.Call):
                continue
            if self._is_view_call(fn, value) or self._is_buffer_ndarray(fn, value):
                view_names.update(name_targets)
            else:
                ref = prog.resolve_call(fn, value)
                if ref.kind == "external" and ref.target == _SHARED_MEMORY_EXTERNAL:
                    raw_names.update(name_targets)

        # Pass 2: effects + edges.
        clock_params = self._clock_default_params(fn)
        for node in nodes:
            if isinstance(node, ast.Call):
                self._scan_call(fn, node, intr, edges, add, clock_params)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    if self._writes_shared(fn, t, view_names, raw_names):
                        add("MUTATES_SHARED", t,
                            "writes through a shared-memory view")
        return intr, edges

    def _scan_call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        intr: dict[str, Witness],
        edges: list[tuple[str, int]],
        add: _AddFn,
        clock_params: set[str],
    ) -> None:
        prog = self.program
        # Referencing a wall-clock function as an argument hands the clock
        # to the callee; charge the referencing site.
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            text = receiver_text(arg)
            if text is not None and "." in text:
                ref = prog.resolve_call(fn, ast.Call(func=arg, args=[], keywords=[]))
                if ref.kind == "external" and ref.target in WALLCLOCK_EXTERNALS:
                    add("CLOCK", arg, f"passes wall-clock {ref.target}")
        func = node.func
        if isinstance(func, ast.Name) and func.id in clock_params:
            add("CLOCK", node, f"calls parameter {func.id!r} whose default is a wall clock")
            return
        # Nested defs are callable by bare name inside the parent.
        if isinstance(func, ast.Name):
            nested = f"{fn.qualname}.{func.id}"
            if nested in prog.functions:
                edges.append((nested, node.lineno))
                return
        ref = prog.resolve_call(fn, node)
        if ref.kind == "function":
            callee = prog.functions[ref.target]
            if is_stub(callee) and callee.declared is None:
                # Protocol stub without a declaration: fall back to the
                # attribute-name heuristic below.
                self._collective_heuristic(fn, node, add, typed_ok=True)
            else:
                edges.append((ref.target, node.lineno))
            return
        if ref.kind == "class":
            init = prog.lookup_method(ref.target, "__init__")
            if init is not None:
                edges.append((init.qualname, node.lineno))
            return
        if ref.kind == "external":
            for effect, reason in classify_external(ref.target, node).items():
                add(effect, node, reason)
            return
        self._collective_heuristic(fn, node, add, typed_ok=False)

    def _collective_heuristic(
        self, fn: FunctionInfo, node: ast.Call, add: _AddFn, *, typed_ok: bool
    ) -> None:
        """COLLECTIVE(kind) for ``backend.allreduce(...)``-shaped calls on
        receivers we cannot (or need not) type precisely."""
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in COLLECTIVE_ATTRS:
            return
        recv = receiver_text(func.value)
        if recv is None:
            return
        base = recv.split(".")[0]
        if not typed_ok and self.program.type_of_receiver(fn, func.value) is not None:
            return
        if base in BACKENDISH_NAMES or recv.split(".")[-1] in BACKENDISH_NAMES:
            add(f"COLLECTIVE({func.attr})", node,
                f"calls {recv}.{func.attr}() (backend-shaped receiver)")

    def _clock_default_params(self, fn: FunctionInfo) -> set[str]:
        out: set[str] = set()
        args = fn.node.args
        pos = [*args.posonlyargs, *args.args]
        for a, d in zip(pos[len(pos) - len(args.defaults):], args.defaults):
            if self._is_clock_expr(fn, d):
                out.add(a.arg)
        for a, kd in zip(args.kwonlyargs, args.kw_defaults):
            if kd is not None and self._is_clock_expr(fn, kd):
                out.add(a.arg)
        return out

    def _is_clock_expr(self, fn: FunctionInfo, expr: ast.expr) -> bool:
        text = receiver_text(expr)
        if text is None:
            return False
        ref = self.program.resolve_call(
            fn, ast.Call(func=expr, args=[], keywords=[]))
        return ref.kind == "external" and ref.target in WALLCLOCK_EXTERNALS

    def _is_view_call(self, fn: FunctionInfo, call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != "view":
            return False
        typ = self.program.type_of_receiver(fn, func.value)
        if typ is None:
            return False
        return typ.split(".")[-1] in _SHM_CLASS_NAMES

    def _is_buffer_ndarray(self, fn: FunctionInfo, call: ast.Call) -> bool:
        ref = self.program.resolve_call(fn, call)
        if ref.kind != "external" or not ref.target.startswith("numpy."):
            return False
        return any(kw.arg == "buffer" for kw in call.keywords)

    def _writes_shared(
        self,
        fn: FunctionInfo,
        target: ast.expr,
        view_names: set[str],
        raw_names: set[str],
    ) -> bool:
        if not isinstance(target, ast.Subscript):
            return False
        base = target.value
        if isinstance(base, ast.Name):
            return base.id in view_names
        if isinstance(base, ast.Attribute):
            # shm.buf[...] on a raw SharedMemory, or scratch.lengths[...] /
            # scratch.slots[...] on a typed ScratchBuffer-like receiver.
            if base.attr not in _SHM_BUFFER_ATTRS:
                return False
            owner = base.value
            if isinstance(owner, ast.Name) and owner.id in raw_names:
                return True
            typ = self.program.type_of_receiver(fn, owner)
            return typ is not None and typ.split(".")[-1] in _SHM_CLASS_NAMES
        if isinstance(base, ast.Call):
            return self._is_view_call(fn, base)
        return False

    # -- propagation ---------------------------------------------------
    def _propagate(self) -> None:
        for qual in self.program.functions:
            self.inferred[qual] = frozenset(self.intrinsic[qual])
        changed = True
        while changed:
            changed = False
            for qual in self.program.functions:
                cur = self.inferred[qual]
                acc = set(cur)
                for callee, _line in self.edges[qual]:
                    acc |= self.summary(callee)
                if acc != cur:
                    self.inferred[qual] = frozenset(acc)
                    changed = True
