"""Command-line front end for ``repro-verify``.

Invoked as ``python -m repro.verify [paths...]``.  Exit status: 0 when
no finding survives suppressions and the baseline, 1 otherwise, 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..baseline import BaselineError, load_baseline, write_baseline
from . import run_verify
from .report import (CHECK_FAMILIES, CHECKS, render_json, render_sarif,
                     render_text)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "repro-verify: whole-program effect inference, shared-memory "
            "typestate, static collective-matching, protocol model "
            "checking, slice-disjointness proofs and shape/dtype/"
            "contiguity flow analysis (RV001..RV605)."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to verify (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--checks", "--check", default=None,
                        metavar="RVxxx[,family]", dest="checks",
                        help="run only the named checks; entries may be "
                             "check ids (RV401) or families "
                             f"({', '.join(sorted(CHECK_FAMILIES))}); "
                             "RV001 always runs")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check catalogue and exit")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="accepted-findings baseline: only findings not "
                             "in FILE fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline "
                             "and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text output")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_checks:
        for check in sorted(CHECKS.values(), key=lambda c: c.id):
            print(f"{check.id}  [{check.slug}] {check.title}")
            print(f"        hint: {check.hint}")
        return 0

    only: list[str] | None = None
    if args.checks:
        only = []
        for raw in args.checks.split(","):
            name = raw.strip()
            if not name:
                continue
            # A family name (model, disjoint, shm, ...) expands to its
            # member checks; anything else must be a check id.
            family = CHECK_FAMILIES.get(name.lower())
            if family is not None:
                only.extend(family)
            else:
                only.append(name.upper())
        unknown = set(only) - set(CHECKS)
        if unknown:
            print(f"unknown check(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    result = run_verify([Path(p) for p in args.paths], checks=only)
    findings = result.findings

    if args.write_baseline:
        fps = {f.fingerprint() for f in findings if not f.suppressed}
        write_baseline(Path(args.baseline), fps)
        print(f"repro-verify: wrote {len(fps)} fingerprint(s) to "
              f"{args.baseline}")
        return 0

    baselined = 0
    if args.baseline:
        try:
            known = load_baseline(Path(args.baseline))
        except BaselineError as err:
            print(str(err), file=sys.stderr)
            return 2
        kept = []
        matched: set[str] = set()
        for f in findings:
            if not f.suppressed and f.fingerprint() in known:
                baselined += 1
                matched.add(f.fingerprint())
                continue
            kept.append(f)
        findings = kept
        # Stale entries are a warning, never an error: the ratchet only
        # tightens when someone re-writes the baseline.
        stale = sorted(known - matched)
        if stale:
            print(f"repro-verify: warning: {len(stale)} baseline "
                  "fingerprint(s) match no current finding (stale; "
                  "re-run with --write-baseline to tighten):",
                  file=sys.stderr)
            for fp in stale:
                print(f"  {fp}", file=sys.stderr)

    active = [f for f in findings if not f.suppressed]
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings, root=Path.cwd()))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
        if baselined:
            print(f"repro-verify: {baselined} baselined finding(s) hidden")
        print("repro-verify: clean" if not active
              else f"repro-verify: {len(active)} new finding(s)")
    return 1 if active else 0


if __name__ == "__main__":
    raise SystemExit(main())
