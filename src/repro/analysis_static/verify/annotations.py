"""The ``@declares_effects`` trust boundary for repro-verify.

Effect inference (:mod:`.effects`) propagates a small lattice of effects
bottom-up through the whole-program call graph.  A function decorated with
:func:`declares_effects` *cuts* that propagation: callers see the declared
set instead of the transitive closure of the body.  The declaration is not
taken on faith -- repro-verify checks that the effects inferred from the
body are a subset of the declared set (check ``RV102``) -- so annotations
are checked trust boundaries, not suppressions.

An empty declaration, ``@declares_effects()``, is the strongest statement
available: the function asserts it is *effect-free* (pure up to
allocation and arithmetic), which is the precondition for the
bit-identity claims of docs/ALGORITHMS §6c.  The decorator is a runtime
no-op apart from stamping ``__declared_effects__`` and validating the
effect names at import time (so a typo fails the first test run, not the
analysis).

The lattice elements:

``CLOCK``
    reads host wall-clock time (``time.perf_counter`` and friends).
``RNG``
    draws from an unseeded or process-global random source.
``IO``
    file/stream/process I/O (``open``, ``print``, ``subprocess`` ...).
``COLLECTIVE(kind)``
    issues the named cross-rank collective (``allreduce``, ``allgather``,
    ``reduce``, ``bcast``, ``gather``, ``barrier``).
``SHM_CREATE`` / ``SHM_ATTACH`` / ``SHM_CLOSE`` / ``SHM_UNLINK``
    shared-memory segment lifecycle transitions.
``MUTATES_SHARED``
    writes through views of a shared-memory segment.
"""

from __future__ import annotations

import re
from typing import Callable, TypeVar

#: Attribute stamped on decorated callables.
DECLARED_ATTR = "__declared_effects__"

#: Parameter-free effect names.
EFFECT_NAMES = frozenset({
    "CLOCK", "RNG", "IO", "MUTATES_SHARED",
    "SHM_CREATE", "SHM_ATTACH", "SHM_CLOSE", "SHM_UNLINK",
})

#: Collective kinds accepted inside ``COLLECTIVE(...)``.
COLLECTIVE_KINDS = frozenset({
    "allreduce", "allgather", "reduce", "bcast", "gather", "barrier",
})

_COLLECTIVE_RE = re.compile(r"^COLLECTIVE\(([a-z_]+)\)$")

_F = TypeVar("_F", bound=Callable)


def validate_effect(effect: str) -> str:
    """Return ``effect`` normalised, or raise ``ValueError`` on a name
    outside the lattice (typos must fail at import time)."""
    if effect in EFFECT_NAMES:
        return effect
    m = _COLLECTIVE_RE.match(effect)
    if m and m.group(1) in COLLECTIVE_KINDS:
        return effect
    raise ValueError(
        f"unknown effect {effect!r}; expected one of "
        f"{sorted(EFFECT_NAMES)} or COLLECTIVE(kind) with kind in "
        f"{sorted(COLLECTIVE_KINDS)}")


def declares_effects(*effects: str) -> Callable[[_F], _F]:
    """Declare a callable's complete effect set (a checked upper bound).

    ``@declares_effects()`` asserts the callable is effect-free.  The
    decorator validates names eagerly and otherwise leaves the callable
    untouched; repro-verify reads the declaration statically (it never
    imports the code it analyses).
    """
    declared = frozenset(validate_effect(e) for e in effects)

    def wrap(fn: _F) -> _F:
        setattr(fn, DECLARED_ATTR, declared)
        return fn

    return wrap


def declared_effects_of(fn: object) -> frozenset[str] | None:
    """The runtime declaration stamped on ``fn``, or None."""
    value = getattr(fn, DECLARED_ATTR, None)
    if value is None:
        return None
    return frozenset(value)
