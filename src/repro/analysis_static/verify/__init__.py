"""repro-verify: whole-program static verification (see docs/ANALYSIS.md).

Six analyses over one shared program model:

* :mod:`.effects`     -- interprocedural effect inference (RV101/RV102)
* :mod:`.typestate`   -- shared-memory segment protocol (RV201..RV206)
* :mod:`.collectives` -- static collective-matching (RV301/RV302)
* :mod:`repro.analysis_static.model.checks`   -- protocol model
  checking with counterexample interleavings (RV401..RV405)
* :mod:`repro.analysis_static.model.disjoint` -- symbolic
  slice-disjointness proofs (RV501..RV504)
* :mod:`repro.analysis_static.flow`           -- shape/dtype/contiguity
  abstract interpretation against @array_contract (RV601..RV605)

plus :mod:`.annotations` (the runtime ``@declares_effects`` decorator)
and :mod:`.report` (catalogue, suppressions, renderers).

Entry points: ``python -m repro.verify`` (CLI) or :func:`run_verify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .annotations import (
    COLLECTIVE_KINDS,
    EFFECT_NAMES,
    declared_effects_of,
    declares_effects,
)
from .collectives import CollectiveChecker
from .effects import EffectAnalysis
from .program import Program
from .report import (
    CHECK_FAMILIES,
    CHECKS,
    CheckContext,
    VerifyFinding,
    apply_suppressions,
    parse_allows,
    render_json,
    render_sarif,
    render_text,
)
from .typestate import TypestateChecker

__all__ = [
    "CHECKS",
    "CHECK_FAMILIES",
    "COLLECTIVE_KINDS",
    "EFFECT_NAMES",
    "EffectAnalysis",
    "Program",
    "VerifyFinding",
    "VerifyResult",
    "declared_effects_of",
    "declares_effects",
    "render_json",
    "render_sarif",
    "render_text",
    "run_verify",
]


@dataclass
class VerifyResult:
    findings: list[VerifyFinding]  # suppressed ones included, marked
    program: Program
    effects: EffectAnalysis

    @property
    def active(self) -> list[VerifyFinding]:
        return [f for f in self.findings if not f.suppressed]

    def effects_of(self, qualname: str) -> frozenset[str]:
        """Inferred (body) effects of a function by dotted qualname."""
        return self.effects.effects_of(qualname)


def run_verify(
    paths: Sequence[Path],
    *,
    checks: Sequence[str] | None = None,
) -> VerifyResult:
    """Run every analysis over ``paths`` and return ordered findings."""
    program = Program.load([Path(p) for p in paths])
    effects = EffectAnalysis(program)
    ctx = CheckContext()
    effects.run_checks(ctx)
    TypestateChecker(program).run_checks(ctx)
    CollectiveChecker(program, effects).run_checks(ctx)
    # Imported lazily: the model and flow packages both *analyse* this
    # package's program model and *provide* runtime decorators
    # (@protocol_event, @array_contract) that analysed modules import --
    # a top-level import here would close that cycle during package init.
    from ..flow.checks import FlowChecker
    from ..model.checks import ModelChecker
    from ..model.disjoint import DisjointProver

    ModelChecker(program).run_checks(ctx)
    DisjointProver(program).run_checks(ctx)
    FlowChecker(program).run_checks(ctx)

    for mod in program.modules.values():
        covers, bad = parse_allows(mod.lines)
        path = str(mod.path)
        for b in bad:
            b.path = path
            ctx.findings.append(b)
        apply_suppressions(ctx.findings, path, covers)

    findings = ctx.findings
    if checks:
        wanted = set(checks) | {"RV001"}
        findings = [f for f in findings if f.check in wanted]
    findings.sort(key=lambda f: (f.path, f.line, f.check, f.message))
    return VerifyResult(findings=findings, program=program, effects=effects)
