"""Command-line front end for ``repro-lint``.

Invoked as ``python -m repro.lint [paths...]``.  Exit status: 0 when no
finding survives suppression (and the baseline, when one is given),
1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import BaselineError, load_baseline, write_baseline
from .linter import lint_paths
from .rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("repro-lint: repo-specific determinism rules "
                     "(REP001..REP007) over Python sources."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--rules", default=None, metavar="REPxxx[,REPxxx]",
                        help="run only the named rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="accepted-findings baseline: only findings "
                             "not in FILE fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline "
                             "and exit 0")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            scope = ("all files except roles "
                     if rule.invert_roles else "roles ")
            print(f"{rule.id}  {rule.title}")
            print(f"        scope: {scope}{', '.join(sorted(rule.roles))}")
            print(f"        hint:  {rule.hint}")
        return 0

    only = None
    if args.rules:
        only = frozenset(r.strip().upper() for r in args.rules.split(",")
                         if r.strip())
        unknown = only - set(RULES)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    findings = lint_paths(list(args.paths), only_rules=only)

    if args.write_baseline:
        fps = {f.fingerprint() for f in findings}
        write_baseline(Path(args.baseline), fps)
        print(f"repro-lint: wrote {len(fps)} fingerprint(s) to "
              f"{args.baseline}")
        return 0

    baselined = 0
    if args.baseline:
        try:
            known = load_baseline(Path(args.baseline))
        except BaselineError as err:
            print(str(err), file=sys.stderr)
            return 2
        kept = [f for f in findings if f.fingerprint() not in known]
        baselined = len(findings) - len(kept)
        findings = kept

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
        }, indent=2))
    else:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"repro-lint: {n} finding{'s' if n != 1 else ''}"
              if n else "repro-lint: clean")
        if baselined:
            print(f"repro-lint: {baselined} baselined finding(s) hidden")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
