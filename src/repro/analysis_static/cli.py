"""Command-line front end for ``repro-lint``.

Invoked as ``python -m repro.lint [paths...]``.  Exit status: 0 when no
finding survives suppression, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from .linter import lint_paths
from .rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("repro-lint: repo-specific determinism rules "
                     "(REP001..REP005) over Python sources."))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--rules", default=None, metavar="REPxxx[,REPxxx]",
                        help="run only the named rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            scope = ("all files except roles "
                     if rule.invert_roles else "roles ")
            print(f"{rule.id}  {rule.title}")
            print(f"        scope: {scope}{', '.join(sorted(rule.roles))}")
            print(f"        hint:  {rule.hint}")
        return 0

    only = None
    if args.rules:
        only = frozenset(r.strip().upper() for r in args.rules.split(",")
                         if r.strip())
        unknown = only - set(RULES)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    findings = lint_paths(list(args.paths), only_rules=only)

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in findings],
            "count": len(findings),
        }, indent=2))
    else:
        for f in findings:
            print(f.format())
        n = len(findings)
        print(f"repro-lint: {n} finding{'s' if n != 1 else ''}"
              if n else "repro-lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
